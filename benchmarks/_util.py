"""Shared helpers for the benchmark suite.

Each bench regenerates one paper figure (or one ablation) and prints a
"paper says / we measured" table.  Prints go to the real stdout so the
tables appear even under pytest's capture (the bench logs are the
deliverable, not incidental debug output).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Sequence

from repro.utils.tables import format_table

#: Durable copy of every emitted table (truncated per session by conftest).
TABLE_LOG = Path(__file__).resolve().parent / "bench_tables.txt"


def emit(text: str) -> None:
    """Write a line to stdout and append it to the durable table log."""
    print(text, flush=True)
    with TABLE_LOG.open("a") as fh:
        fh.write(text + "\n")


def emit_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str) -> None:
    emit("")
    emit(format_table(headers, rows, title=title))
