"""Shared helpers for the benchmark suite.

Each bench regenerates one paper figure (or one ablation) and prints a
"paper says / we measured" table.  Prints go to the real stdout so the
tables appear even under pytest's capture (the bench logs are the
deliverable, not incidental debug output).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence, Union

from repro.obs import MetricsRegistry, RunReport
from repro.utils.tables import format_table

#: Durable copy of every emitted table (truncated per session by conftest).
TABLE_LOG = Path(__file__).resolve().parent / "bench_tables.txt"

#: Per-session observability snapshot: one JSON object keyed by bench name
#: (truncated per session by conftest, like the table log).
OBS_LOG = Path(__file__).resolve().parent / "BENCH_obs.json"


def emit(text: str) -> None:
    """Write a line to stdout and append it to the durable table log."""
    print(text, flush=True)
    with TABLE_LOG.open("a") as fh:
        fh.write(text + "\n")


def emit_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str) -> None:
    emit("")
    emit(format_table(headers, rows, title=title))


def emit_obs(name: str, source: Union[MetricsRegistry, RunReport, dict]) -> None:
    """Merge one bench's observability snapshot into ``BENCH_obs.json``.

    ``source`` may be a live registry, a finished :class:`RunReport`, or a
    plain dict.  The file holds ``{bench name: snapshot}`` so every bench
    in a session lands in one queryable document.
    """
    if isinstance(source, MetricsRegistry):
        payload: dict = RunReport.from_registry(source, name=name).as_dict()
    elif isinstance(source, RunReport):
        payload = source.as_dict()
    else:
        payload = dict(source)
    existing: dict = {}
    if OBS_LOG.exists():
        text = OBS_LOG.read_text().strip()
        if text:
            existing = json.loads(text)
    existing[name] = payload
    OBS_LOG.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
