"""Ablation — the non-negativity policies of §5.2.

DESIGN.md documents that the literal paper procedure can stall when a
large donor overshoots below zero, while step scaling reproduces the
paper's iteration counts.  This bench runs all four policies on the
figure-3 configuration across its alphas and reports iterations, final
cost, and whether monotonicity held.
"""

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem

from _util import emit_table

POLICIES = ("scaled-step", "paper", "clamp-redistribute", "unconstrained")
ALPHAS = (0.67, 0.3, 0.08)


def _run_all():
    problem = FileAllocationProblem.paper_network()
    x0 = paper_skewed_allocation(4)
    out = {}
    for policy in POLICIES:
        for alpha in ALPHAS:
            result = DecentralizedAllocator(
                problem, alpha=alpha, epsilon=1e-3,
                active_set=policy, max_iterations=500,
            ).run(x0)
            out[(policy, alpha)] = result
    return out


def test_active_set_policy_ablation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=3, iterations=1)

    rows = []
    for (policy, alpha), result in results.items():
        rows.append(
            [
                policy,
                alpha,
                result.iterations if result.converged else ">=500",
                f"{result.cost:.4f}",
                "yes" if result.trace.is_monotone() else "NO",
            ]
        )
    emit_table(
        ["policy", "alpha", "iterations", "final cost", "monotone"],
        rows,
        "Ablation: active-set policies on the figure-3 setup",
    )

    # The default policy converges to the optimum at every alpha with
    # paper-like iteration counts.
    for alpha in ALPHAS:
        run = results[("scaled-step", alpha)]
        assert run.converged
        np.testing.assert_allclose(run.allocation, 0.25, atol=2e-3)
    assert results[("scaled-step", 0.67)].iterations <= 6
    assert results[("scaled-step", 0.08)].iterations <= 55

    # The literal §5.2 freeze rule is fine at moderate alphas...
    for alpha in (0.3, 0.08):
        np.testing.assert_allclose(
            results[("paper", alpha)].allocation, 0.25, atol=2e-3
        )
    # ...but at alpha = 0.67 the big donor (x0 = 0.8) overshoots below
    # zero, gets frozen, and the remaining nodes equalize among
    # themselves: the run "converges" to a non-optimal point.  This stall
    # is the reason scaled-step is the library default (see DESIGN.md).
    stalled = results[("paper", 0.67)]
    assert stalled.allocation[0] == 0.8
    assert stalled.cost > results[("scaled-step", 0.67)].cost + 0.1

    # The projection-flavoured clamp also finds the optimum.
    for alpha in ALPHAS:
        run = results[("clamp-redistribute", alpha)]
        if run.converged:
            np.testing.assert_allclose(run.allocation, 0.25, atol=2e-3)
