"""Extension — the §8 adaptive reallocation scenario.

"The possibility also exists of using the algorithm to adaptively change
the file allocation as the nodal file access characteristics change
dynamically", contingent on nodes estimating their parameters.  The bench
runs the rotating-hotspot workload and reports how much of the
frozen-to-clairvoyant gap adaptation recovers at two estimation-noise
levels.
"""

import numpy as np

from repro.estimation import AdaptiveAllocationLoop
from repro.network.builders import ring_graph
from repro.network.shortest_paths import all_pairs_shortest_paths

from _util import emit_table


def _drift(epoch: int) -> np.ndarray:
    rates = np.full(5, 0.08)
    rates[epoch % 5] = 0.56
    return rates


def _run(window: float):
    loop = AdaptiveAllocationLoop(
        all_pairs_shortest_paths(ring_graph(5)),
        _drift,
        mu=1.6,
        k=1.0,
        iterations_per_epoch=10,
        estimation_window=window,
        alpha=0.3,
        seed=7,
    )
    history = loop.run(epochs=10, initial_allocation=np.full(5, 0.2))
    adaptive = float(np.mean([e.adapted_cost for e in history[1:]]))
    frozen = float(np.mean([e.frozen_cost for e in history[1:]]))
    optimal = float(np.mean([e.optimal_cost for e in history[1:]]))
    recovered = (frozen - adaptive) / (frozen - optimal)
    return adaptive, frozen, optimal, recovered


def test_adaptive_tracks_drifting_workload(benchmark):
    noisy, clean = benchmark.pedantic(
        lambda: (_run(200.0), _run(5_000.0)), rounds=2, iterations=1
    )

    rows = []
    for label, (adaptive, frozen, optimal, recovered) in (
        ("short window (noisy estimates)", noisy),
        ("long window (clean estimates)", clean),
    ):
        rows.append(
            [label, f"{adaptive:.4f}", f"{frozen:.4f}", f"{optimal:.4f}",
             f"{recovered:.0%}"]
        )
    emit_table(
        ["estimation", "adaptive cost", "frozen cost", "clairvoyant", "gap recovered"],
        rows,
        "Extension: §8 adaptive reallocation under a rotating hotspot",
    )

    # Adaptation clearly beats freezing at either noise level...
    for adaptive, frozen, optimal, recovered in (noisy, clean):
        assert adaptive < frozen
        assert recovered > 0.5
    # ...and cleaner estimates close more of the gap.
    assert clean[3] >= noisy[3] - 0.05
