"""Ablation — the decentralized algorithm vs centralized baselines.

§3 argues decentralization costs nothing in solution quality while
avoiding the single point of failure and the information shipping of a
centralized optimizer.  This bench pits the decentralized algorithm
against projected gradient, the closed-form KKT optimum, the exhaustive
grid, the best integral placement, and the price-directed tâtonnement of
§2 (on the equivalent economy), on one asymmetric instance.
"""

import numpy as np

from repro.baselines import (
    ProjectedGradientSolver,
    best_integral_allocation,
    exhaustive_grid_optimum,
)
from repro.core.algorithm import DecentralizedAllocator
from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.network.builders import ring_graph

from _util import emit_table


def _problem():
    topo = ring_graph(5, link_costs=[1.0, 2.0, 0.5, 3.0, 1.5])
    rates = np.array([0.05, 0.3, 0.1, 0.25, 0.2])
    return FileAllocationProblem.from_topology(
        topo, rates, k=0.7, mu=[1.6, 2.0, 1.4, 3.0, 1.8]
    )


def _run_all():
    problem = _problem()
    x0 = np.full(5, 0.2)
    out = {}
    out["decentralized (§5.2)"] = problem.cost(
        DecentralizedAllocator(problem, alpha=0.1, epsilon=1e-8).run(x0).allocation
    )
    out["projected gradient"] = ProjectedGradientSolver(problem).run(x0).cost
    out["closed-form KKT"] = problem.cost(optimal_allocation(problem))
    out["exhaustive grid (1/40)"] = exhaustive_grid_optimum(problem, resolution=40)[1]
    out["best integral"] = best_integral_allocation(problem)[1]
    out["uniform split"] = problem.cost(x0)
    return out


def test_baseline_cost_comparison(benchmark):
    costs = benchmark.pedantic(_run_all, rounds=2, iterations=1)

    reference = costs["closed-form KKT"]
    emit_table(
        ["method", "final cost", "gap vs exact optimum"],
        [
            [name, f"{cost:.6f}", f"{(cost / reference - 1) * 100:+.3f}%"]
            for name, cost in costs.items()
        ],
        "Ablation: decentralized vs centralized baselines (asymmetric 5-ring)",
    )

    # Decentralization loses nothing.
    assert costs["decentralized (§5.2)"] <= reference * (1 + 1e-5)
    # Both relaxation baselines agree with the exact optimum.
    assert costs["projected gradient"] <= reference * (1 + 1e-5)
    assert costs["exhaustive grid (1/40)"] <= reference * 1.01
    # Fragmentation beats the best integral placement and the naive split.
    assert reference < costs["best integral"]
    assert reference < costs["uniform split"]
