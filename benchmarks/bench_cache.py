"""Benchmark the cost-aware cache, drift demotion, and the lookaside tier.

Three claims are measured, each parity-gated before its numbers are
trusted:

* **cost-aware vs LRU eviction** — a drifting hotspot stream: a small
  *hot set* of expensive tight-tolerance solves recurs every round while
  a flood of one-off *scan* requests (fresh fingerprints each round —
  the drifted working set) passes through.  Both policies get the same
  entry budget, sized so the scan tier flushes an LRU's hot entries
  between recurrences; value-weighted eviction keeps them.  The ratio of
  total solver iterations is the policy's contribution.  Parity gate:
  every answer is re-derived by a cold reference solve of the *effective
  request* (the request actually dispatched, donor start included) and
  must match bit for bit.
* **drift-adaptive invalidation** — one structure whose access rates
  shift in phases, with exact repeats inside each phase.  With a
  :class:`~repro.service.DriftTracker` attached, repeats within a phase
  still hit; once the estimate drifts past the threshold the epoch
  advances and stale-epoch hits are demoted to warm re-solves (counted
  by ``service.cache.demoted``).  Same bit-for-bit parity gate.
* **cross-shard lookaside** — a fingerprint-drifting stream against a
  2-worker affinity-routed :class:`~repro.net.NetServer`: each round
  re-measures every cost matrix (a new structural key, so the request
  routes wherever the new key lands and its shard's local cache has
  never seen it).  With the tier off every drifted request solves cold;
  with it on, workers warm-start from donor records other shards
  published.  Reported: aggregate hit+warm+lookaside rate and total
  solver iterations, off vs on.  Parity gate: hit/miss answers match a
  cache-disabled server bit for bit; warm answers match to tolerance
  (same optimum, shorter path — the service's documented warm-start
  contract).

Run standalone:

    PYTHONPATH=src python benchmarks/bench_cache.py            # full grid
    PYTHONPATH=src python benchmarks/bench_cache.py --smoke    # CI-sized

Full mode writes ``benchmarks/BENCH_cache.json`` (docs/PERFORMANCE.md
reads the checked-in copy).  ``--smoke`` shrinks the workload and does
not overwrite the JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.algorithm import solve
from repro.core.model import FileAllocationProblem
from repro.obs import MetricsRegistry
from repro.service import AllocationService, SolveRequest
from repro.workloads import hotspot_rates, perturbed_rates, zipf_rates

MAX_ITERATIONS = 20_000
#: Tight tolerance for the hot set: recurring, expensive solves.
HOT_EPSILON = 1e-7
#: Loose tolerance for the scan tier: one-off, cheap solves.
SCAN_EPSILON = 1e-2
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_cache.json"


# -- shared machinery ----------------------------------------------------------


def run_ticketed(service, requests):
    """Play ``requests`` one at a time (each probes the cache *after* its
    predecessors stored), returning the resolved tickets — which keep the
    effective request the parity gate re-solves."""
    tickets = []
    for request in requests:
        ticket = service.submit(request)
        if not ticket.done():
            service.pump()
        tickets.append(ticket)
    return tickets


def assert_effective_parity(tickets) -> None:
    """Every answer must be bit-for-bit the cold reference solve of its
    *effective* request: for hits and misses that is the caller's request;
    for warm starts (demoted or donor-fed) the request with the donor
    iterate as its start.  This is the soundness claim of the whole
    caching tier — nothing the cache did is observable in the answer."""
    for ticket in tickets:
        response = ticket.response
        assert response.ok, response
        effective = ticket.effective_request
        ref = solve(
            effective.problem,
            alpha=effective.alpha,
            epsilon=effective.epsilon,
            max_iterations=effective.max_iterations,
            initial_allocation=effective.initial_allocation,
        )
        rid = ticket.request.request_id
        assert np.array_equal(response.allocation, ref.allocation), rid
        assert response.cost == ref.cost, rid
        if response.cache != "hit":  # hits answer with 0 solver iterations
            assert response.iterations == ref.iterations, rid


# -- scenario 1: cost-aware vs LRU eviction ------------------------------------


def hotspot_stream(*, n, hot_count, scan_count, rounds):
    """The drifting hotspot stream: ``hot_count`` expensive specs recur
    twice per round; ``scan_count`` fresh cheap specs per round drift
    through in between (new fingerprints every round — an LRU adopts
    them, evicting the hot set)."""
    cost = 1.0 - np.eye(n)
    hot_specs = [
        (hotspot_rates(n, hot_node=i % n, hot_share=0.5, total=0.8), HOT_EPSILON)
        for i in range(hot_count)
    ]

    def request(rates, epsilon, rid):
        problem = FileAllocationProblem(cost, rates, k=1.0, mu=1.5)
        return SolveRequest(
            problem=problem, alpha=0.3, epsilon=epsilon,
            max_iterations=MAX_ITERATIONS, request_id=rid,
        )

    requests, serial = [], 0
    for r in range(rounds):
        for i, (rates, eps) in enumerate(hot_specs):
            requests.append(request(rates, eps, f"hot-{r}-a{i}"))
        for j in range(scan_count):
            rates = perturbed_rates(
                zipf_rates(n, exponent=1.1, total=0.8),
                relative_noise=0.05, seed=1000 * r + j,
            )
            requests.append(request(rates, SCAN_EPSILON, f"scan-{r}-{j}"))
            serial += 1
        for i, (rates, eps) in enumerate(hot_specs):
            requests.append(request(rates, eps, f"hot-{r}-b{i}"))
    return requests


def bench_eviction(*, n, hot_count, scan_count, rounds, capacity) -> dict:
    rows = {}
    for policy in ("lru", "cost"):
        registry = MetricsRegistry()
        service = AllocationService(
            max_batch=1,
            cache_size=capacity,
            cache_eviction=policy,
            registry=registry,
        )
        requests = hotspot_stream(
            n=n, hot_count=hot_count, scan_count=scan_count, rounds=rounds
        )
        start = time.perf_counter()
        tickets = run_ticketed(service, requests)
        elapsed = time.perf_counter() - start
        assert_effective_parity(tickets)
        counters = registry.counters
        rows[policy] = {
            "solver_iterations": int(counters.get("service.solver_iterations", 0)),
            "cache_hit": int(counters.get("service.cache.hit", 0)),
            "cache_warm": int(counters.get("service.cache.warm", 0)),
            "cache_miss": int(counters.get("service.cache.miss", 0)),
            "cache_evicted": int(counters.get("service.cache.evicted", 0)),
            "seconds": elapsed,
            "requests_per_second": len(requests) / elapsed,
        }
    lru, cost = rows["lru"], rows["cost"]
    return {
        "n": n,
        "capacity": capacity,
        "hot_specs": hot_count,
        "scans_per_round": scan_count,
        "rounds": rounds,
        "requests": (2 * hot_count + scan_count) * rounds,
        "lru": lru,
        "cost_aware": cost,
        "iteration_reduction": (
            lru["solver_iterations"] / max(1, cost["solver_iterations"])
        ),
        "parity": True,
    }


# -- scenario 2: drift-adaptive invalidation -----------------------------------


def bench_drift(*, n, phases, repeats_per_phase, threshold, window) -> dict:
    """Phased rate drift over one structure: exact repeats inside each
    phase must hit; once the estimate crosses ``threshold`` the epoch
    advances and stale hits are demoted to warm re-solves."""
    cost = 1.0 - np.eye(n)
    base = hotspot_rates(n, hot_node=0, hot_share=0.5, total=0.6)

    registry = MetricsRegistry()
    service = AllocationService(
        max_batch=1,
        cache_size=64,
        drift_threshold=threshold,
        drift_window=window,
        registry=registry,
    )
    def phase_request(phase: int, rid: str) -> SolveRequest:
        # +25% per phase: ~0.2 relative shift per rate component, which
        # the EMA accumulates past the 0.25 threshold a few observations
        # into each phase (and total rate stays below mu throughout).
        rates = base * (1.0 + 0.25 * phase)
        problem = FileAllocationProblem(cost, rates, k=1.0, mu=1.5)
        return SolveRequest(
            problem=problem, alpha=0.3, epsilon=1e-4,
            max_iterations=MAX_ITERATIONS, request_id=rid,
        )

    requests = []
    for phase in range(phases):
        for rep in range(repeats_per_phase):
            requests.append(phase_request(phase, f"drift-{phase}-{rep}"))
        if phase > 0:
            # Yesterday's request comes back after the estimate moved on:
            # its entry (stored under phase 0's epoch) must be demoted to
            # a warm re-solve, not served verbatim.
            requests.append(phase_request(0, f"replay-{phase}"))
    tickets = run_ticketed(service, requests)
    assert_effective_parity(tickets)
    counters = registry.counters
    return {
        "n": n,
        "phases": phases,
        "repeats_per_phase": repeats_per_phase,
        "threshold": threshold,
        "window": window,
        "requests": len(requests),
        "cache_hit": int(counters.get("service.cache.hit", 0)),
        "cache_warm": int(counters.get("service.cache.warm", 0)),
        "cache_miss": int(counters.get("service.cache.miss", 0)),
        "demoted": int(counters.get("service.cache.demoted", 0)),
        "epoch_advances": int(counters.get("service.drift.epoch_advance", 0)),
        "parity": True,
    }


# -- scenario 3: cross-shard lookaside -----------------------------------------


def drifting_payloads(*, bases, rounds, nodes, seed=7):
    """A fingerprint-drifting stream: ``bases`` distinct structures whose
    cost matrices are re-measured (perturbed) every round — each round's
    payloads carry fresh structural keys, so affinity routing scatters
    them and no shard's local cache has seen them."""
    rng = np.random.default_rng(seed)
    base_costs, base_rates = [], []
    for _ in range(bases):
        cost = rng.uniform(0.5, 2.0, size=(nodes, nodes))
        cost = (cost + cost.T) / 2.0
        np.fill_diagonal(cost, 0.0)
        rates = rng.uniform(0.3, 0.8, size=nodes)
        rates *= 0.9 / rates.sum()
        base_costs.append(cost)
        base_rates.append(rates)
    stream, serial = [], 0
    for r in range(rounds):
        for i in range(bases):
            jitter = np.random.default_rng(10_000 + 100 * i + r)
            noise = 1.0 + 0.02 * jitter.standard_normal(base_costs[i].shape)
            cost = base_costs[i] * (noise + noise.T) / 2.0
            np.fill_diagonal(cost, 0.0)
            stream.append(
                {
                    "id": f"d{serial}",
                    "problem": {
                        "cost_matrix": [[float(v) for v in row] for row in cost],
                        "access_rates": [float(v) for v in base_rates[i]],
                        "mu": 1.5,
                        "k": 1.0,
                    },
                    "alpha": 0.3,
                    "epsilon": 1e-4,
                    "max_iterations": MAX_ITERATIONS,
                }
            )
            serial += 1
    return stream


def _comparable(response: dict) -> dict:
    clean = dict(response)
    for key in ("latency_s", "batch_size", "cache"):
        clean.pop(key, None)
    return clean


def bench_lookaside(*, bases, rounds, nodes, workers) -> dict:
    """Disjoint shards vs the lookaside tier on the drifting stream.

    Sequential on purpose: a donor can only help after its solve was
    published, so requests are played one at a time — this measures the
    tier, not pipelining."""
    from repro.net import NetClient, NetServer

    stream = drifting_payloads(bases=bases, rounds=rounds, nodes=nodes)

    # Reference leg: no caching anywhere; every answer is a cold solve.
    with NetServer(port=0, workers=1, cache_size=0) as server:
        host, port = server.address
        with NetClient(host, port, timeout_s=300.0) as client:
            reference = [client.solve_payload(dict(p)) for p in stream]
    assert all(r["status"] == "ok" for r in reference)

    rows = {}
    for enabled in (False, True):
        with NetServer(
            port=0, workers=workers, routing="affinity", lookaside=enabled
        ) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=300.0) as client:
                responses = [client.solve_payload(dict(p)) for p in stream]
                stats = client.stats()
        assert all(r["status"] == "ok" for r in responses)
        # Parity gate: hit/miss answers are bit-for-bit the cold solves;
        # warm/lookaside answers reach the same optimum to tolerance.
        for want, have in zip(reference, responses):
            if have.get("cache") in ("hit", "miss"):
                assert _comparable(have) == _comparable(want), have["id"]
            else:
                assert abs(have["cost"] - want["cost"]) <= 1e-3 * abs(want["cost"])
        dispositions = {"hit": 0, "warm": 0, "lookaside": 0, "miss": 0}
        for r in responses:
            dispositions[r.get("cache", "miss")] += 1
        counters = stats["counters"]
        key = "lookaside" if enabled else "disjoint"
        served = len(responses)
        rows[key] = {
            "dispositions": dispositions,
            "warm_rate": (
                (dispositions["hit"] + dispositions["warm"] + dispositions["lookaside"])
                / served
            ),
            "solver_iterations": int(counters.get("service.solver_iterations", 0)),
            "published": int(counters.get("net.lookaside.published", 0)),
            "donors_served": int(counters.get("net.lookaside.hits", 0)),
        }
    return {
        "nodes": nodes,
        "bases": bases,
        "rounds": rounds,
        "workers": workers,
        "requests": len(stream),
        "disjoint": rows["disjoint"],
        "lookaside": rows["lookaside"],
        "warm_rate_lift": (
            rows["lookaside"]["warm_rate"] - rows["disjoint"]["warm_rate"]
        ),
        "iteration_reduction": (
            rows["disjoint"]["solver_iterations"]
            / max(1, rows["lookaside"]["solver_iterations"])
        ),
        "parity": True,
    }


# -- driver --------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small rounds, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        eviction_cfg = dict(n=8, hot_count=4, scan_count=8, rounds=2, capacity=8)
        drift_cfg = dict(n=8, phases=2, repeats_per_phase=6, threshold=0.25, window=4)
        lookaside_cfg = dict(bases=4, rounds=2, nodes=6, workers=2)
    else:
        eviction_cfg = dict(n=10, hot_count=8, scan_count=16, rounds=6, capacity=16)
        drift_cfg = dict(n=10, phases=4, repeats_per_phase=10, threshold=0.25, window=4)
        lookaside_cfg = dict(bases=12, rounds=5, nodes=6, workers=2)

    eviction = bench_eviction(**eviction_cfg)
    print(
        f"eviction ({eviction['requests']} requests, capacity "
        f"{eviction['capacity']}): lru {eviction['lru']['solver_iterations']} "
        f"iters (hit {eviction['lru']['cache_hit']}) -> cost-aware "
        f"{eviction['cost_aware']['solver_iterations']} iters (hit "
        f"{eviction['cost_aware']['cache_hit']}); "
        f"{eviction['iteration_reduction']:.1f}x fewer solver iterations"
    )

    drift = bench_drift(**drift_cfg)
    print(
        f"drift ({drift['requests']} requests, {drift['phases']} phases): "
        f"hit/warm/miss = {drift['cache_hit']}/{drift['cache_warm']}"
        f"/{drift['cache_miss']}, {drift['demoted']} demoted over "
        f"{drift['epoch_advances']} epoch advance(s)"
    )

    lookaside = bench_lookaside(**lookaside_cfg)
    print(
        f"lookaside ({lookaside['requests']} requests, "
        f"{lookaside['workers']} workers): disjoint warm rate "
        f"{lookaside['disjoint']['warm_rate']:.0%} -> lookaside "
        f"{lookaside['lookaside']['warm_rate']:.0%} "
        f"(+{lookaside['warm_rate_lift']:.0%}); "
        f"{lookaside['iteration_reduction']:.2f}x fewer solver iterations"
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "hot_epsilon": HOT_EPSILON,
                "scan_epsilon": SCAN_EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "smoke": args.smoke,
            },
            "eviction": eviction,
            "drift": drift,
            "lookaside": lookaside,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
