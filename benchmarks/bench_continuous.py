"""Benchmark continuous batching against group-and-flush dispatch.

The flush dispatcher's weakness is the straggler: a lockstep group runs
until its *slowest* row converges, so on a mixed-convergence stream the
batch spends its tail iterations nearly empty.  The continuous batcher
retires converged rows and refills their slots from the pending queue,
keeping occupancy — and therefore the amortization of the per-iteration
dispatch overhead — near capacity for the whole stream.

Three claims, each parity-gated before its time is trusted:

* **mixed-convergence stream** — L same-shape requests whose stepsizes
  span a wide geometric range (per-row iteration counts vary ~50x)
  dispatched through an ``AllocationService`` in ``batch_mode=
  "continuous"`` vs ``"flush"``, both at the same slot capacity.  Both
  must return bit-for-bit identical answers; the req/s ratio plus the
  occupancy gauges (``continuous.row_steps / (steps * capacity)`` vs
  ``batched.row_iterations / (iterations * capacity)``) are the result.
* **driver occupancy** — the same stream fed straight to
  :class:`~repro.parallel.ContinuousBatcher` vs capacity-sized lockstep
  :class:`~repro.parallel.BatchedAllocator` groups, no service around
  them: total lockstep steps and mean occupancy of each driver.
* **staggered warm chains** — a warm-started k-grid sweep as one
  serial continuation chain vs the same grid split across 8 concurrent
  :func:`~repro.parallel.solve_chains` chains: same optima, wall-clock
  ratio.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_continuous.py           # full grid
    PYTHONPATH=src python benchmarks/bench_continuous.py --smoke   # CI-sized

Full mode writes ``benchmarks/BENCH_continuous.json``
(docs/PERFORMANCE.md reads the checked-in copy).  ``--smoke`` shrinks
the workload and does not overwrite the JSON unless ``--out`` is given
explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.algorithm import solve
from repro.core.model import FileAllocationProblem
from repro.obs import MetricsRegistry
from repro.parallel import BatchedAllocator, BatchedProblem, ChainLink, solve_chains
from repro.service import AllocationService, SolveRequest

EPSILON = 1e-5
MAX_ITERATIONS = 20_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_continuous.json"

#: (n, stream length, slot capacity) per full-mode stream point.
FULL_STREAMS = [(16, 64, 8), (16, 256, 16), (64, 128, 16)]
SMOKE_STREAMS = [(8, 24, 4)]


def mixed_requests(n: int, length: int, *, seed: int = 11) -> list:
    """``length`` compatible requests with deliberately *mixed*
    convergence: stepsizes span a wide geometric range and starts vary
    from near-uniform to single-node-heavy, so per-row iteration counts
    spread by more than an order of magnitude.  (bench_service holds
    alpha fixed to sidestep the straggler effect; this bench exists to
    measure it.)"""
    rng = np.random.default_rng(seed)
    alphas = np.geomspace(0.02, 0.5, length)
    rng.shuffle(alphas)
    requests = []
    for i in range(length):
        rates = rng.uniform(0.2, 0.8, size=n)
        rates *= 0.9 / rates.sum()  # total < 1.0 < mu everywhere
        problem = FileAllocationProblem(
            1.0 - np.eye(n), rates,
            k=float(rng.uniform(0.5, 2.5)), mu=1.5,
        )
        requests.append(
            SolveRequest(
                problem=problem,
                alpha=float(alphas[i]),
                epsilon=EPSILON,
                max_iterations=MAX_ITERATIONS,
                initial_allocation=rng.dirichlet(np.full(n, 0.7)),
                request_id=f"mixed-{n}-{i}",
            )
        )
    return requests


def _time(fn, *, repeats: int):
    best, out = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def bench_stream(n: int, length: int, capacity: int, *, repeats: int) -> dict:
    requests = mixed_requests(n, length)

    regs = {}

    def run(mode):
        regs[mode] = MetricsRegistry()
        service = AllocationService(
            max_batch=capacity, cache_size=0, batch_mode=mode, registry=regs[mode]
        )
        # One burst of L requests against C slots: flush splits it into
        # ceil(L/C) lockstep groups, each running to its slowest row;
        # continuous keeps one C-slot batch full from the backlog.
        return service.solve_many(requests)

    cont_s, cont = _time(lambda: run("continuous"), repeats=repeats)
    flush_s, flush = _time(lambda: run("flush"), repeats=repeats)

    # Parity gate: both dispatchers, and the reference serial engine,
    # must agree bit for bit on every response.
    for request, c, f in zip(requests, cont, flush):
        assert c.ok and f.ok, request.request_id
        assert np.array_equal(c.allocation, f.allocation), request.request_id
        assert c.cost == f.cost and c.iterations == f.iterations
        ref = solve(
            request.problem, alpha=request.alpha, epsilon=request.epsilon,
            max_iterations=request.max_iterations,
            initial_allocation=request.initial_allocation,
        )
        assert np.array_equal(c.allocation, ref.allocation), request.request_id
        assert c.iterations == ref.iterations

    cc = regs["continuous"].counters
    fc = regs["flush"].counters
    cont_occ = cc["continuous.row_steps"] / (cc["continuous.steps"] * capacity)
    flush_occ = fc["batched.row_iterations"] / (fc["batched.iterations"] * capacity)
    iters = [r.iterations for r in cont]
    return {
        "n": n,
        "stream_length": length,
        "capacity": capacity,
        "row_iterations_min": int(min(iters)),
        "row_iterations_max": int(max(iters)),
        "continuous_seconds": cont_s,
        "flush_seconds": flush_s,
        "requests_per_s_continuous": length / cont_s,
        "requests_per_s_flush": length / flush_s,
        "speedup_continuous": flush_s / cont_s,
        "continuous_steps": int(cc["continuous.steps"]),
        "flush_steps": int(fc["batched.iterations"]),
        "occupancy_continuous": cont_occ,
        "occupancy_flush": flush_occ,
        "parity": True,
    }


def bench_driver(n: int, length: int, capacity: int) -> dict:
    """The two drivers head to head, no service machinery around them."""
    from repro.parallel import ContinuousBatcher

    requests = mixed_requests(n, length)

    driver = ContinuousBatcher(capacity=capacity, epsilon=EPSILON)
    for i, r in enumerate(requests):
        driver.submit(
            r.problem, alpha=r.alpha, epsilon=r.epsilon,
            max_iterations=r.max_iterations, x0=r.initial_allocation, tag=i,
        )
    cont_s, rows = _time(driver.drain, repeats=1)
    stats = driver.occupancy_stats()

    def run_flush():
        results = []
        for i in range(0, length, capacity):
            group = requests[i : i + capacity]
            batched = BatchedAllocator(
                BatchedProblem.from_problems([r.problem for r in group]),
                alpha=[r.alpha for r in group],
                epsilon=EPSILON,
                max_iterations=MAX_ITERATIONS,
            ).run(np.stack([r.initial_allocation for r in group]))
            results.extend(batched.row(j) for j in range(len(group)))
        return results

    flush_s, flush_rows = _time(run_flush, repeats=1)

    by_tag = {r.tag: r for r in rows}
    for i, f in enumerate(flush_rows):
        c = by_tag[i]
        assert np.array_equal(c.allocation, f.allocation)
        assert c.iterations == f.iterations

    flush_steps = sum(
        max(f.iterations for f in flush_rows[i : i + capacity])
        for i in range(0, length, capacity)
    )
    return {
        "n": n,
        "stream_length": length,
        "capacity": capacity,
        "continuous_steps": stats["steps"],
        "flush_steps": flush_steps,
        "step_reduction": flush_steps / max(1, stats["steps"]),
        "occupancy_continuous": stats["occupancy_ratio"],
        "occupancy_flush": sum(f.iterations for f in flush_rows)
        / max(1, flush_steps * capacity),
        "continuous_seconds": cont_s,
        "flush_seconds": flush_s,
        "speedup_continuous": flush_s / cont_s,
        "parity": True,
    }


def bench_chains(*, points: int, chains: int, n: int = 16) -> dict:
    """Warm-started k-grid sweep: one serial chain vs ``chains``
    staggered chains sharing a continuous batch."""
    rng = np.random.default_rng(3)
    rates = rng.uniform(0.2, 0.8, size=n)
    rates *= 0.9 / rates.sum()
    ks = np.linspace(0.3, 2.5, points)
    x0 = rng.dirichlet(np.ones(n))

    def links(k_values):
        return [
            ChainLink(
                problem=FileAllocationProblem(1.0 - np.eye(n), rates, k=float(k), mu=1.5),
                alpha=0.08,
                epsilon=EPSILON,
                max_iterations=MAX_ITERATIONS,
                x0=x0,
            )
            for k in k_values
        ]

    serial_s, serial = _time(lambda: solve_chains([links(ks)]), repeats=1)
    split = [ks[i::chains] for i in range(chains)]
    multi_s, multi = _time(
        lambda: solve_chains([links(part) for part in split]), repeats=1
    )

    flat = {float(k): row for part, rows in zip(split, multi) for k, row in zip(part, rows)}
    for k, row in zip(ks, serial[0]):
        other = flat[float(k)]
        assert row.converged and other.converged
        assert abs(row.cost - other.cost) <= 1e-3 * abs(row.cost)

    return {
        "grid_points": points,
        "chains": chains,
        "serial_chain_seconds": serial_s,
        "staggered_seconds": multi_s,
        "speedup_staggered": serial_s / multi_s,
        "serial_iterations": sum(r.iterations for r in serial[0]),
        "staggered_iterations": sum(r.iterations for rows in multi for r in rows),
        "parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small stream point, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (default in full mode: {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    streams = SMOKE_STREAMS if args.smoke else FULL_STREAMS
    repeats = 1 if args.smoke else 3

    results = {"streams": [], "drivers": [], "chains": None}
    for n, length, capacity in streams:
        row = bench_stream(n, length, capacity, repeats=repeats)
        results["streams"].append(row)
        print(
            f"stream n={n} L={length} C={capacity}: "
            f"{row['requests_per_s_continuous']:.0f} req/s continuous vs "
            f"{row['requests_per_s_flush']:.0f} flush "
            f"({row['speedup_continuous']:.2f}x), occupancy "
            f"{row['occupancy_continuous']:.2f} vs {row['occupancy_flush']:.2f}"
        )
    for n, length, capacity in streams:
        row = bench_driver(n, length, capacity)
        results["drivers"].append(row)
        print(
            f"driver n={n} L={length} C={capacity}: "
            f"{row['continuous_steps']} vs {row['flush_steps']} lockstep steps "
            f"({row['step_reduction']:.2f}x fewer), occupancy "
            f"{row['occupancy_continuous']:.2f} vs {row['occupancy_flush']:.2f}"
        )
    chain_cfg = dict(points=12, chains=3, n=8) if args.smoke else dict(points=64, chains=8)
    results["chains"] = bench_chains(**chain_cfg)
    print(
        f"chains {chain_cfg['points']} points x{chain_cfg['chains']}: "
        f"{results['chains']['speedup_staggered']:.2f}x over one serial chain"
    )

    out = args.out
    if out is None and not args.smoke:
        out = DEFAULT_OUT
    if out is not None:
        payload = {
            "benchmark": "continuous-batching",
            "epsilon": EPSILON,
            "max_iterations": MAX_ITERATIONS,
            **results,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
