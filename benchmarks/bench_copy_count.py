"""Extension — §8.2's "how many copies are optimal?" question.

Sweeps the copy count m on a six-node virtual ring with a per-copy
storage/maintenance charge, optimizing the allocation for each m with the
§7 allocator.  Cheap storage drives toward full replication; expensive
storage exposes an interior optimum — the trade-off the paper says a
general multi-copy model must capture.
"""

import numpy as np

from repro.multicopy import optimal_copy_count
from repro.network.virtual_ring import VirtualRing

from _util import emit, emit_table

RING = (2.0, 1.0, 3.0, 1.0, 2.0, 1.0)


def _run(storage_cost):
    return optimal_copy_count(
        VirtualRing(RING),
        np.ones(6),
        mu=8.0,
        k=1.0,
        storage_cost_per_copy=storage_cost,
        iterations=250,
    )


def test_optimal_copy_count_tradeoff(benchmark):
    cheap, dear = benchmark.pedantic(
        lambda: (_run(0.8), _run(5.0)), rounds=2, iterations=1
    )

    for label, res in (("storage 0.8/copy", cheap), ("storage 5.0/copy", dear)):
        emit_table(res.HEADERS, res.rows(), f"Copy-count sweep ({label})")
        emit(f"best m = {res.best.copies}")

    # Access cost falls steeply with more copies...
    access = [e.access_cost for e in cheap.entries]
    assert access[-1] < access[0] / 3
    # ...cheap storage pushes toward heavy replication...
    assert cheap.best.copies >= 4
    # ...expensive storage exposes an interior optimum.
    assert 1 < dear.best.copies < 6
