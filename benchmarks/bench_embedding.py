"""Extension — virtual-ring embedding quality on irregular networks.

§8.2 concedes the virtual ring "may be construed as too severe a
restriction to impose on an arbitrary network".  How severe depends
entirely on the ordering chosen: this bench embeds rings into random
geometric networks with the identity ordering vs the TSP-heuristic
ordering, and compares both the lap cost and the optimized §7 allocation
cost.
"""

import numpy as np

from repro.multicopy import MultiCopyAllocator, MultiCopyRingProblem, best_virtual_ring
from repro.network.builders import random_geometric_graph
from repro.network.virtual_ring import VirtualRing

from _util import emit_table

SEEDS = (3, 11, 27)


def _run_all():
    rows = []
    for seed in SEEDS:
        topo = random_geometric_graph(10, radius=0.4, seed=seed)
        rates = np.ones(10)
        x0 = np.full(10, 2 / 10)
        entry = {"seed": seed}
        for label, ring in (
            ("identity", VirtualRing.from_topology(topo, list(range(10)))),
            ("optimized", best_virtual_ring(topo)),
        ):
            problem = MultiCopyRingProblem(ring, rates, copies=2, mu=12.0)
            result = MultiCopyAllocator(
                problem, alpha=0.05, max_iterations=250
            ).run(x0)
            entry[label] = (ring.circumference(), result.cost)
        rows.append(entry)
    return rows


def test_embedding_quality(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = []
    for entry in rows:
        id_circ, id_cost = entry["identity"]
        opt_circ, opt_cost = entry["optimized"]
        table.append(
            [
                entry["seed"],
                f"{id_circ:.2f}", f"{opt_circ:.2f}",
                f"{id_cost:.3f}", f"{opt_cost:.3f}",
                f"{(1 - opt_cost / id_cost) * 100:.0f}%",
            ]
        )
    emit_table(
        ["seed", "identity lap", "optimized lap", "identity cost",
         "optimized cost", "cost saved"],
        table,
        "Extension: TSP-heuristic virtual-ring embedding vs identity ordering",
    )

    for entry in rows:
        id_circ, id_cost = entry["identity"]
        opt_circ, opt_cost = entry["optimized"]
        assert opt_circ <= id_circ + 1e-9
        assert opt_cost <= id_cost + 1e-9
    # At least one instance shows a material saving.
    savings = [1 - e["optimized"][1] / e["identity"][1] for e in rows]
    assert max(savings) > 0.15
