"""Extension — choosing epsilon to stop after the rapid phase (§6).

"The graph also exhibits the strict monotonicity maintained by the
algorithm.  Thus, if so desired, epsilon can be chosen so as to restrict
the number of iterations and terminate the algorithm after the rapid
convergence phase.  In this case, the resulting allocation would be
nearly, but not quite, optimal."

This bench makes the trade explicit on the figure-3 configuration: sweep
epsilon, report iterations and the relative optimality gap of the returned
allocation.  A loose epsilon buys a handful of iterations at a sub-percent
gap — the quantitative form of the paper's remark.
"""


from repro.analysis import optimality_gap
from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem

from _util import emit_table

EPSILONS = (0.3, 0.1, 0.03, 0.01, 0.001, 0.0001)
ALPHA = 0.19  # a figure-3 alpha with a visible gradual phase


def _run_all():
    problem = FileAllocationProblem.paper_network()
    x0 = paper_skewed_allocation(4)
    out = {}
    for eps in EPSILONS:
        result = DecentralizedAllocator(problem, alpha=ALPHA, epsilon=eps).run(x0)
        gap = optimality_gap(problem, result.allocation)
        out[eps] = (result, gap)
    return out


def test_epsilon_controls_the_rapid_phase_tradeoff(benchmark):
    results = benchmark.pedantic(_run_all, rounds=3, iterations=1)

    rows = []
    for eps, (result, gap) in results.items():
        rows.append(
            [
                f"{eps:g}",
                result.iterations,
                f"{gap.relative_cost_gap:.2e}",
                "yes" if result.trace.is_monotone() else "NO",
            ]
        )
    emit_table(
        ["epsilon", "iterations", "relative optimality gap", "monotone"],
        rows,
        "Extension: epsilon as an early-stopping knob (alpha = 0.19, fig-3 setup)",
    )

    iters = [results[e][0].iterations for e in EPSILONS]
    gaps = [results[e][1].relative_cost_gap for e in EPSILONS]
    # Tighter epsilon: more iterations, smaller gap (both monotone).
    assert all(iters[i] <= iters[i + 1] for i in range(len(iters) - 1))
    assert all(gaps[i] >= gaps[i + 1] - 1e-12 for i in range(len(gaps) - 1))
    # The paper's remark, quantified: a loose epsilon stops within the
    # rapid phase (a few iterations) and is already within 1% of optimal.
    loose_result, loose_gap = results[0.1]
    assert loose_result.iterations <= 6
    assert loose_gap.relative_cost_gap < 0.01
    # Every early-stopped allocation is feasible (Theorem 1's payoff).
    for eps, (result, _) in results.items():
        assert result.allocation.sum() == 1.0 or abs(result.allocation.sum() - 1) < 1e-9