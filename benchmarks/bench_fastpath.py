"""Benchmark the fused fast path against the reference solver loop.

Two workloads:

* **per-solve** — B independent size-N instances (unit-cost complete
  graphs, k varied per instance) solved one at a time from the paper's
  skewed start, reference engine vs ``engine="fast"``.  Every instance's
  fast result is checked for bit-for-bit parity (iterations, cost,
  allocation) against the reference result before either time is trusted
  — a fast wrong engine is worthless.
* **warm-started sweep** — a dense k grid solved by
  :func:`parameter_sweep` on the fast engine, cold starts vs
  ``warm_start=True`` continuation, reporting the iteration-count
  reduction that neighbor-seeding buys on top of the kernel speedup.

Run standalone (not under pytest — this one measures the harness itself,
not a paper figure):

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # full grid
    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke    # CI-sized

The full grid writes ``benchmarks/BENCH_fastpath.json``; the checked-in
copy records the reference machine's speedups (docs/PERFORMANCE.md reads
them).  ``--smoke`` shrinks the grid and does *not* overwrite the
checked-in JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem
from repro.experiments.sweeps import parameter_sweep

ALPHA = 0.3
EPSILON = 1e-4
MU = 1.5
MAX_ITERATIONS = 5_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_fastpath.json"

FULL_GRID = [(32, 16), (64, 16), (128, 8)]
SMOKE_GRID = [(32, 4)]
FULL_SWEEP_POINTS = 96
SMOKE_SWEEP_POINTS = 12


class _Factory:
    """Picklable problem factory: k varies across the batch, N is fixed."""

    def __init__(self, n: int):
        self.n = n

    def __call__(self, k: float) -> FileAllocationProblem:
        rates = np.full(self.n, 1.0 / self.n)
        return FileAllocationProblem(
            1.0 - np.eye(self.n), rates, k=float(k), mu=MU
        )


def _measure(problem, result):
    return {
        "cost": result.cost,
        "iterations": result.iterations,
        "converged": result.converged,
    }


def _time(fn, *, repeats: int):
    best, out = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def bench_solve_cell(n: int, batch: int, *, repeats: int) -> dict:
    values = [float(k) for k in np.linspace(0.5, 2.5, batch)]
    factory = _Factory(n)
    problems = [factory(k) for k in values]
    x0 = paper_skewed_allocation(n)

    def run(engine: str):
        return [
            DecentralizedAllocator(
                p, alpha=ALPHA, epsilon=EPSILON, max_iterations=MAX_ITERATIONS
            ).run(x0, engine=engine)
            for p in problems
        ]

    # Parity gate before any timing: fast must equal reference bit for bit.
    for i, (ref, fast) in enumerate(zip(run("reference"), run("fast"))):
        assert fast.iterations == ref.iterations, (n, i)
        assert fast.cost == ref.cost, (n, i)
        assert np.array_equal(fast.allocation, ref.allocation), (n, i)

    reference_s, results = _time(lambda: run("reference"), repeats=repeats)
    fast_s, _ = _time(lambda: run("fast"), repeats=repeats)
    iterations = int(sum(r.iterations for r in results))
    return {
        "n": n,
        "batch": batch,
        "iterations_total": iterations,
        "reference_seconds": reference_s,
        "fast_seconds": fast_s,
        "speedup_fast": reference_s / fast_s,
        "reference_us_per_iteration": 1e6 * reference_s / iterations,
        "fast_us_per_iteration": 1e6 * fast_s / iterations,
        "parity": True,
    }


def bench_warm_sweep(n: int, points: int, *, repeats: int) -> dict:
    values = [float(k) for k in np.linspace(0.5, 2.5, points)]
    factory = _Factory(n)
    x0 = paper_skewed_allocation(n)
    kwargs = dict(
        measure=_measure,
        initial_allocation=x0,
        alpha=ALPHA,
        epsilon=EPSILON,
        max_iterations=MAX_ITERATIONS,
        engine="fast",
    )

    cold_s, cold = _time(
        lambda: parameter_sweep("k", values, factory, **kwargs),
        repeats=repeats,
    )
    warm_s, warm = _time(
        lambda: parameter_sweep("k", values, factory, warm_start=True, **kwargs),
        repeats=repeats,
    )
    # Sanity gate: every point converged, to solutions that agree to the
    # sweep tolerance (warm starts change the path, not the destination).
    assert all(m["converged"] for m in cold.measurements)
    assert all(m["converged"] for m in warm.measurements)
    for c, w in zip(cold.measurements, warm.measurements):
        assert abs(c["cost"] - w["cost"]) < 10 * EPSILON, (c["cost"], w["cost"])

    cold_iters = int(sum(cold.column("iterations")))
    warm_iters = int(sum(warm.column("iterations")))
    return {
        "n": n,
        "points": points,
        "cold_iterations": cold_iters,
        "warm_iterations": warm_iters,
        "iteration_reduction": cold_iters / max(1, warm_iters),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup_warm": cold_s / warm_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small cell, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.smoke else FULL_GRID
    points = SMOKE_SWEEP_POINTS if args.smoke else FULL_SWEEP_POINTS
    repeats = 1 if args.smoke else 3

    solve_rows = []
    print(f"{'N':>4} {'B':>4} {'reference':>11} {'fast':>10} {'speedup':>8} "
          f"{'ref us/it':>10} {'fast us/it':>11}")
    for n, batch in grid:
        cell = bench_solve_cell(n, batch, repeats=repeats)
        solve_rows.append(cell)
        print(f"{n:>4} {batch:>4} {cell['reference_seconds']:>10.4f}s "
              f"{cell['fast_seconds']:>9.4f}s {cell['speedup_fast']:>7.2f}x "
              f"{cell['reference_us_per_iteration']:>10.2f} "
              f"{cell['fast_us_per_iteration']:>11.2f}")

    sweep_n = grid[0][0]
    sweep = bench_warm_sweep(sweep_n, points, repeats=repeats)
    print(f"warm-start sweep (N={sweep_n}, {points} k-points, fast engine): "
          f"{sweep['cold_iterations']} -> {sweep['warm_iterations']} iterations "
          f"({sweep['iteration_reduction']:.1f}x fewer), "
          f"{sweep['cold_seconds']:.4f}s -> {sweep['warm_seconds']:.4f}s "
          f"({sweep['speedup_warm']:.2f}x)")

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "alpha": ALPHA, "epsilon": EPSILON, "mu": MU,
                "start": "skewed", "topology": "complete",
                "k_grid": "linspace(0.5, 2.5, B)",
                "smoke": args.smoke,
            },
            "per_solve": solve_rows,
            "warm_sweep": sweep,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
