"""Figure 3 — convergence profiles on the paper ring.

Paper (§6): from x0 = (0.8, 0.1, 0.1, 0) with eps = 1e-3, the algorithm
converges in 4 / 10 / 20 / 51 iterations for alpha = 0.67 / 0.3 / 0.19 /
0.08, monotonically, with a short rapid phase of similar length for every
alpha, ending at the uniform optimum.
"""

import numpy as np

from repro.experiments.figures import PAPER_FIG3_ITERATIONS, figure3

from _util import emit_table


def test_figure3_convergence_profiles(benchmark):
    result = benchmark.pedantic(figure3, rounds=3, iterations=1)

    rows = []
    for alpha in sorted(result.profiles, reverse=True):
        rows.append(
            [
                alpha,
                PAPER_FIG3_ITERATIONS[alpha],
                result.iterations[alpha],
                result.rapid_phase[alpha],
                "yes" if result.monotone[alpha] else "NO",
                f"{result.profiles[alpha][-1]:.4f}",
            ]
        )
    emit_table(
        ["alpha", "paper iters", "measured iters", "rapid phase",
         "monotone", "final cost"],
        rows,
        "Figure 3: convergence profiles (paper vs measured)",
    )

    for alpha, paper_count in PAPER_FIG3_ITERATIONS.items():
        assert abs(result.iterations[alpha] - paper_count) <= 2
        assert result.monotone[alpha]
        np.testing.assert_allclose(result.final_allocations[alpha], 0.25, atol=1e-3)
    # Rapid phase roughly alpha-independent (all within a few iterations).
    rapid = list(result.rapid_phase.values())
    assert max(rapid) - min(rapid) <= 5
