"""Figure 4 — fragmentation vs the best integral allocation.

Paper (§6): starting from the whole file at one node (the optimal integer
allocation on the symmetric ring), the algorithm reaches the fragmented
optimum with a "significant (25%)" cost reduction.

Measured note: with the §6 parameters as stated (mu = 1.5, k = 1,
lambda = 1, unit ring), the paper's own formula gives integral cost 3.0
and fragmented optimum 1.8 — a 40% reduction; the direction and the
significance of the effect are what this bench checks.
"""

import numpy as np

from repro.experiments.figures import figure4

from _util import emit_table


def test_figure4_fragmentation_gain(benchmark):
    result = benchmark.pedantic(figure4, rounds=3, iterations=1)

    emit_table(
        ["quantity", "paper", "measured"],
        [
            ["best integral cost", "-", f"{result.integral_cost:.4f}"],
            ["fragmented optimum", "-", f"{result.optimal_cost:.4f}"],
            ["cost reduction", "25%", f"{result.reduction:.1%}"],
            ["final allocation", "(.25,.25,.25,.25)",
             np.array2string(result.final_allocation, precision=3)],
        ],
        "Figure 4: fragmentation vs integral allocation",
    )

    assert result.integral_cost == 3.0
    np.testing.assert_allclose(result.optimal_cost, 1.8, atol=1e-6)
    # Significant reduction, at least the paper's 25%.
    assert result.reduction >= 0.25
    # Monotone profile from the integral vertex to the optimum.
    assert np.all(np.diff(result.profile) <= 1e-12)
