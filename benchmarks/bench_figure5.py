"""Figure 5 — iterations to convergence vs the stepsize alpha.

Paper (§6): "as the values of alpha get smaller, convergence time
increases greatly ... there is a relatively large range of alpha values
which result in nearly optimal convergence speeds."
"""

import numpy as np

from repro.experiments.figures import figure5

from _util import emit, emit_table

ALPHAS = np.round(np.linspace(0.04, 0.9, 15), 3)


def _run():
    # The batched engine runs the whole alpha grid in one lockstep pass;
    # counts are bit-identical to engine="serial" (tests/test_parallel.py).
    return figure5(alphas=ALPHAS, max_iterations=2_000, engine="batched")


def test_figure5_alpha_sweep(benchmark):
    result = benchmark.pedantic(_run, rounds=3, iterations=1)

    emit_table(
        ["alpha", "iterations"],
        [[a, c] for a, c in sorted(result.counts.items())],
        "Figure 5: iterations to convergence vs alpha",
    )
    emit(f"best alpha: {result.best_alpha:g}; "
         f"2x-of-best plateau width: {result.plateau_width(slack=2.0):.3g}")

    counts = result.counts
    # Blow-up branch: the smallest alpha needs far more iterations.
    assert counts[min(counts)] > 10 * counts[result.best_alpha]
    # Near-optimal plateau at least 0.3 wide in alpha.
    assert result.plateau_width(slack=2.0) >= 0.3
    # Iterations decrease (weakly) from the small-alpha side to the best.
    small_side = sorted(a for a in counts if a <= result.best_alpha)
    series = [counts[a] for a in small_side]
    assert all(series[i] >= series[i + 1] - 1 for i in range(len(series) - 1))
