"""Figure 6 — iterations (at the best alpha) vs network size.

Paper (§6): on fully connected unit-cost networks, 4 <= N <= 20, from the
(0.8, 0.1, 0.1, 0, ...) start, "increasing the problem size does not
significantly increase the number of iterations required", and the optimum
is 1/N everywhere.
"""

import numpy as np

from repro.experiments.figures import figure6

from _util import emit, emit_table

SIZES = (4, 6, 8, 10, 12, 14, 16, 18, 20)
ALPHA_GRID = np.round(np.linspace(0.1, 0.9, 9), 2)


def _run():
    # Each N's alpha grid runs as one lockstep batch; counts match
    # engine="serial" bit-for-bit (tests/test_parallel.py).
    return figure6(sizes=SIZES, alpha_grid=ALPHA_GRID, engine="batched")


def test_figure6_scaling_in_n(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    emit_table(
        ["N", "best alpha", "iterations", "optimum = 1/N"],
        result.rows(),
        "Figure 6: iterations vs network size (best alpha per N)",
    )
    counts = list(result.iterations_by_n.values())
    emit(f"flatness: max/min iteration ratio = {max(counts) / max(1, min(counts)):.2f} "
         "(paper: roughly flat)")

    assert result.is_flat(factor=3.0)
    assert all(result.optimum_is_uniform.values())
