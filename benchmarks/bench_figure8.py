"""Figure 8 — multi-copy convergence profiles on two four-node rings.

Paper (§7.3): with m = 2 copies, the ring with link costs (4,1,1,1)
(communication-dominated) shows "greater oscillation" than the unit-cost
ring (delay-dominated); the delay-dominated case retains the rapid phase
plus a gradual phase with small oscillations.
"""


from repro.experiments.figures import figure8

from _util import emit_table


def _run():
    return figure8(alpha=0.1, iterations=150)


def test_figure8_multicopy_profiles(benchmark):
    result = benchmark.pedantic(_run, rounds=2, iterations=1)

    emit_table(
        ["ring", "cost increases", "reversals", "trailing amplitude", "best cost"],
        [
            ["comm-dominated (4,1,1,1)", result.comm_metrics.increases,
             result.comm_metrics.reversals,
             f"{result.comm_metrics.trailing_amplitude:.4f}",
             f"{result.comm_best_cost:.4f}"],
            ["delay-dominated (1,1,1,1)", result.delay_metrics.increases,
             result.delay_metrics.reversals,
             f"{result.delay_metrics.trailing_amplitude:.4f}",
             f"{result.delay_best_cost:.4f}"],
        ],
        "Figure 8: oscillation under fixed alpha (paper: comm-dominated worse)",
    )

    # The paper's qualitative claim.
    assert result.comm_oscillates_more
    # Both runs do oscillate (monotonicity genuinely breaks here).
    assert result.comm_metrics.increases > 0
    # Rapid phase still present: big early cost drop on both rings.
    for profile in (result.comm_profile, result.delay_profile):
        drop = profile[0] - profile.min()
        early_drop = profile[0] - profile[: max(10, len(profile) // 10)].min()
        assert early_drop >= 0.5 * drop
