"""Figure 9 — decreasing alpha shrinks the multi-copy oscillation.

Paper (§7.3): on the communication-dominated ring, alpha = 0.05 oscillates
less than alpha = 0.1, and the decay schedule (cut alpha on observed
oscillation, stop on small successive cost difference) converges.
"""

from repro.experiments.figures import figure9

from _util import emit_table


def _run():
    return figure9(alphas=(0.1, 0.05), iterations=150)


def test_figure9_alpha_decay(benchmark):
    result = benchmark.pedantic(_run, rounds=2, iterations=1)

    rows = [
        [f"alpha={alpha:g} (fixed)", f"{result.amplitudes[alpha]:.5f}"]
        for alpha in sorted(result.profiles, reverse=True)
    ]
    rows.append(["§7.3 decay schedule final cost", f"{result.decayed_final_cost:.4f}"])
    emit_table(
        ["configuration", "trailing amplitude / cost"],
        rows,
        "Figure 9: oscillation amplitude vs alpha (paper: smaller alpha, smaller swings)",
    )

    assert result.smaller_alpha_oscillates_less
    # The decayed run ends at (or below) the best fixed-alpha cost.
    fixed_best = min(p.min() for p in result.profiles.values())
    assert result.decayed_final_cost <= fixed_best + 0.05
