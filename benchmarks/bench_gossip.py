"""Benchmark the gossip mesh (repro.net.gossip).

Three claims are measured, parity-gated before any number is trusted:

* **gossip parity** — a solve warm-started from a *gossiped* donor is
  bit-for-bit the solve warm-started from the same donor in a local
  tier (same allocation, same cost, same iteration count).  Gossip
  moves records, never answers — this is asserted before anything is
  timed.
* **cold → warm across servers** — server A converges a set of origin
  problems; server B (which has never seen them) then replays
  structurally *drifted* variants.  Before the mesh, B solves them cold
  (~0% warm rate, full iteration bills); after A's donors gossip over,
  B warm-starts nearly every one from the lookaside tier.  The replay
  on an unmeshed control server with the same workload is the honest
  baseline, and distinct parameter families per phase keep B's own
  publishes from polluting the measurement.
* **fault injection** — a three-server mesh loses one member mid-run:
  the survivors notice (``net.gossip.peer_down``), keep replicating new
  records between themselves, and an empty replacement on the dead
  peer's address is re-fed back to digest equality by backoff
  reconnect + seq-0 rumor re-feed.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_gossip.py           # full
    PYTHONPATH=src python benchmarks/bench_gossip.py --smoke   # CI-sized

Full mode writes ``benchmarks/BENCH_gossip.json`` (docs/PERFORMANCE.md
reads the checked-in copy).  ``--smoke`` shrinks the workload and does
not overwrite the JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import socket
import time
from pathlib import Path

import numpy as np

from repro.net import NetClient, NetServer

EPSILON = 1e-4
MAX_ITERATIONS = 5_000
GOSSIP_INTERVAL_S = 0.05
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_gossip.json"


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_until(predicate, *, timeout=30.0, interval=0.02) -> float:
    """Poll until ``predicate()`` holds; returns the seconds it took."""
    start = time.perf_counter()
    deadline = start + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return time.perf_counter() - start
        time.sleep(interval)
    if not predicate():
        raise AssertionError("condition never held within the deadline")
    return time.perf_counter() - start


def family(seed: int, *, n: int = 4, offset: int = 0):
    """One parameter family: a base cost structure plus shared rates/mu.

    Scaling the cost matrix perturbs the *structural* fingerprint (every
    variant routes and caches as a brand-new problem) while the
    parameter vector — what the lookaside tier matches on — stays
    identical, so a donor from any variant warm-starts every other.

    ``offset`` scales rates *and* mu by ``3**offset``: the tier's match
    metric is the relative L2 distance, so adjacent offsets sit ~1.9
    apart — beyond ``max_distance`` (1.0) — and a donor can never leak
    across families.  Utilization (and therefore the cost landscape and
    the solver's iteration bill) is offset-invariant, keeping the
    phases comparable."""
    rng = np.random.default_rng(seed)
    scale = 3.0 ** offset
    base = rng.uniform(0.5, 2.0, size=(n, n))
    np.fill_diagonal(base, 0.0)
    rates = [float(v) * scale for v in rng.uniform(0.05, 0.2, size=n)]
    mu = [float(v) * scale for v in rng.uniform(1.5, 3.0, size=n)]

    def payload(pid: str, scale: float, rate_drift: float = 1.0) -> dict:
        matrix = base * scale
        return {
            "id": pid,
            "problem": {
                "cost_matrix": [[float(v) for v in row] for row in matrix],
                "access_rates": [r * rate_drift for r in rates],
                "mu": mu,
                "k": 1.0,
            },
            "alpha": 0.25,
            "epsilon": EPSILON,
            "max_iterations": MAX_ITERATIONS,
        }

    return payload


def origin_of(fam, index: int) -> dict:
    return fam(f"origin-{index}", 1.0)


def drifted_of(fam, index: int, count: int) -> list:
    """``count`` drifted variants of one family: a scaled cost matrix
    (distinct structural key — no exact-cache reuse) plus a few-percent
    access-rate drift (the donor is near, not identical, so the warm
    start still has residual iterations to run; at 10 variants the
    drift tops out at relative distance ~0.67, inside the tier's 1.0
    match radius)."""
    return [
        fam(
            f"drift-{index}-{j}",
            1.0 + 0.01 * (j + 1),
            1.0 + 0.05 * (j + 1),
        )
        for j in range(count)
    ]


def start_mesh(count: int, *, tag: str) -> list:
    ports = [free_port() for _ in range(count)]
    servers = []
    for i, port in enumerate(ports):
        peers = ",".join(
            f"127.0.0.1:{p}" for j, p in enumerate(ports) if j != i
        )
        servers.append(
            NetServer(
                "127.0.0.1", port, workers=1, lookaside=True, peers=peers,
                gossip_interval_s=GOSSIP_INTERVAL_S, server_id=f"{tag}{i}",
            ).start()
        )
    return servers


def digests_equal(servers) -> bool:
    digests = [s.lookaside.digest() for s in servers]
    return all(d == digests[0] for d in digests[1:])


def mesh_ready(servers) -> bool:
    """Every server's every outbound peer link is up."""
    return all(
        peer["ready"]
        for s in servers
        for peer in s.stats()["gossip"]["peers"]
    )


def replay(server: NetServer, payloads: list) -> dict:
    """Solve ``payloads`` against ``server`` sequentially; returns the
    warm-rate and iteration tally of exactly this replay."""
    with NetClient(*server.address, timeout_s=300.0) as client:
        responses = [client.solve_payload(dict(p)) for p in payloads]
    assert all(r["status"] == "ok" for r in responses)
    lookaside = sum(1 for r in responses if r["cache"] == "lookaside")
    return {
        "requests": len(responses),
        "lookaside_hits": lookaside,
        "warm_rate": lookaside / len(responses),
        "solver_iterations": int(sum(r["iterations"] for r in responses)),
        "responses": responses,
    }


def assert_gossip_parity(verbose: bool = True) -> dict:
    """A gossip-donated warm start must equal the local one bit-for-bit."""
    fam = family(411)
    origin, drifted = origin_of(fam, 0), fam("probe", 1.02, 1.05)

    with NetServer(port=0, workers=1, lookaside=True) as control:
        with NetClient(*control.address, timeout_s=300.0) as client:
            assert client.solve_payload(dict(origin))["cache"] == "miss"
            local = client.solve_payload(dict(drifted))
    assert local["cache"] == "lookaside"

    a, b = start_mesh(2, tag="parity")
    try:
        with NetClient(*a.address, timeout_s=300.0) as client:
            assert client.solve_payload(dict(origin))["cache"] == "miss"
        wait_until(lambda: len(b.lookaside) >= 1)
        with NetClient(*b.address, timeout_s=300.0) as client:
            crossed = client.solve_payload(dict(drifted))
    finally:
        for s in (a, b):
            s.shutdown()
    assert crossed["cache"] == "lookaside"
    assert crossed["allocation"] == local["allocation"]  # exact floats
    assert crossed["cost"] == local["cost"]
    assert crossed["iterations"] == local["iterations"]
    if verbose:
        print(
            "parity: gossiped donor == local donor, bit-for-bit "
            f"({local['iterations']} iterations either way)"
        )
    return {"ok": True, "iterations": local["iterations"]}


def bench_cold_to_warm(families: int, drifts: int) -> dict:
    """The tentpole measurement: server B's warm rate on a drifting
    workload, before and after the mesh carries A's convergence over.

    The cold phase replays ``families * drifts`` one-shot families (one
    drifted variant each, never repeated) so nothing B publishes can
    warm a later request.  The warm phase replays ``drifts`` variants of
    each of A's ``families`` — B never solved the origins, so its first
    hit per family can only come from a gossiped donor.  Offsets keep
    every family beyond the tier's match radius of every other."""
    requests = families * drifts
    cold_batch = [
        drifted_of(family(500 + i, offset=i), i, 1)[0] for i in range(requests)
    ]
    warm_fams = [
        family(900 + i, offset=requests + i) for i in range(families)
    ]
    origins = [origin_of(f, i) for i, f in enumerate(warm_fams)]
    warm_batch = [
        p for i, f in enumerate(warm_fams) for p in drifted_of(f, i, drifts)
    ]

    a, b = start_mesh(2, tag="s")
    try:
        wait_until(lambda: mesh_ready((a, b)))
        cold = replay(b, cold_batch)
        tier_before = len(b.lookaside)

        convergence_start = time.perf_counter()
        with NetClient(*a.address, timeout_s=300.0) as client:
            for origin in origins:
                assert client.solve_payload(dict(origin))["status"] == "ok"
        to_b = wait_until(
            lambda: len(b.lookaside) >= tier_before + len(origins)
        )
        converged_in = time.perf_counter() - convergence_start
        warm = replay(b, warm_batch)
        a_counters = a.stats()["counters"]
        b_counters = b.stats()["counters"]
    finally:
        for s in (a, b):
            s.shutdown()

    return {
        "families": families,
        "drifted_per_family": drifts,
        "cold": {k: v for k, v in cold.items() if k != "responses"},
        "gossip_warm": {k: v for k, v in warm.items() if k != "responses"},
        "iteration_reduction": (
            cold["solver_iterations"] / warm["solver_iterations"]
            if warm["solver_iterations"]
            else None  # warm replay needed zero iterations
        ),
        "donor_transfer_s": to_b,
        "converged_in_s": converged_in,
        "records_sent": int(a_counters.get("net.gossip.records_sent", 0)),
        "records_merged": int(b_counters.get("net.gossip.records_merged", 0)),
        "gossip_bytes": int(a_counters.get("net.gossip.bytes", 0)),
    }


def bench_fault_injection() -> dict:
    """Kill one of three servers mid-run; survivors keep replicating and
    a respawned replacement is re-fed to digest equality."""
    def record(key, value):
        return {
            "key": key, "n": 3,
            "params": np.linspace(0.1, 1.0, 7),
            "allocation": np.full(3, value),
            "iterations": 10,
        }

    servers = start_mesh(3, tag="f")
    a, b, c = servers
    c_port = c.port
    try:
        # Wait for every outbound link before the kill: a peer that dies
        # while still connecting is a failed dial, not a ``peer_down``.
        wait_until(lambda: mesh_ready(servers))
        a.lookaside.insert(record("pre-kill", 0.1))
        wait_until(lambda: digests_equal(servers) and len(b.lookaside) == 1)

        kill_start = time.perf_counter()
        c.shutdown()
        wait_until(
            lambda: a.stats()["counters"].get("net.gossip.peer_down", 0) >= 1
            and b.stats()["counters"].get("net.gossip.peer_down", 0) >= 1
        )
        detected_in = time.perf_counter() - kill_start

        # The survivors still replicate new records between themselves.
        a.lookaside.insert(record("during-outage", 0.2))
        survivors_in = wait_until(lambda: len(b.lookaside) == 2)

        revived = NetServer(
            "127.0.0.1", c_port, workers=1, lookaside=True,
            peers=",".join(f"127.0.0.1:{s.port}" for s in (a, b)),
            gossip_interval_s=GOSSIP_INTERVAL_S, server_id="f2b",
        ).start()
        try:
            refed_in = wait_until(
                lambda: digests_equal((a, b, revived))
                and len(revived.lookaside) == 2
            )
            down_events = int(
                a.stats()["counters"].get("net.gossip.peer_down", 0)
            )
        finally:
            revived.shutdown()
    finally:
        a.shutdown()
        b.shutdown()
    return {
        "servers": 3,
        "detected_in_s": detected_in,
        "survivor_replication_s": survivors_in,
        "respawn_refeed_s": refed_in,
        "peer_down_events_on_a": down_events,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small family/drift grid; no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    families, drifts = (2, 3) if args.smoke else (6, 10)

    parity = assert_gossip_parity()

    cold_warm = bench_cold_to_warm(families, drifts)
    cold, warm = cold_warm["cold"], cold_warm["gossip_warm"]
    print(
        f"\n{'phase':>22} {'requests':>9} {'warm rate':>10} {'iterations':>11}"
    )
    for label, row in (("cold (pre-gossip)", cold), ("after gossip", warm)):
        print(
            f"{label:>22} {row['requests']:>9} {row['warm_rate']:>9.0%} "
            f"{row['solver_iterations']:>11}"
        )
    if warm["solver_iterations"] == 0:
        saved = (
            "gossiped donors were within epsilon of every drifted optimum — "
            f"the warm replay ran 0 of the cold replay's "
            f"{cold['solver_iterations']} solver iterations"
        )
    else:
        saved = (
            f"gossip warm starts ran {cold_warm['iteration_reduction']:.2f}x "
            f"fewer solver iterations than the cold replay"
        )
    print(
        f"donors crossed the mesh in "
        f"{cold_warm['donor_transfer_s'] * 1e3:.0f} ms; {saved}"
    )

    fault = bench_fault_injection()
    print(
        f"\nfault injection: peer death detected in "
        f"{fault['detected_in_s'] * 1e3:.0f} ms, survivors replicated in "
        f"{fault['survivor_replication_s'] * 1e3:.0f} ms, respawned peer "
        f"re-fed to digest equality in {fault['respawn_refeed_s'] * 1e3:.0f} ms"
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "gossip_interval_s": GOSSIP_INTERVAL_S,
                "families": families,
                "drifted_per_family": drifts,
                "smoke": args.smoke,
            },
            "parity": parity,
            "cold_to_warm": cold_warm,
            "fault_injection": fault,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
