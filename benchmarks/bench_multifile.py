"""Extension — the §5.4 multi-file model with queueing contention.

The paper's multi-file utility "includes the effects of simultaneous
accesses to different files stored at the same location, a real-world
resource contention phenomenon which is typically not considered in most
FAP formulations".  This bench measures that effect directly: two
mirrored-workload files on a 4-node network, comparing

* the contention-aware fractional allocator (§5.4),
* the greedy whole-file placement (classic integral FAP),
* contention-blind per-file optimization (each file optimized alone, then
  superimposed) — the formulation-gap the paper calls out.
"""

import numpy as np

from repro.baselines import greedy_integral_multifile, local_search_integral_multifile
from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileAllocator, MultiFileProblem

from _util import emit_table


def _problem():
    costs = 1.0 - np.eye(4)
    rates = np.array(
        [
            [0.6, 0.2, 0.1, 0.1],   # file A: hot at node 0
            [0.1, 0.1, 0.2, 0.6],   # file B: hot at node 3
        ]
    )
    return MultiFileProblem(costs, rates, k=1.0, mu=2.4)


def _run_all():
    problem = _problem()
    x0 = np.full((2, 4), 0.25)
    out = {}

    joint = MultiFileAllocator(problem, alpha=0.2, epsilon=1e-6).run(x0)
    out["contention-aware (§5.4)"] = (problem.cost(joint.allocation), joint.allocation)

    greedy_x, greedy_cost = greedy_integral_multifile(problem)
    out["greedy integral"] = (greedy_cost, greedy_x)

    ls_x, ls_cost = local_search_integral_multifile(problem)
    out["local-search integral"] = (ls_cost, ls_x)

    # Contention-blind: optimize each file against the single-file model
    # (which sees only its own traffic), then superimpose.
    blind = np.zeros((2, 4))
    for f in range(2):
        single = FileAllocationProblem(
            problem.cost_matrix, problem.access_rates[f], k=1.0, mu=2.4
        )
        result = DecentralizedAllocator(single, alpha=0.2, epsilon=1e-6).run(
            np.full(4, 0.25)
        )
        blind[f] = result.allocation
    out["contention-blind superposition"] = (problem.cost(blind), blind)
    return out


def test_multifile_contention(benchmark):
    results = benchmark.pedantic(_run_all, rounds=3, iterations=1)

    reference = results["contention-aware (§5.4)"][0]
    emit_table(
        ["method", "true joint cost", "vs contention-aware"],
        [
            [name, f"{cost:.5f}", f"{(cost / reference - 1) * 100:+.2f}%"]
            for name, (cost, _) in results.items()
        ],
        "Extension: §5.4 multi-file allocation under queueing contention",
    )

    # The joint optimizer beats every simplification.
    assert reference <= results["greedy integral"][0] + 1e-9
    assert reference <= results["local-search integral"][0] + 1e-9
    assert (
        results["local-search integral"][0] <= results["greedy integral"][0] + 1e-9
    )
    assert reference <= results["contention-blind superposition"][0] + 1e-9
    # And the two files end up avoiding each other's hot node.
    x = results["contention-aware (§5.4)"][1]
    assert x[0, 0] > x[1, 0]
    assert x[1, 3] > x[0, 3]
