"""Extension — §8.2's neighbours-only communication restriction.

The paper's future work asks for marginal-utility algorithms that keep
feasibility/monotonicity/rapid convergence while nodes talk only to their
neighbours, and says "we are at present in the process of investigating
two such algorithms".  This bench evaluates the two natural candidates
implemented here against the §5.1 broadcast protocol on an 8-node ring:

* **edge exchange** — pairwise Laplacian transfers (2|E| messages/iter,
  more iterations, can stall at a local edge-equilibrium);
* **gossip average** — neighbours-only consensus on the marginals, then
  the exact §5.2 step (identical trajectory to broadcast; pays R gossip
  rounds per iteration).
"""

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.neighbor import GossipAverageAllocator, NeighborOnlyAllocator
from repro.network.builders import ring_graph

from _util import emit, emit_table


def _problem():
    # Delay-dominated so the optimum keeps every node positive (the edge
    # exchange's safe regime; its stall mode is covered in the tests).
    return FileAllocationProblem.from_topology(
        ring_graph(8), np.full(8, 1 / 8), k=2.0, mu=1.5
    )


def _run_all():
    problem = _problem()
    x0 = np.zeros(8)
    x0[0] = 1.0
    out = {}

    broadcast = DecentralizedAllocator(problem, alpha=0.3, epsilon=1e-3).run(x0)
    n = problem.n
    out["broadcast (§5.1)"] = {
        "iterations": broadcast.iterations,
        "messages": (broadcast.iterations + 1) * n * (n - 1),
        "cost": broadcast.cost,
    }

    exchanger = NeighborOnlyAllocator(
        problem, alpha=0.08, epsilon=1e-3, max_iterations=50_000
    )
    exchange = exchanger.run(x0)
    out["edge exchange"] = {
        "iterations": exchange.iterations,
        "messages": exchanger.total_messages(exchange.iterations),
        "cost": exchange.cost,
    }

    gossip = GossipAverageAllocator(
        problem, alpha=0.3, epsilon=1e-3, gossip_tol=1e-6
    )
    g_result = gossip.run(x0)
    out["gossip average"] = {
        "iterations": g_result.iterations,
        "messages": gossip.total_messages(),
        "cost": g_result.cost,
    }
    return out


def test_neighbor_communication_tradeoff(benchmark):
    results = benchmark.pedantic(_run_all, rounds=2, iterations=1)

    emit_table(
        ["scheme", "iterations", "messages", "final cost"],
        [
            [name, r["iterations"], r["messages"], f"{r['cost']:.5f}"]
            for name, r in results.items()
        ],
        "Extension: §8.2 neighbours-only schemes vs broadcast (8-node ring)",
    )
    costs = [r["cost"] for r in results.values()]
    emit(f"all schemes within {max(costs) - min(costs):.2e} of each other in cost")

    # All three reach (essentially) the same optimum...
    assert max(costs) - min(costs) < 1e-3
    # ...edge exchange trades iterations for per-iteration messages...
    assert results["edge exchange"]["iterations"] > results["broadcast (§5.1)"]["iterations"]
    # ...and every neighbours-only scheme pays a real total-message premium
    # on this diameter-4 ring (locality is not free).
    assert results["edge exchange"]["messages"] != results["broadcast (§5.1)"]["messages"]
