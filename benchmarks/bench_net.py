"""Benchmark the sharded socket transport (repro.net).

Two claims are measured, each parity-gated before its time is trusted:

* **throughput vs worker count** — one client streams a fixed request
  mix through :class:`~repro.net.NetServer` at several worker counts
  (caches disabled, so every request is a real solve).  The first
  configuration's responses are checked bit-for-bit against the
  in-process :class:`~repro.service.ServiceClient` — the transport's
  parity contract — before any throughput number is reported.
* **shard-affinity vs random routing** — the same repeat-heavy stream
  against an ``affinity``-routed and a ``random``-routed server with
  identical worker counts.  Affinity sends every repeat of a structure
  to the shard whose cache stored it; random splits repeats across
  shards, so each shard re-solves cold.  The merged ``service.cache.*``
  counters and total solver iterations quantify what locality is worth.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_net.py            # full grid
    PYTHONPATH=src python benchmarks/bench_net.py --smoke    # CI-sized

Full mode writes ``benchmarks/BENCH_net.json`` (docs/PERFORMANCE.md
reads the checked-in copy).  ``--smoke`` shrinks the workload and does
not overwrite the JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.net import NetClient, NetServer
from repro.service import AllocationService, ServiceClient

EPSILON = 1e-4
MAX_ITERATIONS = 5_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_net.json"


def distinct_payloads(count: int, *, seed: int = 7) -> list:
    """``count`` structurally distinct raw-matrix requests (different
    node counts / cost matrices), so affinity routing can spread them."""
    rng = np.random.default_rng(seed)
    payloads = []
    for i in range(count):
        n = 4 + (i % 4)  # 4..7 nodes: four structure classes minimum
        cost = rng.uniform(0.5, 2.0, size=(n, n))
        cost = (cost + cost.T) / 2.0
        np.fill_diagonal(cost, 0.0)
        rates = rng.uniform(0.3, 0.8, size=n)
        rates *= 0.9 / rates.sum()
        payloads.append(
            {
                "id": f"p{i}",
                "problem": {
                    "cost_matrix": [[float(v) for v in row] for row in cost],
                    "access_rates": [float(v) for v in rates],
                    "mu": 1.5,
                    "k": 1.0,
                },
                "alpha": 0.3,
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "start": [float(v) for v in rng.dirichlet(np.ones(n))],
            }
        )
    return payloads


def repeat_stream(payloads: list, rounds: int) -> list:
    """The benchmark stream: every distinct payload, ``rounds`` times,
    round-robin (so repeats always arrive after their original landed)."""
    stream = []
    serial = 0
    for _ in range(rounds):
        for payload in payloads:
            stream.append({**payload, "id": f"s{serial}"})
            serial += 1
    return stream


def strip_latency(response: dict) -> dict:
    clean = dict(response)
    clean.pop("latency_s", None)
    clean.pop("id", None)  # stream ids differ per round by construction
    return clean


def bench_throughput(worker_counts: list, stream: list) -> list:
    """Wall-clock throughput of the wire path per worker count, parity-
    gated against the in-process service on the first configuration."""
    reference = None
    rows = []
    for workers in worker_counts:
        with NetServer(port=0, workers=workers, cache_size=0) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=120.0) as client:
                client.ping()  # connection warm-up outside the clock
                start = time.perf_counter()
                responses = [client.solve_payload(p) for p in stream]
                elapsed = time.perf_counter() - start
        assert all(r["status"] == "ok" for r in responses)
        if reference is None:
            local = ServiceClient(AllocationService(cache_size=0))
            reference = [local.solve_payload(dict(p)) for p in stream]
            for want, have in zip(reference, responses):
                assert strip_latency(have) == strip_latency(want), have.get("id")
        rows.append(
            {
                "workers": workers,
                "requests": len(stream),
                "seconds": elapsed,
                "requests_per_second": len(stream) / elapsed,
                "parity": True,
            }
        )
    return rows


def bench_routing(workers: int, stream: list) -> dict:
    """Affinity vs random routing on identical servers and streams: the
    cache-hit and solver-iteration advantage of shard locality."""
    out = {}
    for policy in ("affinity", "random"):
        with NetServer(port=0, workers=workers, routing=policy) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=120.0) as client:
                responses = [client.solve_payload(p) for p in stream]
                stats = client.stats()
        assert all(r["status"] == "ok" for r in responses)
        counters = stats["counters"]
        out[policy] = {
            "cache_hit": int(counters.get("service.cache.hit", 0)),
            "cache_warm": int(counters.get("service.cache.warm", 0)),
            "cache_miss": int(counters.get("service.cache.miss", 0)),
            "solver_iterations": int(counters.get("service.solver_iterations", 0)),
            "routed_per_shard": [s["routed"] for s in stats["shards"]],
        }
    affinity, random_ = out["affinity"], out["random"]
    return {
        "workers": workers,
        "requests": len(stream),
        "affinity": affinity,
        "random": random_,
        "hit_advantage": affinity["cache_hit"] - random_["cache_hit"],
        "iteration_reduction": (
            random_["solver_iterations"] / max(1, affinity["solver_iterations"])
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small stream, two worker counts, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        worker_counts = [1, 2]
        payloads = distinct_payloads(4)
        rounds = 3
    else:
        worker_counts = [1, 2, 4]
        payloads = distinct_payloads(8)
        rounds = 6
    stream = repeat_stream(payloads, rounds)

    print(f"{'workers':>8} {'requests':>9} {'seconds':>9} {'req/s':>8}")
    throughput = bench_throughput(worker_counts, stream)
    for row in throughput:
        print(
            f"{row['workers']:>8} {row['requests']:>9} "
            f"{row['seconds']:>8.3f}s {row['requests_per_second']:>8.1f}"
        )

    routing = bench_routing(worker_counts[-1], stream)
    print(
        f"\nrouting ({routing['requests']} requests, {routing['workers']} workers): "
        f"affinity hit/warm/miss = "
        f"{routing['affinity']['cache_hit']}/{routing['affinity']['cache_warm']}"
        f"/{routing['affinity']['cache_miss']}, random = "
        f"{routing['random']['cache_hit']}/{routing['random']['cache_warm']}"
        f"/{routing['random']['cache_miss']}; affinity runs "
        f"{routing['iteration_reduction']:.2f}x fewer solver iterations"
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "distinct_structures": len(payloads),
                "rounds": rounds,
                "smoke": args.smoke,
            },
            "throughput": throughput,
            "routing": routing,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
