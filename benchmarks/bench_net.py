"""Benchmark the sharded socket transport (repro.net).

Three claims are measured, parity-gated before any time is trusted:

* **codec parity** — the same pipelined stream is answered bit-for-bit
  identically over the binary codec, the JSON codec, and the in-process
  :class:`~repro.service.ServiceClient` (only wall-clock latency, and
  the dispatch-dependent ``batch_size``, may differ).  This is asserted
  *before* any throughput number is reported.
* **throughput vs worker count** — one client pipelines a repeat-heavy
  working set (tiered reuse distances, see ``working_set_stream``)
  through :class:`~repro.net.NetServer` at several worker counts over
  the binary codec: every frame is in flight before the first response
  is read, so shard queues fill and the workers' micro-batchers fuse
  queued misses into lockstep solves (every structure shares one node
  count, so any shard's queue is fully fusible).  Each worker carries
  the same bounded LRU; what grows with the worker count is *aggregate*
  cache over the sharded working set — the locality the affinity router
  exists to exploit, and (on the single-core CI box, where extra
  processes add no compute) the honest reason the curve rises.  A
  sequential JSON run at one worker, same workload and cache, reproduces
  the pre-binary transport as the before/after baseline.
* **shard-affinity vs random routing** — the same repeat-heavy stream
  against an ``affinity``-routed and a ``random``-routed server with
  identical worker counts.  The merged ``service.cache.*`` counters and
  total solver iterations quantify what locality is worth.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_net.py            # full grid
    PYTHONPATH=src python benchmarks/bench_net.py --smoke    # CI-sized

Full mode writes ``benchmarks/BENCH_net.json`` (docs/PERFORMANCE.md
reads the checked-in copy).  ``--smoke`` shrinks the workload and does
not overwrite the JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.net import NetClient, NetServer
from repro.service import AllocationService, ServiceClient

EPSILON = 1e-4
MAX_ITERATIONS = 5_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_net.json"


def distinct_payloads(count: int, *, nodes: int = 6, seed: int = 7) -> list:
    """``count`` structurally distinct raw-matrix requests.

    Every payload shares one node count but carries its own cost matrix,
    access rates, and start point — distinct structures (distinct cache
    keys, distinct shards under affinity routing) that are nevertheless
    *mutually batchable*: the lockstep kernel fuses any same-shape,
    same-tolerance requests, per-row data varying freely.  A shard queue
    is therefore fully fusible at every worker count, so measured fusion
    is capped by the server's ``max_batch`` alone and adding workers can
    never degrade grouping quality.
    """
    rng = np.random.default_rng(seed)
    payloads = []
    for i in range(count):
        n = nodes
        cost = rng.uniform(0.5, 2.0, size=(n, n))
        cost = (cost + cost.T) / 2.0
        np.fill_diagonal(cost, 0.0)
        rates = rng.uniform(0.3, 0.8, size=n)
        rates *= 0.9 / rates.sum()
        payloads.append(
            {
                "id": f"p{i}",
                "problem": {
                    "cost_matrix": [[float(v) for v in row] for row in cost],
                    "access_rates": [float(v) for v in rates],
                    "mu": 1.5,
                    "k": 1.0,
                },
                "alpha": 0.3,
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "start": [float(v) for v in rng.dirichlet(np.ones(n))],
            }
        )
    return payloads


def as_arrays(payload: dict) -> dict:
    """The same payload with float64 ``ndarray`` problem data.

    Binary-codec callers hold arrays, not lists — keeping them as arrays
    end to end is the codec's point (the packed body is their raw bytes,
    no per-element conversion).  The JSON legs keep the list form; the
    parity gate proves both forms get identical answers.
    """
    out = dict(payload)
    problem = dict(payload["problem"])
    problem["cost_matrix"] = np.asarray(problem["cost_matrix"], dtype=np.float64)
    problem["access_rates"] = np.asarray(problem["access_rates"], dtype=np.float64)
    out["problem"] = problem
    if isinstance(out.get("start"), list):
        out["start"] = np.asarray(out["start"], dtype=np.float64)
    return out


def repeat_stream(payloads: list, rounds: int) -> list:
    """The benchmark stream: every distinct payload, ``rounds`` times,
    round-robin (so repeats always arrive after their original landed)."""
    stream = []
    serial = 0
    for _ in range(rounds):
        for payload in payloads:
            stream.append({**payload, "id": f"s{serial}"})
            serial += 1
    return stream


# Per-worker solution-cache capacity for the throughput runs, and the
# tiered working set sized against it (see ``working_set_stream``).
CACHE_PER_WORKER = 32
HOT, WARM, COLD = 8, 16, 48


def working_set_stream(rounds: int, *, scale: int = 1, seed: int = 7) -> list:
    """A repeat-heavy request mix with *tiered reuse distances*.

    Real serving traffic repeats itself unevenly; what a bounded cache
    is worth depends on how much of the working set it can hold.  Each
    round interleaves three tiers of distinct structures:

    * **hot** (8·scale): twice per round — short reuse distance;
    * **warm** (16·scale): once per round — medium reuse distance;
    * **cold** (48·scale): alternate halves each round — long reuse
      distance.

    Sized against ``CACHE_PER_WORKER``, one worker's LRU holds only the
    hot tier; sharding the working set across more workers brings first
    the warm and then the cold tier inside *somebody's* cache.  That is
    the locality mechanism the affinity router exists to exploit — and
    it is why throughput rises with workers even where raw CPU does not
    (aggregate cache capacity, not parallel compute, is what grows).
    """
    hot = distinct_payloads(HOT * scale, seed=seed)
    warm = distinct_payloads(WARM * scale, seed=seed + 1)
    cold = distinct_payloads(COLD * scale, seed=seed + 2)
    half = len(cold) // 2
    stream = []
    serial = 0
    for r in range(rounds):
        cold_half = cold[:half] if r % 2 == 0 else cold[half:]
        for payload in hot + warm + hot + cold_half:
            stream.append({**payload, "id": f"s{serial}"})
            serial += 1
    return stream


def comparable(response: dict) -> dict:
    """A response with only its deterministic fields: wall-clock latency
    and ``batch_size`` (how the service happened to group the dispatch)
    legitimately vary run to run; the answer must not."""
    clean = dict(response)
    clean.pop("latency_s", None)
    clean.pop("batch_size", None)
    clean.pop("id", None)  # stream ids differ per round by construction
    return clean


def assert_codec_parity(stream: list) -> dict:
    """Bit-for-bit response parity: binary wire == JSON wire == local."""
    local = ServiceClient(AllocationService(cache_size=0))
    reference = [local.solve_payload(dict(p)) for p in stream]
    wire = {}
    for codec in ("binary", "json"):
        # The binary leg ships ndarray-backed payloads (as the timed runs
        # do); the JSON leg ships the list form.  Equality across both
        # proves the answer is independent of codec *and* of how the
        # caller held the problem data.
        sendable = [as_arrays(p) if codec == "binary" else dict(p) for p in stream]
        with NetServer(port=0, workers=2, cache_size=0) as server:
            host, port = server.address
            with NetClient(host, port, codec=codec, timeout_s=300.0) as client:
                wire[codec] = client.solve_payloads(sendable)
    for codec, responses in wire.items():
        assert all(r["status"] == "ok" for r in responses), codec
        for want, have in zip(reference, responses):
            assert comparable(have) == comparable(want), (codec, have.get("id"))
    return {"requests": len(stream), "codecs": ["binary", "json"], "ok": True}


def run_stream(client: NetClient, stream: list) -> float:
    """One timed pipelined pass; returns elapsed seconds."""
    start = time.perf_counter()
    responses = client.solve_payloads(stream)
    elapsed = time.perf_counter() - start
    assert all(r["status"] == "ok" for r in responses)
    return elapsed


def bench_throughput(worker_counts: list, stream: list, *, repeats: int) -> list:
    """Pipelined binary throughput per worker count, best of ``repeats``.

    Every server carries the same per-worker configuration
    (``cache_size=CACHE_PER_WORKER``, ``max_batch=128``, affinity
    routing); workers spawn and the caches fill on an untimed warm-up
    pass.  What changes with the worker count is *aggregate* cache
    capacity over the sharded working set — each row reports the cache
    disposition counts so the locality mechanism is visible next to the
    req/s it buys.
    """
    rows = []
    wire_stream = [as_arrays(p) for p in stream]
    for workers in worker_counts:
        with NetServer(
            port=0, workers=workers,
            cache_size=CACHE_PER_WORKER, max_batch=128,
        ) as server:
            host, port = server.address
            with NetClient(host, port, codec="binary", timeout_s=300.0) as client:
                run_stream(client, wire_stream)  # warm-up pass, untimed
                elapsed = min(
                    run_stream(client, wire_stream) for _ in range(repeats)
                )
                counters = client.stats()["counters"]
        served = int(counters.get("service.requests", 0))
        rows.append(
            {
                "workers": workers,
                "codec": "binary",
                "pipelined": True,
                "requests": len(stream),
                "seconds": elapsed,
                "requests_per_second": len(stream) / elapsed,
                "cache": {
                    "per_worker": CACHE_PER_WORKER,
                    "aggregate": CACHE_PER_WORKER * workers,
                    # Dispositions over every pass, warm-up included.
                    "hit": int(counters.get("service.cache.hit", 0)),
                    "warm": int(counters.get("service.cache.warm", 0)),
                    "miss": int(counters.get("service.cache.miss", 0)),
                    "hit_rate": (
                        counters.get("service.cache.hit", 0) / served
                        if served else 0.0
                    ),
                },
            }
        )
    return rows


def bench_json_sequential(stream: list, *, repeats: int) -> dict:
    """The pre-binary transport, reproduced: JSON codec, one request in
    flight at a time, one worker — same workload and same per-worker
    cache as the binary rows.  The before/after baseline."""
    with NetServer(port=0, workers=1, cache_size=CACHE_PER_WORKER) as server:
        host, port = server.address
        with NetClient(host, port, codec="json", timeout_s=300.0) as client:
            client.ping()  # connection warm-up outside the clock
            best = None
            for _ in range(repeats):
                start = time.perf_counter()
                responses = [client.solve_payload(p) for p in stream]
                elapsed = time.perf_counter() - start
                assert all(r["status"] == "ok" for r in responses)
                best = elapsed if best is None else min(best, elapsed)
    return {
        "workers": 1,
        "codec": "json",
        "pipelined": False,
        "requests": len(stream),
        "seconds": best,
        "requests_per_second": len(stream) / best,
    }


def bench_routing(workers: int, stream: list) -> dict:
    """Affinity vs random routing on identical servers and streams: the
    cache-hit and solver-iteration advantage of shard locality.

    Sequential on purpose: a repeat can only *hit* a cache after its
    original's result landed, so the stream is played one request at a
    time — this measures routing locality, not pipelining."""
    out = {}
    for policy in ("affinity", "random"):
        with NetServer(port=0, workers=workers, routing=policy) as server:
            host, port = server.address
            with NetClient(host, port, timeout_s=300.0) as client:
                responses = [client.solve_payload(p) for p in stream]
                stats = client.stats()
        assert all(r["status"] == "ok" for r in responses)
        counters = stats["counters"]
        out[policy] = {
            "cache_hit": int(counters.get("service.cache.hit", 0)),
            "cache_warm": int(counters.get("service.cache.warm", 0)),
            "cache_miss": int(counters.get("service.cache.miss", 0)),
            "solver_iterations": int(counters.get("service.solver_iterations", 0)),
            "routed_per_shard": [s["routed"] for s in stats["shards"]],
        }
    affinity, random_ = out["affinity"], out["random"]
    return {
        "workers": workers,
        "requests": len(stream),
        "affinity": affinity,
        "random": random_,
        "hit_advantage": affinity["cache_hit"] - random_["cache_hit"],
        "iteration_reduction": (
            random_["solver_iterations"] / max(1, affinity["solver_iterations"])
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small stream, two worker counts, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        worker_counts = [1, 2]
        rounds, repeats = 2, 2
    else:
        worker_counts = [1, 2, 4]
        rounds, repeats = 8, 5
    stream = working_set_stream(rounds)

    parity = assert_codec_parity(repeat_stream(distinct_payloads(4), 2))
    print(f"parity: binary == json == in-process over {parity['requests']} requests")

    print(f"\n{'workers':>8} {'codec':>7} {'mode':>11} {'requests':>9} "
          f"{'seconds':>9} {'req/s':>9} {'hit rate':>9}")
    baseline = bench_json_sequential(stream, repeats=repeats)
    throughput = bench_throughput(worker_counts, stream, repeats=repeats)
    for row in [baseline] + throughput:
        mode = "pipelined" if row["pipelined"] else "sequential"
        cache = row.get("cache")
        hit_rate = f"{cache['hit_rate']:>8.0%}" if cache else f"{'—':>8}"
        print(
            f"{row['workers']:>8} {row['codec']:>7} {mode:>11} "
            f"{row['requests']:>9} {row['seconds']:>8.3f}s "
            f"{row['requests_per_second']:>9.1f} {hit_rate}"
        )
    speedup = (
        throughput[0]["requests_per_second"] / baseline["requests_per_second"]
    )
    print(f"binary+pipelining at 1 worker: {speedup:.1f}x the JSON sequential wire")

    routing = bench_routing(worker_counts[-1], stream)
    print(
        f"\nrouting ({routing['requests']} requests, {routing['workers']} workers): "
        f"affinity hit/warm/miss = "
        f"{routing['affinity']['cache_hit']}/{routing['affinity']['cache_warm']}"
        f"/{routing['affinity']['cache_miss']}, random = "
        f"{routing['random']['cache_hit']}/{routing['random']['cache_warm']}"
        f"/{routing['random']['cache_miss']}; affinity runs "
        f"{routing['iteration_reduction']:.2f}x fewer solver iterations"
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "working_set": {
                    "hot": HOT, "warm": WARM, "cold": COLD,
                    "cache_per_worker": CACHE_PER_WORKER,
                },
                "rounds": rounds,
                "repeats": repeats,
                "smoke": args.smoke,
            },
            "parity": parity,
            "json_sequential_baseline": baseline,
            "throughput": throughput,
            "speedup_vs_json_sequential": speedup,
            "routing": routing,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
