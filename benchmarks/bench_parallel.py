"""Benchmark the three sweep engines: serial loop vs batched kernel vs pool.

Workload: B independent size-N instances (unit-cost complete graphs, k
varied per instance), solved from the paper's skewed start with the same
solver settings on every engine.  Each engine's result is checked for
parity against the serial loop before its time is trusted — a fast wrong
engine is worthless.

Run standalone (not under pytest, unlike the figure benches — this one
measures the harness itself, not a paper figure):

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full grid
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke    # CI-sized

The full grid (N in {10, 50} x B in {16, 256}) writes
``benchmarks/BENCH_parallel.json``; the checked-in copy records the
reference machine's speedups (docs/PERFORMANCE.md reads them).  ``--smoke``
shrinks the grid to one cell (N=10, B=8) and does *not* overwrite the
checked-in JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem
from repro.parallel import BatchedAllocator, BatchedProblem, sweep_parallel

ALPHA = 0.3
EPSILON = 1e-4
MU = 1.5
MAX_ITERATIONS = 5_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_parallel.json"

FULL_GRID = [(10, 16), (10, 256), (50, 16), (50, 256)]
SMOKE_GRID = [(10, 8)]


class _Factory:
    """Picklable problem factory: k varies across the batch, N is fixed.

    Builds the unit-cost complete-graph instance directly from its cost
    matrix (identical to ``from_topology(complete_graph(n), ...)`` but
    without the shortest-path preprocessing, which would otherwise dominate
    the pooled engine's per-worker construction time and muddy the
    comparison of the *solvers*)."""

    def __init__(self, n: int):
        self.n = n

    def __call__(self, k: float) -> FileAllocationProblem:
        rates = np.full(self.n, 1.0 / self.n)
        return FileAllocationProblem(
            1.0 - np.eye(self.n), rates, k=float(k), mu=MU
        )


def _measure(problem, result):
    return {"cost": result.cost, "iterations": result.iterations}


def _grid_values(batch: int) -> list:
    return [float(k) for k in np.linspace(0.5, 2.5, batch)]


def _time(fn, *, repeats: int):
    best, out = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def bench_cell(n: int, batch: int, *, repeats: int, jobs: int) -> dict:
    values = _grid_values(batch)
    factory = _Factory(n)
    problems = [factory(k) for k in values]
    x0 = paper_skewed_allocation(n)

    def run_serial():
        return [
            DecentralizedAllocator(
                p, alpha=ALPHA, epsilon=EPSILON, max_iterations=MAX_ITERATIONS
            ).run(x0)
            for p in problems
        ]

    def run_batched():
        return BatchedAllocator(
            BatchedProblem.from_problems(problems),
            alpha=ALPHA,
            epsilon=EPSILON,
            max_iterations=MAX_ITERATIONS,
        ).run(np.tile(x0, (batch, 1)))

    def run_pooled():
        return sweep_parallel(
            "k", values, factory, measure=_measure,
            initial_allocation=x0, alpha=ALPHA, epsilon=EPSILON,
            max_iterations=MAX_ITERATIONS, max_workers=jobs,
        )

    serial_s, serial = _time(run_serial, repeats=repeats)
    batched_s, batched = _time(run_batched, repeats=repeats)
    pooled_s, pooled = _time(run_pooled, repeats=1)  # pool spin-up dominates

    # Parity gate: a fast wrong engine is worthless.
    for r, s in enumerate(serial):
        assert int(batched.iterations[r]) == s.iterations, (n, batch, r)
        assert np.array_equal(batched.allocations[r], s.allocation), (n, batch, r)
        assert pooled.measurements[r]["cost"] == s.cost, (n, batch, r)

    return {
        "n": n,
        "batch": batch,
        "iterations_max": int(batched.iterations.max()),
        "serial_seconds": serial_s,
        "batched_seconds": batched_s,
        "pooled_seconds": pooled_s,
        "speedup_batched": serial_s / batched_s,
        "speedup_pooled": serial_s / pooled_s,
        "parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small cell (N=10, B=8), no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="pool size for the pooled engine"
    )
    args = parser.parse_args(argv)

    grid = SMOKE_GRID if args.smoke else FULL_GRID
    repeats = 1 if args.smoke else 3
    jobs = args.jobs or os.cpu_count() or 1
    rows = []
    print(f"{'N':>4} {'B':>5} {'serial':>10} {'batched':>10} {'pooled':>10} "
          f"{'x batched':>10} {'x pooled':>9}")
    for n, batch in grid:
        cell = bench_cell(n, batch, repeats=repeats, jobs=jobs)
        rows.append(cell)
        print(f"{n:>4} {batch:>5} {cell['serial_seconds']:>9.4f}s "
              f"{cell['batched_seconds']:>9.4f}s {cell['pooled_seconds']:>9.4f}s "
              f"{cell['speedup_batched']:>9.2f}x {cell['speedup_pooled']:>8.2f}x")

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "alpha": ALPHA, "epsilon": EPSILON, "mu": MU,
                "start": "skewed", "topology": "complete",
                "k_grid": "linspace(0.5, 2.5, B)",
                "pool_jobs": jobs, "cpu_count": os.cpu_count(),
                "smoke": args.smoke,
            },
            "results": rows,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
