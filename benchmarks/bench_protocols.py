"""Ablation — coordination protocols over the simulated network.

Compares the §5.1 schemes (all-to-all broadcast, designated central agent)
and the §8.2 neighbours-only link-state flooding on point-to-point
topologies: messages, link hops, payload bytes, and virtual completion
time per run — making the paper's "approximately the same number of
messages in a broadcast environment [but not point-to-point]" remark and
its locality-restriction question quantitative.
"""

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.distributed import DistributedFapRuntime
from repro.network.builders import complete_graph, ring_graph, star_graph
from repro.obs import MetricsRegistry

from _util import emit_obs, emit_table

TOPOLOGIES = {
    "ring-8": lambda: ring_graph(8),
    "star-8": lambda: star_graph(8, center=0),
    "complete-8": lambda: complete_graph(8),
}


def _run_all():
    out = {}
    for name, factory in TOPOLOGIES.items():
        problem = FileAllocationProblem.from_topology(
            factory(), np.full(8, 1 / 8), mu=1.5
        )
        x0 = np.zeros(8)
        x0[0] = 1.0
        for protocol in ("broadcast", "central", "flooding"):
            run = DistributedFapRuntime(
                problem, protocol=protocol, alpha=0.4, epsilon=1e-3
            ).run(x0)
            out[(name, protocol)] = run
    return out


def test_protocol_traffic_comparison(benchmark):
    results = benchmark.pedantic(_run_all, rounds=2, iterations=1)

    rows = []
    for (topo, protocol), run in results.items():
        rows.append(
            [
                topo,
                protocol,
                run.iterations,
                run.stats.messages,
                run.stats.hops,
                run.stats.payload_bytes,
                f"{run.virtual_time:.1f}",
            ]
        )
    emit_table(
        ["topology", "protocol", "rounds", "messages", "hops", "bytes", "virtual time"],
        rows,
        "Ablation: broadcast vs central-agent coordination (point-to-point)",
    )

    for topo in TOPOLOGIES:
        broadcast = results[(topo, "broadcast")]
        central = results[(topo, "central")]
        flooding = results[(topo, "flooding")]
        # Identical optimization outcomes.
        np.testing.assert_allclose(
            broadcast.allocation, central.allocation, atol=1e-12
        )
        np.testing.assert_allclose(
            broadcast.allocation, flooding.allocation, atol=1e-12
        )
        # Point-to-point: central aggregation sends fewer messages.
        assert central.stats.messages < broadcast.stats.messages
        # Flooding is strictly local: every message is one hop.
        assert flooding.stats.hops == flooding.stats.messages
        assert broadcast.converged and central.converged and flooding.converged

    # Instrumented re-run (untimed): fold MessageStats into a registry and
    # snapshot the per-round traffic telemetry into BENCH_obs.json.
    registry = MetricsRegistry()
    problem = FileAllocationProblem.from_topology(
        TOPOLOGIES["ring-8"](), np.full(8, 1 / 8), mu=1.5
    )
    x0 = np.zeros(8)
    x0[0] = 1.0
    observed = DistributedFapRuntime(
        problem, protocol="broadcast", alpha=0.4, epsilon=1e-3, registry=registry
    ).run(x0)
    assert registry.counters["messages.total"] == observed.stats.messages
    assert registry.counters["protocol.messages"] == observed.stats.messages
    emit_obs("bench_protocols", registry)
