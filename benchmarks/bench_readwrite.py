"""Extension — the replication read/write tension (§8.2).

"Since there are copies of files we may wish to include consistency and
concurrency control costs and distinguish between reads and writes."
Under write-all replication, each additional copy makes reads cheaper and
writes dearer; the bench sweeps the copy count at several write fractions
and reports the classic result: the optimal degree of replication falls
monotonically as the workload becomes write-heavy.
"""

import numpy as np

from repro.multicopy import optimal_copy_count_with_writes
from repro.network.virtual_ring import VirtualRing

from _util import emit_table

RING = (2.0, 1.0, 3.0, 1.0, 2.0, 1.0)
WRITE_FRACTIONS = (0.0, 0.1, 0.2, 0.5)


def _run_all():
    ring = VirtualRing(RING)
    return {
        w: optimal_copy_count_with_writes(
            ring,
            np.ones(6),
            mu=10.0,
            write_fraction=w,
            storage_cost_per_copy=0.3,
            iterations=200,
        )
        for w in WRITE_FRACTIONS
    }


def test_replication_vs_write_fraction(benchmark):
    sweeps = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for w, res in sweeps.items():
        totals = " ".join(f"{e.total_cost:.1f}" for e in res.entries)
        rows.append([f"{w:.0%}", res.best.copies, totals])
    emit_table(
        ["write fraction", "optimal m", "total cost by m = 1..6"],
        rows,
        "Extension: optimal replication degree vs write fraction (write-all)",
    )

    best_ms = [sweeps[w].best.copies for w in WRITE_FRACTIONS]
    # Monotone non-increasing, from full replication down to a single copy.
    assert all(best_ms[i] >= best_ms[i + 1] for i in range(len(best_ms) - 1))
    assert best_ms[0] == 6
    assert best_ms[-1] == 1
