"""Extension — scaling beyond the paper's N = 20.

Figure 6 stops at 20 nodes; this bench extends the same experiment to
N = 200 (complete unit-cost graphs, skewed start, fixed alpha) and also
times the per-iteration wall-clock cost of the vectorized engine, the
quantity an actual deployment would care about.
"""

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem
from repro.obs import MetricsRegistry

from _util import emit_obs, emit_table

SIZES = (10, 50, 100, 200)


def _problem(n):
    # Build the complete-graph cost matrix directly: all off-diagonal 1.
    costs = 1.0 - np.eye(n)
    return FileAllocationProblem(costs, np.full(n, 1.0 / n), k=1.0, mu=1.5)


def _run_all():
    # The timed path carries no registry (the no-observability baseline)
    # and uses the sampled trace policy: long large-N runs should not pay
    # O(N * iterations) memory for allocation snapshots nobody reads.
    out = {}
    for n in SIZES:
        problem = _problem(n)
        result = DecentralizedAllocator(
            problem, alpha=0.5, epsilon=1e-3, max_iterations=2_000,
            keep_allocations="sampled",
        ).run(paper_skewed_allocation(n))
        out[n] = result
    return out


def test_scaling_to_large_networks(benchmark):
    results = benchmark.pedantic(_run_all, rounds=2, iterations=1)

    # One instrumented re-run (outside the timed region) snapshots the
    # run-wide metrics — including the peak trace memory the sampled
    # policy actually retained — into BENCH_obs.json.
    registry = MetricsRegistry()
    n_obs = max(SIZES)
    observed = DecentralizedAllocator(
        _problem(n_obs), alpha=0.5, epsilon=1e-3, max_iterations=2_000,
        keep_allocations="sampled", registry=registry,
    ).run(paper_skewed_allocation(n_obs))
    np.testing.assert_array_equal(observed.allocation, results[n_obs].allocation)
    emit_obs("bench_scaling", registry)

    rows = []
    for n, result in results.items():
        rows.append(
            [
                n,
                result.iterations,
                "yes" if result.converged else "NO",
                f"{np.abs(result.allocation - 1.0 / n).max():.2e}",
            ]
        )
    emit_table(
        ["N", "iterations", "converged", "max |x - 1/N|"],
        rows,
        "Extension: figure-6 scaling continued to N = 200",
    )

    counts = [r.iterations for r in results.values()]
    # The paper's flatness claim continues to hold well past N = 20.
    assert max(counts) <= 3 * max(1, min(counts))
    for n, result in results.items():
        assert result.converged
        np.testing.assert_allclose(result.allocation, 1.0 / n, atol=1e-3)


def test_single_iteration_wall_clock(benchmark):
    """Time one 200-node iteration (gradient + step + bookkeeping)."""
    problem = _problem(200)
    allocator = DecentralizedAllocator(problem, alpha=0.5)
    x = paper_skewed_allocation(200)

    def one_step():
        allocator.step(x.copy(), iteration=1)

    benchmark(one_step)
