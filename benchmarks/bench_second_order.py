"""Ablation — the §8.2 second-derivative algorithm.

The paper's pilot study claims the second-order variant (a) keeps
feasibility and monotonicity, (b) is "resilient to changes in the scale of
the problem, such as would be caused by increasing the link costs or
changing the service rates", and (c) tolerates a wider stepsize range.

Scale resilience is demonstrated by multiplying the *entire* cost function
by ``s`` (link costs and ``k`` together, with the convergence tolerance
scaled to keep the same relative accuracy): the fixed-alpha first-order
iteration count grows like ``1/s`` while the second-order count does not
move — the Newton-like step ``(q* - g)/h`` is invariant because ``g`` and
``h`` scale identically.
"""

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.second_order import SecondOrderAllocator
from repro.network.builders import ring_graph
from repro.network.shortest_paths import all_pairs_shortest_paths

from _util import emit_table

SCALES = (1.0, 0.1, 0.01)


def _instance(scale: float) -> FileAllocationProblem:
    costs = all_pairs_shortest_paths(ring_graph(5, [1.0, 2.0, 0.5, 3.0, 1.5]))
    rates = np.array([0.05, 0.3, 0.1, 0.25, 0.2])
    return FileAllocationProblem(costs * scale, rates, k=0.7 * scale, mu=2.0)


def _run_all():
    x0 = np.full(5, 0.2)
    rows = []
    for scale in SCALES:
        problem = _instance(scale)
        first = DecentralizedAllocator(
            problem, alpha=0.3, epsilon=1e-4 * scale, max_iterations=30_000
        ).run(x0)
        second = SecondOrderAllocator(
            problem, alpha=1.0, epsilon=1e-4 * scale, max_iterations=3_000
        ).run(x0)
        rows.append((scale, first, second))
    return rows


def test_second_order_scale_resilience(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=2, iterations=1)

    table = []
    for scale, first, second in rows:
        table.append(
            [
                f"x{scale:g}",
                first.iterations if first.converged else ">=30000",
                second.iterations if second.converged else ">=3000",
                "yes" if second.trace.is_monotone() else "NO",
            ]
        )
    emit_table(
        ["cost scale", "first-order iters (alpha=0.3)",
         "second-order iters (alpha=1)", "2nd monotone"],
        table,
        "Ablation: §8.2 second-derivative algorithm vs problem scale",
    )

    second_counts = [second.iterations for _, _, second in rows]
    first_counts = [first.iterations for _, first, _ in rows]
    # (b) scale resilience: second-order counts do not move.
    assert max(second_counts) - min(second_counts) <= 2
    for _, first, second in rows:
        assert second.converged
        assert second.trace.is_monotone()  # (a)
    # The fixed-alpha first-order count grows roughly like 1/scale.
    assert first_counts[-1] > 20 * first_counts[0]


def test_second_order_alpha_tolerance(benchmark):
    problem = _instance(1.0)
    x0 = np.full(5, 0.2)

    def _sweep():
        out = {}
        for alpha in (0.25, 0.5, 1.0, 1.5):
            out[alpha] = SecondOrderAllocator(
                problem, alpha=alpha, epsilon=1e-4, max_iterations=2_000
            ).run(x0)
        return out

    results = benchmark.pedantic(_sweep, rounds=3, iterations=1)
    emit_table(
        ["alpha", "iterations", "converged"],
        [[a, r.iterations, "yes" if r.converged else "NO"] for a, r in results.items()],
        "Ablation: second-order stepsize tolerance (6x alpha range)",
    )
    # (c) convergence across the whole range.
    assert all(r.converged for r in results.values())
