"""Benchmark the allocation service: micro-batching and the warm cache.

Two claims are measured, each parity-gated before its time is trusted:

* **burst dispatch** — B same-shape requests (varied k / rates / stepsize
  / start) submitted as one burst.  A ``max_batch=B`` service dispatches
  them as one lockstep solve; a ``max_batch=1`` service solves each on
  the singleton fast path.  Both must return bit-for-bit identical
  responses (the service's parity guarantee); the speedup is the
  micro-batcher's contribution.
* **repeat stream** — a request stream with day-to-day structure: exact
  repeats of earlier specs plus lognormal-perturbed variants.  A
  cache-enabled service answers repeats from the cache and warm-starts
  near-misses from their nearest donor; a cache-disabled service solves
  everything cold.  The ratio of total solver iterations is the cache's
  contribution, with hit/warm/miss counters from the registry.

Run standalone:

    PYTHONPATH=src python benchmarks/bench_service.py            # full grid
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI-sized

Full mode writes ``benchmarks/BENCH_service.json`` (docs/PERFORMANCE.md
reads the checked-in copy).  ``--smoke`` shrinks the workload and does
not overwrite the JSON unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.algorithm import solve
from repro.core.model import FileAllocationProblem
from repro.obs import MetricsRegistry
from repro.service import AllocationService, SolveRequest
from repro.workloads import perturbed_rates, zipf_rates

EPSILON = 1e-4
MAX_ITERATIONS = 5_000
DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_service.json"

FULL_BURSTS = [(10, 16), (10, 64), (10, 256), (50, 16), (50, 256)]
SMOKE_BURSTS = [(10, 32)]


def burst_requests(n: int, batch: int, *, seed: int = 7) -> list:
    """``batch`` compatible requests on unit-cost complete graphs:
    same shape, varied k / rates / start.

    Alpha is held fixed across the burst: the lockstep kernel runs until
    its slowest row converges, so a wide stepsize spread would measure
    the straggler effect rather than the dispatch overhead."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(batch):
        rates = rng.uniform(0.2, 0.8, size=n)
        rates *= 0.9 / rates.sum()  # total < 1.0 < mu everywhere
        problem = FileAllocationProblem(
            1.0 - np.eye(n), rates,
            k=float(rng.uniform(0.5, 2.5)), mu=1.5,
        )
        requests.append(
            SolveRequest(
                problem=problem,
                alpha=0.3,
                epsilon=EPSILON,
                max_iterations=MAX_ITERATIONS,
                initial_allocation=rng.dirichlet(np.ones(n)),
                request_id=f"burst-{n}-{i}",
            )
        )
    return requests


def _time(fn, *, repeats: int):
    best, out = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def bench_burst(n: int, batch: int, *, repeats: int) -> dict:
    requests = burst_requests(n, batch)

    def run_batched():
        return AllocationService(max_batch=batch, cache_size=0).solve_many(requests)

    def run_singleton():
        return AllocationService(max_batch=1, cache_size=0).solve_many(requests)

    batched_s, batched = _time(run_batched, repeats=repeats)
    single_s, single = _time(run_singleton, repeats=repeats)

    # Parity gate: grouped and singleton dispatch must agree bit-for-bit,
    # and both must match the reference serial engine.
    for request, b, s in zip(requests, batched, single):
        assert b.batch_size == batch and s.batch_size == 1
        assert np.array_equal(b.allocation, s.allocation), request.request_id
        assert b.cost == s.cost and b.iterations == s.iterations
        ref = solve(
            request.problem, alpha=request.alpha, epsilon=request.epsilon,
            max_iterations=request.max_iterations,
            initial_allocation=request.initial_allocation,
        )
        assert np.array_equal(b.allocation, ref.allocation), request.request_id
        assert b.cost == ref.cost and b.iterations == ref.iterations

    return {
        "n": n,
        "batch": batch,
        "iterations_max": int(max(r.iterations for r in batched)),
        "singleton_seconds": single_s,
        "batched_seconds": batched_s,
        "speedup_batched": single_s / batched_s,
        "parity": True,
    }


def stream_requests(*, n: int, distinct: int, repeats_per: int, variants: int) -> list:
    """A repeat-heavy stream: ``distinct`` base specs, each replayed
    ``repeats_per`` times exactly and perturbed into ``variants``
    near-miss variants ('same workload, different day')."""
    bases = []
    for i in range(distinct):
        rates = zipf_rates(n, exponent=1.0 + 0.05 * i, total=0.8, seed=i)
        bases.append(rates)
    requests = []
    serial = 0
    for round_i in range(repeats_per):
        for i, rates in enumerate(bases):
            requests.append(_stream_request(n, rates, f"s{serial}"))
            serial += 1
    for day in range(1, variants + 1):
        for i, rates in enumerate(bases):
            jittered = perturbed_rates(rates, relative_noise=0.01, seed=100 * i + day)
            requests.append(_stream_request(n, jittered, f"s{serial}"))
            serial += 1
    return requests


def _stream_request(n: int, rates, request_id: str) -> SolveRequest:
    problem = FileAllocationProblem(1.0 - np.eye(n), rates, k=1.0, mu=1.5)
    return SolveRequest(
        problem=problem, alpha=0.3, epsilon=EPSILON,
        max_iterations=MAX_ITERATIONS, request_id=request_id,
    )


def bench_stream(*, n: int, distinct: int, repeats_per: int, variants: int) -> dict:
    requests = stream_requests(
        n=n, distinct=distinct, repeats_per=repeats_per, variants=variants
    )

    def run(service):
        responses = []
        window = service.batcher.max_batch
        for i in range(0, len(requests), window):
            responses.extend(service.solve_many(requests[i : i + window]))
        return responses

    # Window = one repeat round, so each round's repeats probe the cache
    # *after* the previous round's results landed (a repeat batched with
    # its original would miss: the cache is probed before dispatch).
    window = distinct
    warm_registry = MetricsRegistry()
    warm_service = AllocationService(max_batch=window, registry=warm_registry)
    warm_s, warm = _time(lambda: run(warm_service), repeats=1)

    cold_registry = MetricsRegistry()
    cold_service = AllocationService(
        max_batch=window, cache_size=0, registry=cold_registry
    )
    cold_s, cold = _time(lambda: run(cold_service), repeats=1)

    # Parity gate on the answers that must agree exactly: cold solves and
    # cache hits reproduce the cold stream bit-for-bit.  (Warm-started
    # variants converge to the same optimum by a shorter path; their
    # allocations agree only to epsilon, so costs are compared loosely.)
    for request, w, c in zip(requests, warm, cold):
        assert w.ok and c.ok, request.request_id
        if w.cache in ("hit", "miss"):
            assert np.array_equal(w.allocation, c.allocation), request.request_id
        else:
            assert abs(w.cost - c.cost) <= 1e-3 * abs(c.cost), request.request_id

    warm_iters = sum(r.iterations for r in warm)
    cold_iters = sum(r.iterations for r in cold)
    counters = warm_registry.counters
    return {
        "n": n,
        "stream_length": len(requests),
        "distinct_specs": distinct,
        "cold_iterations": cold_iters,
        "warm_iterations": warm_iters,
        "iteration_reduction": cold_iters / max(1, warm_iters),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "cache_hit": int(counters.get("service.cache.hit", 0)),
        "cache_warm": int(counters.get("service.cache.warm", 0)),
        "cache_miss": int(counters.get("service.cache.miss", 0)),
        "latency_p95_s": warm_service.latency_percentiles()["p95"],
        "parity": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small burst + short stream, no JSON unless --out is given",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"output JSON path (full mode default: {DEFAULT_OUT.name})",
    )
    args = parser.parse_args(argv)

    bursts = SMOKE_BURSTS if args.smoke else FULL_BURSTS
    repeats = 1 if args.smoke else 3

    print(f"{'N':>4} {'B':>5} {'singleton':>11} {'batched':>10} {'x batched':>10}")
    burst_rows = []
    for n, batch in bursts:
        cell = bench_burst(n, batch, repeats=repeats)
        burst_rows.append(cell)
        print(f"{n:>4} {batch:>5} {cell['singleton_seconds']:>10.4f}s "
              f"{cell['batched_seconds']:>9.4f}s {cell['speedup_batched']:>9.2f}x")

    stream_cfg = (
        dict(n=10, distinct=4, repeats_per=2, variants=1)
        if args.smoke
        else dict(n=10, distinct=8, repeats_per=3, variants=4)
    )
    stream = bench_stream(**stream_cfg)
    print(
        f"\nrepeat stream ({stream['stream_length']} requests, "
        f"{stream['distinct_specs']} distinct): "
        f"cold {stream['cold_iterations']} iters -> warm "
        f"{stream['warm_iterations']} iters "
        f"({stream['iteration_reduction']:.1f}x fewer); cache "
        f"hit/warm/miss = {stream['cache_hit']}/{stream['cache_warm']}"
        f"/{stream['cache_miss']}"
    )

    out = args.out
    if out is None and not args.smoke:
        out = str(DEFAULT_OUT)
    if out is not None:
        payload = {
            "config": {
                "epsilon": EPSILON,
                "max_iterations": MAX_ITERATIONS,
                "topology": "complete (unit cost)",
                "stream": stream_cfg,
                "smoke": args.smoke,
            },
            "burst": burst_rows,
            "repeat_stream": stream,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
