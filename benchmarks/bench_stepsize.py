"""Ablation — how conservative is the Theorem-2 stepsize bound?

The appendix proves monotonicity for alpha below a closed-form bound but
notes the bound "may be overly restrictive" and suggests computing alpha
dynamically per iteration.  This bench measures, on the figure-3 setup:

* the static bound's value and the iterations a run at that alpha would
  need (extrapolated — actually running it would take ~1e9 iterations);
* the dynamic per-iteration policy;
* backtracking line search;
* the best fixed alpha.
"""

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import (
    BacktrackingLineSearch,
    DynamicStep,
    theorem2_alpha_bound,
)

from _util import emit, emit_table


def _run_all():
    problem = FileAllocationProblem.paper_network()
    x0 = paper_skewed_allocation(4)
    runs = {}
    runs["fixed 0.67 (best of fig 5)"] = DecentralizedAllocator(
        problem, alpha=0.67, epsilon=1e-3
    ).run(x0)
    runs["dynamic (appendix)"] = DecentralizedAllocator(
        problem, alpha=DynamicStep(), epsilon=1e-3
    ).run(x0)
    runs["line search"] = DecentralizedAllocator(
        problem, alpha=BacktrackingLineSearch(initial=2.0), epsilon=1e-3
    ).run(x0)
    return problem, runs


def test_stepsize_policy_ablation(benchmark):
    problem, runs = benchmark.pedantic(_run_all, rounds=3, iterations=1)

    bound = theorem2_alpha_bound(problem, epsilon=1e-3)
    rows = [["theorem-2 bound (static)", f"{bound:.3g}", "~1e9 (extrapolated)", "-"]]
    for name, result in runs.items():
        mean_alpha = float(np.nanmean(result.trace.alphas()))
        rows.append(
            [
                name,
                f"{mean_alpha:.3g}",
                result.iterations,
                "yes" if result.trace.is_monotone() else "NO",
            ]
        )
    emit_table(
        ["policy", "alpha (mean)", "iterations", "monotone"],
        rows,
        "Ablation: stepsize policies on the figure-3 setup",
    )
    best_fixed = runs["fixed 0.67 (best of fig 5)"]
    emit(f"theory/practice gap: best fixed alpha is "
         f"{0.67 / bound:.3g}x the provable bound")

    # The static bound is astronomically conservative (the paper's point).
    assert bound < 1e-6
    # Both principled policies converge monotonically and quickly.
    for name in ("dynamic (appendix)", "line search"):
        assert runs[name].converged
        assert runs[name].trace.is_monotone()
        assert runs[name].iterations <= 3 * max(1, best_fixed.iterations)
