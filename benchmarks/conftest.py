"""Benchmark-suite configuration.

The paper-vs-measured tables each bench prints are the deliverable.  Since
pytest captures per-test output, every table is also appended to
``benchmarks/bench_tables.txt`` (truncated at session start), and the whole
log is replayed through the terminal reporter at the end of the run so
piped/teed benchmark logs contain the tables alongside the timing summary.
"""

from pathlib import Path

import pytest

TABLE_LOG = Path(__file__).resolve().parent / "bench_tables.txt"
OBS_LOG = Path(__file__).resolve().parent / "BENCH_obs.json"


def pytest_sessionstart(session):
    TABLE_LOG.write_text("")
    OBS_LOG.write_text("{}\n")


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if TABLE_LOG.exists():
        text = TABLE_LOG.read_text().strip()
        if text:
            terminalreporter.section("paper-vs-measured tables")
            for line in text.splitlines():
                terminalreporter.write_line(line)
