"""Adaptive reallocation under a drifting workload (§8 conclusions).

The paper suggests running the algorithm "occasionally at night" to track
changing access patterns, with nodes *estimating* the parameters they need.
This example builds that scenario on a five-node ring: the workload hotspot
rotates every epoch, each node estimates its access rate from a Poisson
observation window, the algorithm runs a few iterations per epoch from the
current allocation (safe, because every intermediate allocation is feasible
and better — §5.3), and we compare three strategies:

* frozen     — never re-optimize (the initial uniform allocation);
* adaptive   — the §8 loop with estimated parameters;
* clairvoyant — the exact optimum for each epoch's true workload.

Run:  python examples/adaptive_reallocation.py
"""

import numpy as np

from repro.estimation import AdaptiveAllocationLoop
from repro.network.builders import ring_graph
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.utils.tables import format_table


def rotating_hotspot(epoch: int) -> np.ndarray:
    """Each epoch, one node generates most of the traffic."""
    rates = np.full(5, 0.08)
    rates[epoch % 5] = 0.56
    return rates


def main() -> None:
    cost_matrix = all_pairs_shortest_paths(ring_graph(5))
    loop = AdaptiveAllocationLoop(
        cost_matrix,
        rotating_hotspot,
        mu=1.6,
        k=1.0,
        iterations_per_epoch=10,
        estimation_window=2_000.0,  # how long each node observes per epoch
        alpha=0.3,
        seed=7,
    )
    history = loop.run(epochs=10, initial_allocation=np.full(5, 0.2))

    rows = []
    for epoch in history:
        rows.append(
            [
                epoch.epoch,
                int(np.argmax(epoch.true_rates)),
                f"{epoch.adapted_cost:.4f}",
                f"{epoch.frozen_cost:.4f}",
                f"{epoch.optimal_cost:.4f}",
                f"{(epoch.adapted_cost / epoch.optimal_cost - 1) * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["epoch", "hot node", "adaptive", "frozen", "clairvoyant", "adaptive gap"],
            rows,
            title="Tracking a rotating hotspot (costs under the true workload)",
        )
    )

    adaptive = np.mean([e.adapted_cost for e in history[1:]])
    frozen = np.mean([e.frozen_cost for e in history[1:]])
    optimal = np.mean([e.optimal_cost for e in history[1:]])
    print(f"\nmean cost  adaptive:    {adaptive:.4f}")
    print(f"mean cost  frozen:      {frozen:.4f}")
    print(f"mean cost  clairvoyant: {optimal:.4f}")
    print(f"\nadaptation recovers "
          f"{(frozen - adaptive) / (frozen - optimal) * 100:.0f}% of the gap "
          f"between frozen and clairvoyant, using only estimated parameters.")


if __name__ == "__main__":
    main()
