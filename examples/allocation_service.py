"""Allocation-as-a-service: micro-batching, the warm cache, admission.

Runs an in-process :class:`repro.AllocationService` through its three
headline behaviors:

1. a burst of compatible requests dispatched as ONE lockstep solve,
   each answer bit-for-bit identical to a solo reference solve;
2. the solution cache: an exact repeat answered without running the
   solver at all, a near-miss warm-started from its nearest donor;
3. admission control: a full queue turning overload into a structured
   rejection instead of unbounded latency.

Run:  python examples/allocation_service.py
"""

import numpy as np

import repro
from repro.core.algorithm import solve
from repro.obs import MetricsRegistry
from repro.service import AdmissionController
from repro.workloads import perturbed_rates, zipf_rates

N = 6
MU = 1.5


def request_for(rates, **options) -> repro.SolveRequest:
    problem = repro.FileAllocationProblem(1.0 - np.eye(N), rates, k=1.0, mu=MU)
    return repro.SolveRequest(problem=problem, alpha=0.3, **options)


def main() -> None:
    registry = MetricsRegistry()
    service = repro.AllocationService(max_batch=16, registry=registry)
    print(f"service: {service}")

    # 1. A same-shape burst: one lockstep dispatch, per-request parity.
    burst = [
        request_for(zipf_rates(N, exponent=1.0 + 0.1 * i, total=0.8, seed=i),
                    request_id=f"burst-{i}")
        for i in range(8)
    ]
    responses = service.solve_many(burst)
    print(f"\nburst of {len(burst)} requests -> "
          f"batch_size={responses[0].batch_size} (one lockstep solve)")
    reference = solve(burst[0].problem, alpha=0.3,
                      initial_allocation=burst[0].initial_allocation)
    same = np.array_equal(responses[0].allocation, reference.allocation)
    print(f"batched answer == solo reference solve (bit-for-bit): {same}")

    # 2. The cache: exact repeat -> hit; perturbed repeat -> warm start.
    repeat = service.solve(request_for(burst[0].problem.access_rates,
                                       request_id="repeat"))
    print(f"\nexact repeat:    cache={repeat.cache}, "
          f"iterations={repeat.iterations} (no solver run)")
    jittered = perturbed_rates(burst[0].problem.access_rates,
                               relative_noise=0.02, seed=99)
    warm = service.solve(request_for(jittered, request_id="tomorrow"))
    cold_iters = responses[0].iterations
    print(f"perturbed repeat: cache={warm.cache}, iterations={warm.iterations} "
          f"(cold solve took {cold_iters})")

    # 3. Admission control: depth-2 queue, third arrival rejected.
    tiny = repro.AllocationService(
        admission=AdmissionController(max_queue_depth=2)
    )
    tickets = [tiny.submit(request_for(zipf_rates(N, total=0.8, seed=s),
                                       request_id=f"q-{s}"))
               for s in range(3)]
    rejected = tickets[-1].response
    print(f"\nqueue bound: third arrival -> {rejected.status} "
          f"({rejected.reason}: {rejected.detail})")
    tiny.pump()
    print(f"admitted tickets still answered: "
          f"{all(t.response.ok for t in tickets[:2])}")

    # The registry told the whole story.
    c = registry.counters
    print(f"\nservice counters: requests={int(c['service.requests'])}, "
          f"batches={int(c['service.batches'])}, "
          f"hit/warm/miss={int(c.get('service.cache.hit', 0))}"
          f"/{int(c.get('service.cache.warm', 0))}"
          f"/{int(c.get('service.cache.miss', 0))}")


if __name__ == "__main__":
    main()
