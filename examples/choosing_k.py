"""A rationale for choosing k (§8 future work) — the designer's workflow.

The cost function weighs communication against delay through the constant
``k``, and the paper's future-work list asks for "a suitable framework in
which to choose values for the various parameters such as k".  This
example supplies the operational version of that framework on a 6-node
network whose nodes are two-server M/M/2 stations (the §5.4 drop-in
queueing generalization):

1. sweep ``k`` and print the communication/delay frontier of the *optimal*
   allocation at each point;
2. pick the smallest ``k`` whose optimum meets a mean-delay budget
   (bisection — delay is monotone in k);
3. solve the chosen instance with the decentralized algorithm and verify
   the deployed allocation honours the budget.

Run:  python examples/choosing_k.py
"""

import numpy as np

from repro.analysis import choose_k_for_delay_budget, sweep_k
from repro.core import DecentralizedAllocator, FileAllocationProblem
from repro.network.builders import ring_graph
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.queueing import MMcDelay
from repro.utils.tables import format_table

COSTS = None  # computed once below
RATES = np.array([0.35, 0.15, 0.10, 0.10, 0.15, 0.15])
# Mean sojourn time per access the SLA allows.  The floor is the M/M/2
# service time 1/0.8 = 1.25 (even full fragmentation cannot beat it), and
# full concentration pays ~2.05, so 1.35 is a binding, feasible budget.
DELAY_BUDGET = 1.35


def factory(k: float) -> FileAllocationProblem:
    """The same network at a given k; nodes are M/M/2 stations."""
    models = [MMcDelay(0.8, servers=2) for _ in range(6)]
    return FileAllocationProblem(COSTS, RATES, k=k, delay_models=models)


def main() -> None:
    global COSTS
    COSTS = all_pairs_shortest_paths(ring_graph(6, [1, 2, 1, 3, 1, 2]))

    # 1. The frontier.
    grid = [0.01, 0.05, 0.2, 1.0, 5.0, 25.0]
    points = sweep_k(factory, grid)
    rows = [
        [
            f"{p.k:g}",
            f"{p.mean_delay:.4f}",
            f"{p.mean_communication_cost:.4f}",
            f"{p.spread_nodes:.2f}",
        ]
        for p in points
    ]
    print(
        format_table(
            ["k", "mean delay", "mean comm cost", "nodes holding mass"],
            rows,
            title="The k frontier: delay falls, communication rises",
        )
    )

    # 2. Choose k for the budget.
    chosen = choose_k_for_delay_budget(factory, DELAY_BUDGET)
    print(f"\ndelay budget {DELAY_BUDGET}: smallest adequate k = {chosen.k:.4g}")
    print(f"  optimum there: delay {chosen.mean_delay:.4f}, "
          f"comm {chosen.mean_communication_cost:.4f}")

    # 3. Deploy: run the decentralized algorithm at the chosen k.
    problem = factory(chosen.k)
    result = DecentralizedAllocator(problem, alpha=0.2, epsilon=1e-6).run()
    deployed_delay = float(np.sum(problem.delays(result.allocation) * result.allocation))
    print(f"\ndecentralized run: converged={result.converged} "
          f"in {result.iterations} iterations")
    print(f"deployed allocation: {np.round(result.allocation, 4)}")
    print(f"deployed mean delay: {deployed_delay:.4f} "
          f"({'meets' if deployed_delay <= DELAY_BUDGET else 'MISSES'} the budget)")


if __name__ == "__main__":
    main()
