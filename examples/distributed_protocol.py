"""The algorithm as actual messages: protocol comparison + storage handoff.

§5.1 sketches two ways to aggregate the marginal utilities — all-to-all
broadcast, or a designated central agent.  This example runs both over the
discrete-event network simulator on a six-node ring, verifies they compute
*exactly* the same allocation as the centralized mathematics, compares
their traffic bills, and finally realizes the optimized allocation as
actual record fragments with a directory (§8.1), serving a few lookups.

Run:  python examples/distributed_protocol.py
"""

import numpy as np

from repro.core import DecentralizedAllocator, FileAllocationProblem
from repro.distributed import DistributedFapRuntime, simulate_access_traffic
from repro.network.builders import ring_graph
from repro.storage import File, StorageCluster
from repro.utils.tables import format_table


def main() -> None:
    topo = ring_graph(6)
    rates = np.array([0.30, 0.10, 0.05, 0.05, 0.10, 0.40])  # two hot readers
    problem = FileAllocationProblem.from_topology(topo, rates, k=1.0, mu=1.4)
    x0 = np.full(6, 1 / 6)

    # Ground truth: the centralized math.
    math_result = DecentralizedAllocator(problem, alpha=0.25, epsilon=1e-4).run(x0)

    rows = []
    for protocol in ("broadcast", "central"):
        run = DistributedFapRuntime(
            problem, protocol=protocol, alpha=0.25, epsilon=1e-4
        ).run(x0)
        identical = bool(np.array_equal(run.allocation, math_result.allocation))
        rows.append(
            [
                protocol,
                run.iterations,
                run.stats.messages,
                run.stats.hops,
                run.stats.payload_bytes,
                f"{run.virtual_time:.1f}",
                "yes" if identical else "NO",
            ]
        )
    print(
        format_table(
            ["protocol", "rounds", "messages", "link hops", "bytes",
             "virtual time", "== central math"],
            rows,
            title="§5.1 coordination schemes over a store-and-forward 6-ring",
        )
    )
    print(f"\noptimized allocation: {np.round(math_result.allocation, 4)}")
    print(f"cost: {math_result.cost:.4f} "
          f"(uniform start cost was {problem.cost(x0):.4f})")

    # Validate the model against simulated Poisson access traffic.
    stats = simulate_access_traffic(
        problem, math_result.allocation, accesses=40_000, seed=11
    )
    print(f"\nempirical cost per access: {stats.mean_total_cost:.4f} "
          f"± {2 * stats.total_cost_stderr:.4f} "
          f"(model says {math_result.cost:.4f})")

    # Realize the allocation as record fragments (§8.1).
    file = File(500, name="accounts")
    cluster = StorageCluster.from_allocation(file, math_result.allocation, 6)
    print(f"\nrealized fractions: {np.round(cluster.realized_fractions(), 4)}")
    for key in (0, 123, 499):
        node, record = cluster.query(key)
        print(f"  record {key:3d} -> node {node}")


if __name__ == "__main__":
    main()
