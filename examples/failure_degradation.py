"""Graceful degradation under node failures (§4a).

The paper's first argument for fragmentation: "failure of one or more
nodes only means that the portions of the file stored at those nodes
cannot be accessed".  This example quantifies that on a five-node ring:

* under the optimal *integral* placement, one specific failure is a total
  outage (0% of the file reachable);
* under the optimal *fragmented* allocation, every single failure leaves
  most of the file reachable;
* after a failure, the survivors re-run the algorithm on the degraded
  network and the storage layer migrates records accordingly.

Run:  python examples/failure_degradation.py
"""

import numpy as np

from repro.baselines import best_integral_allocation
from repro.core import DecentralizedAllocator, FileAllocationProblem, optimal_allocation
from repro.distributed import failure_impact
from repro.network.builders import ring_graph
from repro.storage import File, StorageCluster
from repro.utils.tables import format_table


def main() -> None:
    topo = ring_graph(5)
    rates = np.array([0.35, 0.15, 0.15, 0.15, 0.20])
    problem = FileAllocationProblem.from_topology(topo, rates, k=1.0, mu=1.5)

    fragmented = optimal_allocation(problem)
    integral, integral_cost = best_integral_allocation(problem)
    print(f"optimal fragmented allocation: {np.round(fragmented, 4)} "
          f"(cost {problem.cost(fragmented):.4f})")
    print(f"optimal integral placement:    {integral} (cost {integral_cost:.4f})")

    rows = []
    for failed in range(5):
        frag = failure_impact(problem, fragmented, failed)
        intg = failure_impact(problem, integral, failed, reoptimize=False)
        rows.append(
            [
                failed,
                f"{frag.surviving_fraction:.0%}",
                f"{intg.surviving_fraction:.0%}" + (" (OUTAGE)" if intg.total_outage else ""),
                f"{frag.reoptimized_cost:.4f}" if frag.reoptimized_cost else "-",
            ]
        )
    print()
    print(
        format_table(
            ["failed node", "fragmented survives", "integral survives",
             "re-optimized cost"],
            rows,
            title="File availability after a single node failure",
        )
    )

    # Worst case across failures: fragmentation's whole point.
    frag_worst = min(
        failure_impact(problem, fragmented, f).surviving_fraction for f in range(5)
    )
    intg_worst = min(
        failure_impact(problem, integral, f, reoptimize=False).surviving_fraction
        for f in range(5)
    )
    print(f"\nworst-case surviving fraction: fragmented {frag_worst:.0%} "
          f"vs integral {intg_worst:.0%}")

    # Recovery: survivors re-optimize and the storage layer migrates.
    failed = int(np.argmax(fragmented))
    print(f"\nsimulating failure of node {failed} (largest fragment holder)...")
    file = File(1000, name="ledger")
    cluster = StorageCluster.from_allocation(file, fragmented, 5)
    survivors = np.flatnonzero(np.arange(5) != failed)
    degraded_topo = topo.without_node(failed)
    from repro.network.shortest_paths import dijkstra

    sub_costs = np.zeros((4, 4))
    for a, u in enumerate(survivors):
        dist, _ = dijkstra(degraded_topo, int(u))
        sub_costs[a] = dist[survivors]
    sub_problem = FileAllocationProblem(
        sub_costs, rates[survivors], k=1.0, mu=1.5
    )
    recovery = DecentralizedAllocator(sub_problem, alpha=0.2, epsilon=1e-6).run()
    new_alloc = np.zeros(5)
    new_alloc[survivors] = recovery.allocation
    migrated = cluster.migrate(new_alloc)
    print(f"post-failure allocation: {np.round(new_alloc, 4)}")
    print(f"realized after migration: {np.round(migrated.realized_fractions(), 4)}")
    print(f"degraded-network cost: {recovery.cost:.4f}")


if __name__ == "__main__":
    main()
