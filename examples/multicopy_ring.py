"""Multiple copies on a virtual ring (§7).

Recreates the paper's §7 study end to end:

1. verifies the §7.2 worked example (communication cost 8.3 and arrival
   rate 2.7 at node 4 of the figure-7 ring);
2. runs the allocator on the two §7.3 four-node rings — link costs
   (4,1,1,1) where communication dominates and (1,1,1,1) where delay
   dominates — showing the oscillation difference of figure 8;
3. applies the §7.3 remedy (alpha decay + cost-delta stopping) and the
   §7.2 post-run cap at one whole copy per node.

Run:  python examples/multicopy_ring.py
"""

import numpy as np

from repro.analysis.oscillation import oscillation_metrics
from repro.experiments import ascii_plot
from repro.multicopy import (
    MultiCopyAllocator,
    cap_at_whole_copy,
    paper_figure8_rings,
    paper_worked_example,
)


def main() -> None:
    # -- 1. The worked example anchors the cost model -----------------------
    problem, x = paper_worked_example()
    node4 = 3  # the paper's node "4"
    comm = problem.communication_cost_per_node(x)[node4]
    arrival = problem.node_arrivals(x)[node4]
    print("§7.2 worked example (figure-7 ring):")
    print(f"  communication cost of node 4: {comm:.4g}   (paper: 8.3)")
    print(f"  access traffic at node 4:     {arrival:.4g}   (paper: 2.7)")

    # -- 2. Figure 8: who oscillates? ---------------------------------------
    comm_ring, delay_ring = paper_figure8_rings(mu=6.0)
    x0 = np.array([1.2, 0.3, 0.3, 0.2])  # two copies, skewed start
    profiles = {}
    for name, ring in (("comm-dominated", comm_ring), ("delay-dominated", delay_ring)):
        result = MultiCopyAllocator(
            ring, alpha=0.1,
            decay=0.999, patience=10_000,        # effectively fixed alpha:
            cost_tolerance=1e-12, stall_window=10_000,  # we *want* to see it
            max_iterations=120,
        ).run(x0)
        profiles[name] = result.cost_history
        metrics = oscillation_metrics(result.cost_history)
        print(f"\n{name} ring: best cost {result.cost:.4f}, "
              f"{metrics.increases} cost increases, "
              f"trailing amplitude {metrics.trailing_amplitude:.4f}")
    print()
    print(ascii_plot(profiles, title="figure 8: multi-copy convergence profiles"))

    # -- 3. The §7.3 remedy ---------------------------------------------------
    remedied = MultiCopyAllocator(
        comm_ring, alpha=0.1, decay=0.5, patience=5, max_iterations=400
    ).run(x0)
    print(f"\nwith alpha decay: best cost {remedied.cost:.4f} "
          f"after {remedied.iterations} iterations "
          f"(final alpha {min(remedied.alpha_history):.4g})")

    capped = cap_at_whole_copy(remedied.allocation)
    print(f"allocation:            {np.round(remedied.allocation, 3)}")
    print(f"capped at whole copy:  {np.round(capped, 3)} "
          f"(sum = {capped.sum():.3f} copies)")


if __name__ == "__main__":
    main()
