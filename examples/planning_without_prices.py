"""Planning without prices (§2): the two mechanism families, side by side.

The paper frames file allocation as an economy and chooses the
*resource-directed* family over the *price-directed* one.  This example
shows why, on economies where both apply, and then runs Heal's full
production-economy planner — the general model the FAP algorithm
specializes (§5.1).

1. An exchange economy of quadratic agents: both mechanisms find the same
   optimum, but only the resource-directed path is feasible and monotone
   along the way (the §2 drawbacks, printed as data).
2. A production economy (Cobb–Douglas sectors, weighted log welfare):
   Heal's planner allocates the input so the composite marginals agree —
   and the closed form confirms the split is proportional to the welfare
   weights.

Run:  python examples/planning_without_prices.py
"""

import numpy as np

from repro.economics import (
    CobbDouglasSector,
    PriceDirectedPlanner,
    ProductionPlanner,
    QuadraticAgent,
    ResourceDirectedPlanner,
    is_pareto_optimal,
)
from repro.utils.tables import format_table


def exchange_economy() -> None:
    agents = [
        QuadraticAgent(4.0, 2.0, name="archive"),
        QuadraticAgent(3.0, 1.0, name="analytics"),
        QuadraticAgent(5.0, 4.0, name="frontend"),
    ]

    rd = ResourceDirectedPlanner(agents, alpha=0.15, epsilon=1e-8)
    rd_result = rd.run([1.0, 0.0, 0.0])

    pd = PriceDirectedPlanner(agents, gamma=0.3, epsilon=1e-8)
    pd_result = pd.run(initial_price=0.0)

    print(
        format_table(
            ["mechanism", "iterations", "allocation", "pareto optimal"],
            [
                [
                    "resource-directed (Heal)",
                    rd_result.iterations,
                    np.array2string(rd_result.allocation, precision=4),
                    "yes" if is_pareto_optimal(agents, rd_result.allocation) else "no",
                ],
                [
                    "price-directed (tatonnement)",
                    pd_result.iterations,
                    np.array2string(pd_result.allocation, precision=4),
                    "yes" if is_pareto_optimal(agents, pd_result.allocation) else "no",
                ],
            ],
            title="Exchange economy: both mechanisms, same optimum",
        )
    )

    # The §2 drawbacks, measured.
    rd_feasible = all(
        abs(sum(x) - 1.0) < 1e-9 for x in [rd_result.allocation]
    )
    utilities = np.asarray(rd_result.utility_history)
    print(f"\nresource-directed: monotone social utility along the whole path: "
          f"{bool(np.all(np.diff(utilities) >= -1e-12))}")
    worst_excess = max(pd_result.excess_history)
    print(f"price-directed: worst demand-supply mismatch along the path: "
          f"{worst_excess:.3f} (feasible only at convergence)")
    print(f"clearing price: {pd_result.price:.4f} "
          f"(= the common marginal utility at the optimum)")


def production_economy() -> None:
    weights = np.array([1.0, 2.0, 3.0])
    sectors = [
        CobbDouglasSector(1.0, 0.5, name="storage"),
        CobbDouglasSector(1.5, 0.5, name="compute"),
        CobbDouglasSector(0.7, 0.5, name="network"),
    ]
    planner = ProductionPlanner(
        sectors,
        lambda y: float(np.sum(weights * np.log(np.maximum(y, 1e-12)))),
        lambda y: weights / np.maximum(y, 1e-12),
        alpha=0.03,
        epsilon=1e-8,
    )
    result = planner.run(max_iterations=300_000)
    expected = weights / weights.sum()
    rows = [
        [s.name, f"{r:.4f}", f"{e:.4f}"]
        for s, r, e in zip(sectors, result.inputs, expected)
    ]
    print()
    print(
        format_table(
            ["sector", "planned input", "closed form (w_j / sum w)"],
            rows,
            title="Production economy: Heal's planner vs the closed form",
        )
    )
    print(f"\nconverged in {result.iterations} iterations; "
          f"welfare {result.welfare:.5f}; welfare path monotone: "
          f"{bool(np.all(np.diff(result.welfare_history) >= -1e-12))}")


if __name__ == "__main__":
    exchange_economy()
    production_economy()
