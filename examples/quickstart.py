"""Quickstart: solve the paper's own example network.

Reproduces the §6 setting — a four-node ring with unit link costs,
mu = 1.5, k = 1, lambda = 1 — starting from the skewed allocation
(0.8, 0.1, 0.1, 0.0), and shows the three headline properties:
feasibility at every iterate, monotonically decreasing cost, and
convergence to the (here: uniform) optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.experiments import ascii_plot


def main() -> None:
    # 1. Build the §6 problem instance.
    problem = repro.FileAllocationProblem.paper_network()
    print(f"problem: {problem}")
    print(f"weighted access costs C_i = {problem.access_cost}")

    # 2. Run the decentralized algorithm from the paper's skewed start.
    allocator = repro.DecentralizedAllocator(problem, alpha=0.3, epsilon=1e-3)
    result = allocator.run([0.8, 0.1, 0.1, 0.0])

    print(f"\nconverged: {result.converged} after {result.iterations} iterations")
    print(f"final allocation: {np.round(result.allocation, 4)}")
    print(f"final cost:       {result.cost:.6f}")

    # 3. The paper's invariants, checked on the actual trace.
    sums = result.trace.allocations().sum(axis=1)
    print(f"\nfeasibility: every iterate sums to 1  -> {np.allclose(sums, 1.0)}")
    print(f"monotonicity: cost never increases     -> {result.trace.is_monotone()}")

    # 4. Compare with the exact closed-form optimum (bisection on the
    #    KKT multiplier).
    x_star = repro.optimal_allocation(problem)
    print(f"closed-form optimum: {np.round(x_star, 4)} "
          f"(cost {problem.cost(x_star):.6f})")

    # 5. The figure-3 convergence profile, in your terminal.
    print()
    print(ascii_plot({"cost": result.trace.costs()},
                     title="cost vs iteration (figure-3 style)"))


if __name__ == "__main__":
    main()
