"""Replication end to end: optimize copies, place replicas, pay for writes.

Combines the §7 multi-copy machinery with the §8.1/§8.2 storage concerns:

1. choose the number of copies for the workload's write fraction (§8.2's
   open question, answered by sweeping m under write-all consistency);
2. optimize the fragment allocation for the winning m;
3. realize it as actual replicated records on the ring;
4. serve reads (first replica clockwise) and writes (all replicas,
   version lockstep), measuring what each costs;
5. corrupt a replica, detect the divergence, repair by anti-entropy.

Run:  python examples/replicated_storage.py
"""

import numpy as np

from repro.multicopy import (
    MultiCopyAllocator,
    ReadWriteRingProblem,
    optimal_copy_count_with_writes,
)
from repro.network.virtual_ring import VirtualRing
from repro.storage import File, ReplicatedCluster
from repro.utils.tables import format_table

RING_COSTS = (2.0, 1.0, 3.0, 1.0, 2.0, 1.0)
WRITE_FRACTION = 0.15


def main() -> None:
    ring = VirtualRing(RING_COSTS)
    rates = np.ones(6)

    # 1. How many copies should this workload keep?
    sweep = optimal_copy_count_with_writes(
        ring, rates, mu=10.0, write_fraction=WRITE_FRACTION,
        storage_cost_per_copy=0.3, iterations=250,
    )
    print(format_table(
        sweep.HEADERS, sweep.rows(),
        title=f"Copy-count sweep at {WRITE_FRACTION:.0%} writes",
    ))
    m = sweep.best.copies
    print(f"\nchosen: m = {m} copies")

    # 2. Optimize the allocation for that m.
    problem = ReadWriteRingProblem(
        ring, rates, copies=m, mu=10.0, write_fraction=WRITE_FRACTION
    )
    result = MultiCopyAllocator(problem, alpha=0.05, max_iterations=400).run(
        np.full(6, m / 6)
    )
    print(f"optimized allocation: {np.round(result.allocation, 3)} "
          f"(cost {result.cost:.3f})")

    # 3. Place actual records.
    cluster = ReplicatedCluster(File(600, initial_value=0), ring, result.allocation)
    print(f"realized measure per node: {np.round(cluster.stored_fractions(), 3)}")

    # 4. Serve traffic and account the §8.2 consistency cost.
    rng = np.random.default_rng(5)
    read_cost = write_cost = 0.0
    reads = writes = 0
    for _ in range(3000):
        reader = int(rng.integers(6))
        key = int(rng.integers(600))
        if rng.random() < WRITE_FRACTION:
            _, cost = cluster.write(key, "payload", from_node=reader)
            write_cost += cost
            writes += 1
        else:
            _, _, cost = cluster.read(key, from_node=reader)
            read_cost += cost
            reads += 1
    print(f"\nserved {reads} reads (mean shipping {read_cost / reads:.2f}) and "
          f"{writes} writes (mean shipping {write_cost / writes:.2f})")
    print(f"write-all consistency held: {cluster.is_consistent()}")

    # 5. Failure injection and repair.
    victim_key = 42
    holder = cluster.holders(victim_key)[-1]
    cluster.corrupt_replica(victim_key, holder, "garbage")
    print(f"\ncorrupted record {victim_key} at node {holder}; "
          f"divergent records detected: {cluster.inconsistent_records()}")
    cluster.repair(victim_key)
    print(f"after anti-entropy repair: consistent = {cluster.is_consistent()}")


if __name__ == "__main__":
    main()
