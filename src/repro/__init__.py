"""repro — a full reproduction of Kurose & Simha's *A Microeconomic
Approach to Optimal File Allocation* (ICDCS 1986).

The library implements the paper's decentralized, resource-directed file
allocation algorithm together with every substrate it stands on: network
topologies and routing, queueing delay models, the generic microeconomic
planners, a discrete-event message-passing runtime, a record-store layer,
centralized baselines, and the complete experiment harness reproducing the
paper's figures.

Quick start::

    import repro

    problem = repro.FileAllocationProblem.paper_network()
    result = repro.DecentralizedAllocator(problem, alpha=0.3).run(
        [0.8, 0.1, 0.1, 0.0]
    )
    print(result.allocation)          # ~ [0.25, 0.25, 0.25, 0.25]
    print(result.trace.costs())       # the figure-3 convergence profile

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    AllocationResult,
    DecentralizedAllocator,
    FileAllocationProblem,
    MultiFileAllocator,
    MultiFileProblem,
    SecondOrderAllocator,
    check_kkt,
    optimal_allocation,
    optimal_cost,
    solve,
    solve_fast,
    theorem2_alpha_bound,
)
from repro.net import NetClient, NetServer
from repro.network import Topology, VirtualRing, complete_graph, ring_graph
from repro.obs import JsonLinesSink, MemorySink, MetricsRegistry, RunReport
from repro.parallel import (
    BatchedAllocator,
    BatchedProblem,
    ContinuousBatcher,
    sweep_parallel,
)
from repro.service import AllocationService, ServiceClient, SolveRequest, SolveResponse

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "AllocationService",
    "BatchedAllocator",
    "BatchedProblem",
    "ContinuousBatcher",
    "DecentralizedAllocator",
    "FileAllocationProblem",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "MultiFileAllocator",
    "MultiFileProblem",
    "NetClient",
    "NetServer",
    "RunReport",
    "SecondOrderAllocator",
    "ServiceClient",
    "SolveRequest",
    "SolveResponse",
    "Topology",
    "VirtualRing",
    "__version__",
    "check_kkt",
    "complete_graph",
    "optimal_allocation",
    "optimal_cost",
    "ring_graph",
    "solve",
    "solve_fast",
    "sweep_parallel",
    "theorem2_alpha_bound",
]
