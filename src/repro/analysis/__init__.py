"""Theory-verification and convergence-diagnostics toolkit.

Makes the appendix executable: the (a)-(d) derivative bounds behind
Theorem 2, convexity verification, convergence-rate estimation, rapid-phase
measurement (§6), and oscillation metrics (§7.3).
"""

from repro.analysis.bounds import DerivativeBounds, derivative_bounds
from repro.analysis.convergence import (
    estimate_linear_rate,
    iterations_to_tolerance,
    sweep_alpha_iterations,
)
from repro.analysis.convexity import verify_convexity_on_grid
from repro.analysis.optimality import optimality_gap
from repro.analysis.oscillation import detect_oscillation, oscillation_metrics
from repro.analysis.sensitivity import (
    KOperatingPoint,
    choose_k_for_delay_budget,
    evaluate_k,
    sweep_k,
)

__all__ = [
    "DerivativeBounds",
    "KOperatingPoint",
    "choose_k_for_delay_budget",
    "derivative_bounds",
    "detect_oscillation",
    "estimate_linear_rate",
    "evaluate_k",
    "iterations_to_tolerance",
    "optimality_gap",
    "oscillation_metrics",
    "sweep_alpha_iterations",
    "sweep_k",
    "verify_convexity_on_grid",
]
