"""The appendix's derivative bounds, as executable facts.

Theorem 2's denominator bound rests on four "easily derivable facts" for
the M/M/1 cost with ``mu > lambda`` and ``0 <= x_i <= 1``:

    (a)  dU/dx_i = -dC/dx_i
    (b)  dC/dx_i <= max(C_i) + mu k / (mu - lambda)^2      (at x_i = 1)
    (c)  dC/dx_i >= min(C_i) + k / mu                      (at x_i = 0)
    (d)  d2C/dx_i^2 <= 2 mu k lambda / (mu - lambda)^3     (at x_i = 1)

:func:`derivative_bounds` evaluates them for a problem instance, and the
property-based tests check that sampled allocations never escape them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DerivativeBounds:
    """The (b)-(d) bounds for one problem instance."""

    gradient_upper: float
    gradient_lower: float
    hessian_upper: float
    c_max: float
    c_min: float

    def contains_gradient(self, values, *, atol: float = 1e-9) -> bool:
        """True when every marginal cost lies inside [lower, upper]."""
        arr = np.asarray(values, dtype=float)
        return bool(
            np.all(arr <= self.gradient_upper + atol)
            and np.all(arr >= self.gradient_lower - atol)
        )

    def contains_hessian(self, values, *, atol: float = 1e-9) -> bool:
        """True when every curvature lies in [0, upper]."""
        arr = np.asarray(values, dtype=float)
        return bool(np.all(arr <= self.hessian_upper + atol) and np.all(arr >= -atol))


def derivative_bounds(problem: FileAllocationProblem) -> DerivativeBounds:
    """Evaluate the appendix's (b)-(d) bounds for an M/M/1 instance.

    Heterogeneous service rates use the smallest ``mu`` (conservative, as
    in :func:`~repro.core.stepsize.theorem2_alpha_bound`).
    """
    mus = [getattr(m, "mu", None) for m in problem.delay_models]
    if any(m is None for m in mus):
        raise ConfigurationError("bounds need delay models exposing mu")
    # mu/(mu-lam)^2 and mu/(mu-lam)^3 are decreasing in mu for mu > lam, so
    # the *smallest* service rate gives the conservative upper bounds, while
    # the lower bound k/mu needs the *largest* rate.  (The paper's
    # homogeneous-mu case makes the two coincide.)
    mu_lo = float(min(mus))
    mu_hi = float(max(mus))
    lam = problem.total_rate
    if mu_lo <= lam:
        raise ConfigurationError(
            f"the appendix bounds assume mu > lambda (mu={mu_lo:g}, lambda={lam:g})"
        )
    k = problem.k
    c_max = float(np.max(problem.access_cost))
    c_min = float(np.min(problem.access_cost))
    return DerivativeBounds(
        gradient_upper=c_max + mu_lo * k / (mu_lo - lam) ** 2,
        gradient_lower=c_min + k / mu_hi,
        hessian_upper=2.0 * mu_lo * k * lam / (mu_lo - lam) ** 3,
        c_max=c_max,
        c_min=c_min,
    )
