"""Convergence diagnostics: the measurements behind figures 3, 5 and 6.

* :func:`iterations_to_tolerance` — iteration count until the cost is
  within a tolerance of its final value (how the figure-3 counts read off
  a profile);
* :func:`estimate_linear_rate` — the asymptotic geometric contraction
  factor of the cost error (quantifies the "gradual phase");
* :func:`sweep_alpha_iterations` — the figure-5 sweep: iterations to
  convergence across a stepsize grid, plus the best alpha (reused by the
  figure-6 scaling run, which uses "the best possible alpha" per network
  size).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.core.trace import Trace


def iterations_to_tolerance(trace: Trace, *, tolerance: float = 1e-6) -> int:
    """First iteration whose cost is within ``tolerance`` of the trace's
    final (best) cost; the length of the whole run if never reached."""
    costs = trace.costs()
    target = costs[-1] + tolerance
    hits = np.flatnonzero(costs <= target)
    return int(hits[0]) if hits.size else len(costs) - 1


def estimate_linear_rate(trace: Trace, *, tail: int = 10) -> Optional[float]:
    """Geometric contraction factor of the cost error over the last
    ``tail`` iterations (``None`` when the error underflows too fast to
    measure).  A rate of r means err_{t+1} ~ r * err_t.

    Estimated from ratios of successive cost *drops*
    ``(c_t - c_{t+1}) / (c_{t-1} - c_t)``, which equal r exactly for
    geometric decay toward any (unknown) limit — no limit estimate needed.
    """
    costs = trace.costs()[-(tail + 2):]
    drops = -np.diff(costs)
    valid = drops > 1e-14
    if valid.sum() < 2:
        return None
    ratios = drops[1:] / drops[:-1]
    ratios = ratios[valid[1:] & valid[:-1]]
    ratios = ratios[(ratios > 0) & np.isfinite(ratios)]
    if ratios.size == 0:
        return None
    return float(np.exp(np.mean(np.log(ratios))))


def sweep_alpha_iterations(
    problem: FileAllocationProblem,
    initial_allocation: Sequence[float],
    alphas: Sequence[float],
    *,
    epsilon: float = 1e-3,
    max_iterations: int = 5_000,
    engine: str = "serial",
) -> Tuple[Dict[float, int], float]:
    """Run the allocator for every alpha; return ``(counts, best_alpha)``.

    ``counts[alpha]`` is iterations to convergence (``max_iterations`` when
    a run did not converge — figure 5 plots those as the blow-up branch).
    ``best_alpha`` minimizes the count, ties toward the smaller alpha (the
    more conservative choice).

    ``engine="batched"`` solves the whole grid in one lockstep
    :class:`~repro.parallel.BatchedAllocator` run (one row per alpha) —
    bit-for-bit the same counts, one vectorized pass instead of
    ``len(alphas)`` serial runs.  Requires plain M/M/1 delay at every node.
    """
    alphas = [float(a) for a in alphas]
    counts: Dict[float, int] = {}
    if engine == "batched":
        from repro.parallel import BatchedAllocator, BatchedProblem

        batch = BatchedProblem.replicate(problem, len(alphas))
        allocator = BatchedAllocator(
            batch, alpha=alphas, epsilon=epsilon, max_iterations=max_iterations
        )
        x0 = np.tile(np.asarray(initial_allocation, dtype=float), (len(alphas), 1))
        result = allocator.run(x0)
        for row, alpha in enumerate(alphas):
            counts[alpha] = (
                int(result.iterations[row]) if result.converged[row] else max_iterations
            )
    elif engine == "serial":
        for alpha in alphas:
            allocator = DecentralizedAllocator(
                problem, alpha=alpha, epsilon=epsilon, max_iterations=max_iterations
            )
            result = allocator.run(initial_allocation)
            counts[alpha] = result.iterations if result.converged else max_iterations
    else:
        raise ValueError(f"unknown engine {engine!r} (expected 'serial' or 'batched')")
    best_alpha = min(sorted(counts), key=lambda a: (counts[a], a))
    return counts, best_alpha
