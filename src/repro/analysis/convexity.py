"""Convexity verification.

§5.3 argues the utility of equation 2 is concave (cost convex) so the
equal-marginals condition picks the global optimum.  For M/M/1 the diagonal
Hessian ``2 k lambda mu / (mu - lambda x)^3 > 0`` proves it analytically;
this module verifies it *numerically* on sampled segments, which also
covers delay models without hand-derived Hessians.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import StabilityError
from repro.utils.seeding import SeedLike, rng_from_seed


def verify_convexity_on_grid(
    problem: FileAllocationProblem,
    *,
    samples: int = 200,
    seed: SeedLike = 0,
    tol: float = 1e-9,
) -> bool:
    """Midpoint-convexity check on random feasible segments.

    Draws pairs of feasible allocations ``(x, y)`` and verifies
    ``C((x+y)/2) <= (C(x) + C(y))/2 + tol``.  Returns False on the first
    violation.  Pairs whose endpoints are queue-unstable are resampled.
    """
    rng = rng_from_seed(seed)
    n = problem.n
    checked = 0
    attempts = 0
    while checked < samples and attempts < 50 * samples:
        attempts += 1
        x = rng.dirichlet(np.ones(n))
        y = rng.dirichlet(np.ones(n))
        try:
            cx, cy = problem.cost(x), problem.cost(y)
            cm = problem.cost(0.5 * (x + y))
        except StabilityError:
            continue
        if cm > 0.5 * (cx + cy) + tol:
            return False
        checked += 1
    return checked == samples
