"""Optimality-gap measurement against the closed-form optimum."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem


@dataclass(frozen=True)
class OptimalityGap:
    """How far an allocation is from the exact optimum."""

    #: (C(x) - C*) / C* — relative excess cost.
    relative_cost_gap: float
    #: Absolute excess cost C(x) - C*.
    absolute_cost_gap: float
    #: L-infinity distance between the allocations.
    allocation_distance: float
    optimal_cost: float


def optimality_gap(problem: FileAllocationProblem, allocation) -> OptimalityGap:
    """Measure ``allocation`` against the bisection ground truth.

    Note the allocation distance can be large while the cost gap is tiny
    when the optimum is nearly flat — the cost gap is the meaningful
    number for the algorithm comparisons.
    """
    x = problem.check_feasible(allocation)
    x_star = optimal_allocation(problem)
    c = problem.cost(x)
    c_star = problem.cost(x_star)
    return OptimalityGap(
        relative_cost_gap=(c - c_star) / c_star if c_star else 0.0,
        absolute_cost_gap=c - c_star,
        allocation_distance=float(np.max(np.abs(x - x_star))),
        optimal_cost=c_star,
    )
