"""Oscillation detection and measurement (§7.3).

The multi-copy ring cost is discontinuous (link costs appear and disappear
as the allocation shifts), so a fixed-stepsize gradient scheme oscillates
around the optimum instead of converging.  The §7.3 remedy decays alpha
when oscillation is observed; these helpers supply the "observed" part and
the summary metrics the figure-8/9 benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class OscillationMetrics:
    """Summary of the oscillatory behaviour of a cost sequence."""

    #: Number of cost increases (a perfectly monotone run has 0).
    increases: int
    #: Number of sign changes of the cost difference — direction reversals.
    reversals: int
    #: Max - min cost over the trailing window.
    trailing_amplitude: float
    #: Mean |cost delta| over the trailing window.
    trailing_mean_step: float


def detect_oscillation(
    costs: Sequence[float], *, window: int = 8, min_reversals: int = 3
) -> bool:
    """True when the trailing ``window`` cost deltas change sign at least
    ``min_reversals`` times — the §7.3 trigger for decaying alpha."""
    c = np.asarray(costs, dtype=float)
    if c.size < 3:
        return False
    deltas = np.diff(c[-(window + 1):])
    signs = np.sign(deltas)
    signs = signs[signs != 0]
    if signs.size < 2:
        return False
    return int(np.sum(signs[1:] != signs[:-1])) >= min_reversals


def oscillation_metrics(costs: Sequence[float], *, window: int = 20) -> OscillationMetrics:
    """Compute the oscillation summary for a full cost history."""
    c = np.asarray(costs, dtype=float)
    deltas = np.diff(c) if c.size > 1 else np.array([])
    signs = np.sign(deltas)
    nonzero = signs[signs != 0]
    reversals = int(np.sum(nonzero[1:] != nonzero[:-1])) if nonzero.size > 1 else 0
    tail = c[-max(1, window):]
    tail_deltas = np.abs(np.diff(tail)) if tail.size > 1 else np.array([0.0])
    return OscillationMetrics(
        increases=int(np.sum(deltas > 1e-12)),
        reversals=reversals,
        trailing_amplitude=float(tail.max() - tail.min()),
        trailing_mean_step=float(tail_deltas.mean()),
    )
