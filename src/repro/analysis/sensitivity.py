"""Choosing the delay weight ``k`` (§8 future work).

"The value of the parameter k decides the relative importance of each term
in the cost function.  For a practical application ... it is important to
have a rationale for choosing the value of k.  Certainly, system designers
require a suitable framework in which to choose values for the various
parameters such as k."

This module supplies that framework in its most useful operational form:
pick ``k`` so the *optimal* allocation meets a delay budget.  The mean
access delay of the optimum,

    D(k) = sum_i T_i(lambda x*_i(k)) x*_i(k),

is monotone non-increasing in ``k`` (heavier delay weighting spreads the
file further), so the smallest ``k`` meeting a budget is found by
bisection.  A sweep helper exposes the whole communication/delay frontier
for designers who prefer to look before choosing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.utils.validation import check_positive

#: Builds the problem instance for a given k (everything else fixed).
ProblemFactory = Callable[[float], FileAllocationProblem]


@dataclass(frozen=True)
class KOperatingPoint:
    """The optimum's behaviour at one value of k."""

    k: float
    mean_delay: float
    mean_communication_cost: float
    allocation: np.ndarray
    #: Effective number of nodes holding mass (participation ratio).
    spread_nodes: float


def evaluate_k(factory: ProblemFactory, k: float) -> KOperatingPoint:
    """Solve the instance at ``k`` and report its delay/comm trade point."""
    problem = factory(k)
    x = optimal_allocation(problem)
    delays = problem.delays(x)
    mean_delay = float(np.sum(delays * x))
    mean_comm = float(np.sum(problem.access_cost * x))
    positive = x[x > 1e-12]
    participation = 1.0 / float(np.sum((positive / positive.sum()) ** 2))
    return KOperatingPoint(
        k=k,
        mean_delay=mean_delay,
        mean_communication_cost=mean_comm,
        allocation=x,
        spread_nodes=participation,
    )


def sweep_k(factory: ProblemFactory, ks: Sequence[float]) -> List[KOperatingPoint]:
    """The delay/communication frontier over a grid of k values."""
    return [evaluate_k(factory, float(k)) for k in ks]


def choose_k_for_delay_budget(
    factory: ProblemFactory,
    target_delay: float,
    *,
    k_low: float = 1e-4,
    k_high: float = 1e4,
    tolerance: float = 1e-4,
    max_bisections: int = 100,
) -> KOperatingPoint:
    """Smallest ``k`` whose optimal allocation meets ``target_delay``.

    Smallest because ``k`` also taxes communication: any larger ``k``
    over-fragments relative to what the delay budget requires.

    Raises :class:`~repro.exceptions.ConvergenceError` when even
    ``k_high`` cannot meet the budget (the budget is below the best delay
    the network can offer) and :class:`~repro.exceptions.ConfigurationError`
    for a budget already met at ``k_low`` (any k works; no trade-off).
    """
    target_delay = check_positive(target_delay, "target_delay")
    lo = check_positive(k_low, "k_low")
    hi = check_positive(k_high, "k_high")
    if lo >= hi:
        raise ConfigurationError(f"need k_low < k_high, got {lo} >= {hi}")

    at_hi = evaluate_k(factory, hi)
    if at_hi.mean_delay > target_delay * (1 + 1e-9):
        raise ConvergenceError(
            f"even k = {hi:g} only reaches mean delay {at_hi.mean_delay:g} "
            f"> target {target_delay:g}; the budget is infeasible for this network"
        )
    at_lo = evaluate_k(factory, lo)
    if at_lo.mean_delay <= target_delay:
        return at_lo  # budget is slack: the cheapest k already meets it

    for _ in range(max_bisections):
        mid = float(np.sqrt(lo * hi))  # geometric bisection: k spans decades
        point = evaluate_k(factory, mid)
        if point.mean_delay <= target_delay:
            hi = mid
        else:
            lo = mid
        if hi / lo < 1 + tolerance:
            break
    return evaluate_k(factory, hi)
