"""Centralized and naive baselines.

The paper motivates the decentralized algorithm against (a) integral
(whole-file) allocation — §6's figure 4 — and (b) centralized optimization
generally (§3).  This package provides:

* :func:`~repro.baselines.integral.best_integral_allocation` — the optimal
  single-node placement (the N-choice Chu-style integer program for one
  file and one copy);
* :func:`~repro.baselines.integral.greedy_integral_multifile` — a greedy
  heuristic for placing several whole files;
* :class:`~repro.baselines.centralized.ProjectedGradientSolver` — a
  centralized projected-gradient reference;
* :func:`~repro.baselines.centralized.scipy_reference_optimum` — an SLSQP
  reference when scipy is available;
* :func:`~repro.baselines.exhaustive.exhaustive_grid_optimum` — brute-force
  grid search for tiny instances (test oracle).
"""

from repro.baselines.centralized import (
    ProjectedGradientSolver,
    scipy_reference_optimum,
)
from repro.baselines.exhaustive import exhaustive_grid_optimum
from repro.baselines.local_search import local_search_integral_multifile
from repro.baselines.integral import (
    best_integral_allocation,
    greedy_integral_multifile,
    integral_costs,
)

__all__ = [
    "ProjectedGradientSolver",
    "best_integral_allocation",
    "exhaustive_grid_optimum",
    "greedy_integral_multifile",
    "integral_costs",
    "local_search_integral_multifile",
    "scipy_reference_optimum",
]
