"""Centralized convex reference optimizers.

These play the role of the "centralized system management function" the
paper's §3 contrasts against: they see the whole problem at once and solve
it with textbook machinery.  They exist to (a) validate the decentralized
algorithm's optima and (b) let the benchmark suite quantify what
decentralization costs (nothing, in final quality — that is the point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConvergenceError
from repro.utils.numeric import project_to_simplex
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CentralizedResult:
    """Outcome of a centralized solve."""

    allocation: np.ndarray
    cost: float
    iterations: int
    converged: bool


class ProjectedGradientSolver:
    """Projected gradient descent on the simplex.

    ``x <- Proj_simplex(x - eta * dC/dx)`` with backtracking on ``eta``.
    Dependency-free (the scipy reference is optional) and convergent for
    the convex single-copy cost.
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        eta: float = 0.1,
        tolerance: float = 1e-10,
        max_iterations: int = 50_000,
    ):
        self.problem = problem
        self.eta = check_positive(eta, "eta")
        self.tolerance = check_positive(tolerance, "tolerance")
        self.max_iterations = int(max_iterations)

    def run(self, initial_allocation: Optional[Sequence[float]] = None) -> CentralizedResult:
        """Descend from ``initial_allocation`` (default uniform) until the
        cost improvement per iteration falls below tolerance."""
        n = self.problem.n
        if initial_allocation is None:
            x = np.full(n, 1.0 / n)
        else:
            x = self.problem.check_feasible(initial_allocation).copy()
        cost = self.problem.cost(x)
        eta = self.eta
        for iteration in range(1, self.max_iterations + 1):
            grad = self.problem.cost_gradient(x)
            # Backtracking: shrink eta until the projected step improves.
            improved = False
            for _ in range(60):
                candidate = project_to_simplex(x - eta * grad)
                try:
                    c_new = self.problem.cost(candidate)
                except Exception:
                    eta *= 0.5
                    continue
                if c_new < cost:
                    improved = True
                    break
                eta *= 0.5
            if not improved:
                return CentralizedResult(x, cost, iteration, True)
            if cost - c_new < self.tolerance:
                return CentralizedResult(candidate, c_new, iteration, True)
            x, cost = candidate, c_new
            eta *= 1.5  # re-grow after successful steps
        return CentralizedResult(x, cost, self.max_iterations, False)


def scipy_reference_optimum(
    problem: FileAllocationProblem,
    *,
    initial_allocation: Optional[Sequence[float]] = None,
) -> CentralizedResult:
    """SLSQP reference via scipy (raises ImportError when unavailable).

    Constrains ``sum x == 1`` and ``0 <= x_i < mu_i / lambda`` (keeping
    every queue stable along the search path).
    """
    from scipy.optimize import minimize  # deferred: scipy is optional

    n = problem.n
    lam = problem.total_rate
    x0 = (
        np.full(n, 1.0 / n)
        if initial_allocation is None
        else problem.check_feasible(initial_allocation)
    )
    caps = []
    for model in problem.delay_models:
        cap = getattr(model, "max_stable_arrival", np.inf) / lam
        caps.append(min(1.0, cap * (1.0 - 1e-9)) if np.isfinite(cap) else 1.0)

    result = minimize(
        lambda x: problem.cost(x),
        x0,
        jac=lambda x: problem.cost_gradient(x),
        method="SLSQP",
        bounds=[(0.0, c) for c in caps],
        constraints=[{"type": "eq", "fun": lambda x: x.sum() - 1.0}],
        options={"maxiter": 1000, "ftol": 1e-14},
    )
    if not result.success:  # pragma: no cover - SLSQP is reliable here
        raise ConvergenceError(f"SLSQP failed: {result.message}")
    x = np.maximum(result.x, 0.0)
    x /= x.sum()
    return CentralizedResult(x, float(problem.cost(x)), int(result.nit), True)
