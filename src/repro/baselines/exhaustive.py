"""Brute-force grid search — a slow but assumption-free test oracle.

Enumerates all compositions of ``resolution`` units over ``n`` nodes
(``x_i = k_i / resolution``) and returns the cheapest.  Exponential in
``n``; intended for n <= 4 sanity checks of the analytic optimum.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError, StabilityError


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail


def exhaustive_grid_optimum(
    problem: FileAllocationProblem, *, resolution: int = 20
) -> Tuple[np.ndarray, float]:
    """``(best_allocation, best_cost)`` over the simplex grid.

    The grid optimum is within O(1/resolution) of the true optimum for the
    smooth convex cost; tests use it to bound the analytic solution.
    """
    if problem.n > 6:
        raise ConfigurationError(
            f"exhaustive search over n={problem.n} nodes is intractable; use n <= 6"
        )
    if resolution < 1:
        raise ConfigurationError("resolution must be >= 1")
    best_x: np.ndarray | None = None
    best_cost = np.inf
    for combo in _compositions(resolution, problem.n):
        x = np.asarray(combo, dtype=float) / resolution
        try:
            c = problem.cost(x)
        except StabilityError:
            continue
        if c < best_cost:
            best_cost = c
            best_x = x
    if best_x is None:
        raise StabilityError("no stable allocation exists on the grid")
    return best_x, float(best_cost)
