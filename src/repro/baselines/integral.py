"""Integral (non-fragmented) file allocation baselines.

The classical FAP literature (Chu [8], Casey [4]) requires a file to live
wholly at one node.  For a single copy of a single file that integer
program reduces to evaluating the cost of each of the ``N`` placements —
exactly the baseline the paper's figure 4 starts from ("the initial
allocation places the entire file at one node in an optimal manner given
the integer allocation constraint").

For several whole files the joint placement couples through queueing
contention; :func:`greedy_integral_multifile` gives the standard greedy
heuristic (place files in decreasing traffic order, each at its currently
cheapest node), standing in for the heuristic search techniques of [27]
and [5].
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.initials import single_node_allocation
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileProblem
from repro.exceptions import StabilityError


def integral_costs(problem: FileAllocationProblem) -> np.ndarray:
    """Cost of placing the whole file at each node (``inf`` if unstable)."""
    out = np.empty(problem.n)
    for node in range(problem.n):
        try:
            out[node] = problem.cost(single_node_allocation(problem.n, node))
        except StabilityError:
            out[node] = np.inf
    return out


def best_integral_allocation(problem: FileAllocationProblem) -> Tuple[np.ndarray, float]:
    """The optimal whole-file placement: ``(allocation, cost)``.

    Raises :class:`~repro.exceptions.StabilityError` when no single node
    can absorb the full access rate (``mu <= lambda`` everywhere) — the
    regime where fragmentation is not merely cheaper but *necessary*.
    """
    costs = integral_costs(problem)
    best = int(np.argmin(costs))
    if not np.isfinite(costs[best]):
        raise StabilityError(
            "no single node can stably hold the whole file; fragmentation required"
        )
    return single_node_allocation(problem.n, best), float(costs[best])


def greedy_integral_multifile(problem: MultiFileProblem) -> Tuple[np.ndarray, float]:
    """Greedy whole-file placement for several files: ``(allocation, cost)``.

    Files are placed in decreasing total-access-rate order; each file goes
    to the node minimizing the joint cost given earlier placements.
    Placements that would destabilize a node's queue are skipped; if no
    node can host a file the greedy fails with
    :class:`~repro.exceptions.StabilityError`.
    """
    m, n = problem.m, problem.n
    x = np.zeros((m, n))
    order: List[int] = list(np.argsort(-problem.file_rates))
    for f in order:
        best_node, best_cost = -1, np.inf
        for node in range(n):
            x[f, :] = 0.0
            x[f, node] = 1.0
            try:
                c = problem.cost(x)
            except StabilityError:
                continue
            if c < best_cost:
                best_node, best_cost = node, c
        if best_node < 0:
            raise StabilityError(
                f"file {f}: no node can stably host it given earlier placements"
            )
        x[f, :] = 0.0
        x[f, best_node] = 1.0
    return x, float(problem.cost(x))
