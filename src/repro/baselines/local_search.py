"""Local-search heuristics for integral multi-file placement.

The classical FAP literature the paper surveys leans on heuristic search
for the integer placement problem — Mahmoud & Riordan [27], Ceri et al.'s
knapsack formulation [5].  This module provides the standard move-based
local search over whole-file placements: start from the greedy solution,
then repeatedly apply the best improving *move* (relocate one file to
another node) or *swap* (exchange two files' nodes) until a local optimum.

It upper-bounds how well the integral school can do on a given instance,
which sharpens the fragmentation comparison: the fractional optimum beats
not just greedy placement but the polished local optimum too.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.integral import greedy_integral_multifile
from repro.core.multifile import MultiFileProblem
from repro.exceptions import StabilityError


def _placement_cost(problem: MultiFileProblem, nodes: np.ndarray) -> float:
    """Cost of whole-file placement ``nodes[f] = node holding file f``."""
    x = np.zeros((problem.m, problem.n))
    x[np.arange(problem.m), nodes] = 1.0
    return problem.cost(x)


def local_search_integral_multifile(
    problem: MultiFileProblem,
    *,
    initial_nodes: Optional[np.ndarray] = None,
    max_rounds: int = 100,
) -> Tuple[np.ndarray, float]:
    """Best-improvement local search over whole-file placements.

    Returns ``(allocation_matrix, cost)`` like the greedy baseline.
    Starts from the greedy placement unless ``initial_nodes`` (one node id
    per file) is given.  Each round evaluates every relocate and every
    pairwise swap and applies the single best improvement; stops at a
    local optimum or after ``max_rounds``.
    """
    m, n = problem.m, problem.n
    if initial_nodes is None:
        greedy_x, _ = greedy_integral_multifile(problem)
        nodes = np.argmax(greedy_x, axis=1)
    else:
        nodes = np.asarray(initial_nodes, dtype=int).copy()
        if nodes.shape != (m,) or nodes.min() < 0 or nodes.max() >= n:
            raise ValueError(f"initial_nodes must be {m} node ids in [0, {n})")

    def safe_cost(candidate: np.ndarray) -> float:
        try:
            return _placement_cost(problem, candidate)
        except StabilityError:
            return np.inf

    current_cost = safe_cost(nodes)
    for _ in range(max_rounds):
        best_delta = -1e-12
        best_nodes: Optional[np.ndarray] = None
        # Relocations: move one file to another node.
        for f in range(m):
            for node in range(n):
                if node == nodes[f]:
                    continue
                trial = nodes.copy()
                trial[f] = node
                delta = safe_cost(trial) - current_cost
                if delta < best_delta:
                    best_delta = delta
                    best_nodes = trial
        # Swaps: exchange two files' homes.
        for f in range(m):
            for g in range(f + 1, m):
                if nodes[f] == nodes[g]:
                    continue
                trial = nodes.copy()
                trial[f], trial[g] = trial[g], trial[f]
                delta = safe_cost(trial) - current_cost
                if delta < best_delta:
                    best_delta = delta
                    best_nodes = trial
        if best_nodes is None:
            break  # local optimum
        nodes = best_nodes
        current_cost += best_delta

    x = np.zeros((m, n))
    x[np.arange(m), nodes] = 1.0
    return x, float(_placement_cost(problem, nodes))
