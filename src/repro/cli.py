"""Command-line interface.

``repro-fap solve``    — solve a FAP instance on a standard topology;
``repro-fap trace``    — solve while streaming per-iteration JSON events;
``repro-fap figure``   — reproduce one of the paper's figures (3-6, 8, 9);
``repro-fap figures``  — reproduce all of them and print the summary tables;
``repro-fap sweep``    — sweep one parameter over a grid with a choice of
engine (``serial`` / ``fast`` fused serial / ``pooled`` process pool /
``batched`` lockstep), optionally warm-starting each grid point from its
neighbor's solution (``--warm-start``), and optionally persist the
:class:`~repro.experiments.sweeps.SweepResult` as JSON;
``repro-fap serve``    — run the allocation service over line-delimited
JSON requests (stdin or ``--input``), micro-batching compatible requests
and answering repeats from the solution cache; responses stream to
stdout as JSON lines;
``repro-fap net-serve`` — the same service behind a TCP socket, sharded
across worker processes (:mod:`repro.net`), draining gracefully on
SIGTERM;
``repro-fap net-solve`` — stream line-delimited JSON requests to a
running ``net-serve`` (or fetch its merged metrics with ``--stats``).

Any solve can stream observability events to disk with
``--emit-metrics PATH`` (JSON lines, one event per iteration, plus a
final ``run_complete``) and prints the :class:`~repro.obs.report.RunReport`
digest at the end.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation, single_node_allocation
from repro.core.model import FileAllocationProblem
from repro.experiments import ascii_plot, figures
from repro.network import builders
from repro.obs import JsonLinesSink, MetricsRegistry, RunReport
from repro.utils.tables import format_table

_TOPOLOGIES = {
    "ring": builders.ring_graph,
    "line": builders.line_graph,
    "star": builders.star_graph,
    "complete": builders.complete_graph,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fap",
        description="Decentralized microeconomic file allocation (Kurose & Simha 1986)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=4, help="network size")
        p.add_argument(
            "--topology", choices=sorted(_TOPOLOGIES), default="ring",
            help="network family",
        )
        p.add_argument("--mu", type=float, default=1.5, help="per-node service rate")
        p.add_argument(
            "--rate", type=float, default=1.0, help="total access rate lambda"
        )
        p.add_argument(
            "--k", type=float, default=1.0, help="delay/communication weight"
        )
        p.add_argument("--alpha", type=float, default=0.3, help="stepsize")
        p.add_argument(
            "--epsilon", type=float, default=1e-3, help="convergence tolerance"
        )
        p.add_argument(
            "--start",
            choices=["uniform", "skewed", "single"],
            default="skewed",
            help="initial allocation",
        )

    solve = sub.add_parser("solve", help="solve one FAP instance")
    add_instance_options(solve)
    solve.add_argument(
        "--engine", choices=["reference", "fast"], default="reference",
        help="solver loop: reference (dense trace) or the fused fast path "
             "(same iterates, sampled trace)",
    )
    solve.add_argument("--plot", action="store_true", help="ascii convergence profile")
    solve.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="stream per-iteration events to PATH (JSON lines) and print a run report",
    )

    trace = sub.add_parser(
        "trace",
        help="solve one FAP instance, streaming per-iteration JSON events",
    )
    add_instance_options(trace)
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the event stream to PATH instead of stdout",
    )

    fig = sub.add_parser("figure", help="reproduce one paper figure")
    fig.add_argument("number", type=int, choices=[3, 4, 5, 6, 8, 9])

    sub.add_parser("figures", help="reproduce all paper figures")

    report = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured markdown report"
    )
    report.add_argument(
        "--fast", action="store_true", help="reduced grids (seconds instead of minutes)"
    )

    topo = sub.add_parser("topology", help="preview a topology in the terminal")
    topo.add_argument("--nodes", type=int, default=6)
    topo.add_argument(
        "--topology", choices=sorted(_TOPOLOGIES), default="ring", dest="family"
    )

    sweep = sub.add_parser(
        "sweep",
        help="sweep one parameter over a grid (serial, pooled, or batched engine)",
    )
    add_instance_options(sweep)
    sweep.add_argument(
        "--param", choices=["alpha", "k", "mu", "rate"], default="alpha",
        help="which parameter the grid varies (the matching instance "
             "option is ignored; alpha sweeps vary the stepsize itself)",
    )
    sweep.add_argument(
        "--values", default=None, metavar="V1,V2,...",
        help="explicit comma-separated grid",
    )
    sweep.add_argument(
        "--grid", default=None, metavar="START:STOP:NUM",
        help="evenly spaced grid (exactly one of --values/--grid)",
    )
    sweep.add_argument(
        "--engine", choices=["serial", "fast", "pooled", "batched"],
        default="batched",
        help="serial loop, fused serial fast path, process pool, or "
             "lockstep batched kernel (all return identical measurements)",
    )
    sweep.add_argument(
        "--warm-start", action="store_true",
        help="solve grid points in sorted order, seeding each from its "
             "neighbor's solution (batched engine: row-staggered "
             "continuation chains, see --chains)",
    )
    sweep.add_argument(
        "--chains", type=int, default=1,
        help="with --engine batched --warm-start: number of concurrent "
             "warm-start chains the sorted grid is split into (1 = exact "
             "serial warm-sweep measurements; more = staggered chains "
             "advancing in lockstep, same optima, fewer wall-clock steps)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="pool size for --engine pooled (default: all cores)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="root seed for task rngs")
    sweep.add_argument(
        "--max-iterations", type=int, default=10_000, help="per-run iteration cap"
    )
    sweep.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the SweepResult as JSON to PATH",
    )

    serve = sub.add_parser(
        "serve",
        help="serve line-delimited JSON solve requests (micro-batched, cached)",
    )
    serve.add_argument(
        "--input", metavar="PATH", default=None,
        help="read requests from PATH instead of stdin",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="largest lockstep dispatch (1 disables micro-batching)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="solution-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="cache entry TTL (default: no expiry)",
    )
    serve.add_argument(
        "--cache-eviction", choices=["lru", "cost"], default="lru",
        help="cache eviction policy: recency, or value-weighted by "
             "solver iterations saved",
    )
    serve.add_argument(
        "--cache-budget", type=int, default=None, metavar="BYTES",
        help="byte budget on retained cache entries (default: unbounded)",
    )
    serve.add_argument(
        "--drift-threshold", type=float, default=None, metavar="DRIFT",
        help="enable drift tracking: demote exact cache hits to warm "
             "re-solves once the traffic estimate drifts this far "
             "(relative L2) from the entry's epoch",
    )
    serve.add_argument(
        "--drift-window", type=int, default=16,
        help="EMA window of the drift tracker's per-structure estimate",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="admission bound on pending requests",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request queue deadline in seconds",
    )
    serve.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="stream service events to PATH (JSON lines)",
    )
    serve.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the final metrics-registry snapshot to PATH as JSON",
    )

    net_serve = sub.add_parser(
        "net-serve",
        help="serve solve requests over TCP, sharded across worker processes",
    )
    net_serve.add_argument("--host", default="127.0.0.1", help="listen address")
    net_serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 binds an ephemeral port and announces it)",
    )
    net_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, each with its own service + cache",
    )
    net_serve.add_argument(
        "--shards", type=int, default=None,
        help="routing partitions (default: one per worker)",
    )
    net_serve.add_argument(
        "--routing", choices=["affinity", "random"], default="affinity",
        help="shard policy: structural-fingerprint affinity or random",
    )
    net_serve.add_argument(
        "--codec", choices=["auto", "binary", "json"], default="auto",
        help="wire protocols to accept: auto serves both on one listener",
    )
    net_serve.add_argument(
        "--secret", default=None, metavar="SECRET",
        help="require the shared-secret HMAC handshake on every connection",
    )
    net_serve.add_argument(
        "--max-batch", type=int, default=32,
        help="largest lockstep dispatch per worker",
    )
    net_serve.add_argument(
        "--cache-size", type=int, default=256,
        help="per-worker solution-cache capacity (0 disables caching)",
    )
    net_serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="per-worker cache entry TTL (default: no expiry)",
    )
    net_serve.add_argument(
        "--cache-eviction", choices=["lru", "cost"], default="lru",
        help="per-worker cache eviction policy: recency, or "
             "value-weighted by solver iterations saved",
    )
    net_serve.add_argument(
        "--cache-budget", type=int, default=None, metavar="BYTES",
        help="per-worker byte budget on retained cache entries",
    )
    net_serve.add_argument(
        "--drift-threshold", type=float, default=None, metavar="DRIFT",
        help="enable per-worker drift tracking: demote exact cache hits "
             "to warm re-solves once the traffic estimate drifts this far",
    )
    net_serve.add_argument(
        "--drift-window", type=int, default=16,
        help="EMA window of the drift tracker's per-structure estimate",
    )
    net_serve.add_argument(
        "--lookaside", action="store_true",
        help="enable the cross-shard lookaside donor tier (requests "
             "missing their shard's cache warm-start from other shards' "
             "converged solutions)",
    )
    net_serve.add_argument(
        "--lookaside-ttl", type=float, default=None, metavar="SECONDS",
        help="lifetime of lookaside donor records (default: no expiry); "
             "expired records are never handed out or gossiped",
    )
    net_serve.add_argument(
        "--peers", default=None, metavar="HOST:PORT,...",
        help="static gossip mesh: comma-separated addresses of the other "
             "servers; donor records replicate across the mesh "
             "(requires --lookaside; peer links reuse --secret)",
    )
    net_serve.add_argument(
        "--gossip-interval", type=float, default=1.0, metavar="SECONDS",
        help="gossip round period (heartbeat + rumor push per round)",
    )
    net_serve.add_argument(
        "--gossip-budget", type=int, default=262144, metavar="BYTES",
        help="outbound gossip byte budget per second",
    )
    net_serve.add_argument(
        "--server-id", default=None, metavar="ID",
        help="mesh identity stamped on published donor records "
             "(default: the bound host:port)",
    )
    net_serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="per-worker admission bound on pending requests",
    )
    net_serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request queue deadline in seconds",
    )
    net_serve.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the final merged stats snapshot to PATH as JSON on exit",
    )

    net_solve = sub.add_parser(
        "net-solve",
        help="stream line-delimited JSON requests to a running net-serve",
    )
    net_solve.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="server address, as announced by net-serve",
    )
    net_solve.add_argument(
        "--input", metavar="PATH", default=None,
        help="read requests from PATH instead of stdin",
    )
    net_solve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds",
    )
    net_solve.add_argument(
        "--retries", type=int, default=2,
        help="re-send budget per request (transport failures and, with "
        "--retry-restarts on the API, worker restarts share it)",
    )
    net_solve.add_argument(
        "--codec", choices=["binary", "json"], default="binary",
        help="wire protocol to speak (json for pre-binary servers)",
    )
    net_solve.add_argument(
        "--secret", default=None, metavar="SECRET",
        help="shared secret for servers started with --secret",
    )
    net_solve.add_argument(
        "--stats", action="store_true",
        help="print the server's merged stats snapshot and exit",
    )

    copies = sub.add_parser(
        "copies", help="sweep the copy count m on a virtual ring (§8.2)"
    )
    copies.add_argument("--nodes", type=int, default=6)
    copies.add_argument("--mu", type=float, default=10.0)
    copies.add_argument(
        "--write-fraction", type=float, default=0.0,
        help="fraction of accesses that are writes (write-all replication)",
    )
    copies.add_argument(
        "--storage-cost", type=float, default=0.3, help="cost per copy stored"
    )
    return parser


def _initial_allocation(start: str, n: int) -> np.ndarray:
    starts = {
        "uniform": np.full(n, 1.0 / n),
        "skewed": paper_skewed_allocation(n),
        "single": single_node_allocation(n, 0),
    }
    return starts[start]


def _build_instance(args: argparse.Namespace):
    topo = _TOPOLOGIES[args.topology](args.nodes)
    rates = np.full(args.nodes, args.rate / args.nodes)
    problem = FileAllocationProblem.from_topology(topo, rates, k=args.k, mu=args.mu)
    return problem, _initial_allocation(args.start, args.nodes)


class _SweepFactory:
    """Picklable problem factory for ``repro-fap sweep``: a fixed instance
    spec whose swept slot (k / mu / rate) is filled per grid value.  For
    alpha sweeps the problem is the same at every grid point."""

    def __init__(self, param: str, nodes: int, topology: str, mu: float,
                 rate: float, k: float):
        self.param = param
        self.nodes = nodes
        self.topology = topology
        self.mu = mu
        self.rate = rate
        self.k = k

    def __call__(self, value):
        spec = {"mu": self.mu, "rate": self.rate, "k": self.k}
        if self.param in spec:
            spec[self.param] = float(value)
        topo = _TOPOLOGIES[self.topology](self.nodes)
        rates = np.full(self.nodes, spec["rate"] / self.nodes)
        return FileAllocationProblem.from_topology(
            topo, rates, k=spec["k"], mu=spec["mu"]
        )


def _sweep_measure(problem, result):
    """Picklable per-grid-point measure for ``repro-fap sweep``."""
    return {
        "cost": float(result.cost),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
    }


def _parse_sweep_grid(args: argparse.Namespace) -> List[float]:
    if (args.values is None) == (args.grid is None):
        raise SystemExit("sweep: give exactly one of --values or --grid")
    if args.values is not None:
        try:
            return [float(v) for v in args.values.split(",") if v.strip()]
        except ValueError:
            raise SystemExit(f"sweep: bad --values {args.values!r}")
    try:
        start, stop, num = args.grid.split(":")
        return [float(v) for v in np.linspace(float(start), float(stop), int(num))]
    except ValueError:
        raise SystemExit(f"sweep: bad --grid {args.grid!r} (expected START:STOP:NUM)")


def _batched_warm_sweep(args, values, factory, x0):
    """Row-staggered warm-started batched sweep.

    The sorted grid is split into ``--chains`` contiguous continuation
    chains — each an ascending run of neighbors seeding the next link
    from its predecessor's solution, exactly the serial sweep's warm
    order — and the chains advance concurrently, one continuous-batcher
    slot each.  ``--chains 1`` therefore reproduces the serial
    ``--engine fast --warm-start`` measurements exactly; more chains
    keep the same optima (within epsilon) while overlapping the chains'
    iterations in lockstep.
    """
    from repro.experiments.sweeps import SweepResult
    from repro.parallel import ChainLink, solve_chains

    order = sorted(range(len(values)), key=lambda i: values[i])
    n_chains = max(1, min(args.chains, len(order)))
    bounds = np.linspace(0, len(order), n_chains + 1).astype(int)
    chains, coords = [], []
    for c in range(n_chains):
        idxs = order[bounds[c] : bounds[c + 1]]
        coords.append(idxs)
        chains.append(
            [
                ChainLink(
                    problem=factory(values[i]),
                    alpha=float(values[i]) if args.param == "alpha" else args.alpha,
                    epsilon=args.epsilon,
                    max_iterations=args.max_iterations,
                    x0=x0,
                )
                for i in idxs
            ]
        )
    results = solve_chains(
        chains, epsilon=args.epsilon, max_iterations=args.max_iterations
    )
    measurements: List[Optional[dict]] = [None] * len(values)
    for c, idxs in enumerate(coords):
        for j, i in enumerate(idxs):
            row = results[c][j]
            if row.error is not None:
                raise SystemExit(
                    f"sweep: grid point {args.param}={values[i]} failed: {row.error}"
                )
            measurements[i] = {
                "cost": float(row.cost),
                "iterations": int(row.iterations),
                "converged": bool(row.converged),
            }
    return SweepResult(
        parameter=args.param,
        values=[float(v) for v in values],
        measurements=measurements,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import SweepResult, parameter_sweep, sweep_parallel

    if args.chains < 1:
        raise SystemExit("sweep: --chains must be >= 1")
    values = _parse_sweep_grid(args)
    factory = _SweepFactory(
        args.param, args.nodes, args.topology, args.mu, args.rate, args.k
    )
    x0 = _initial_allocation(args.start, args.nodes)
    # None → each task's own value is the stepsize (alpha is a solver
    # parameter, so it can't ride the problem factory).
    alpha = None if args.param == "alpha" else args.alpha
    if args.engine == "batched" and args.warm_start:
        sweep = _batched_warm_sweep(args, values, factory, x0)
    elif args.engine == "batched":
        from repro.parallel import BatchedAllocator, BatchedProblem

        batch = BatchedProblem.from_problems([factory(v) for v in values])
        row_alpha = [float(v) for v in values] if args.param == "alpha" else args.alpha
        result = BatchedAllocator(
            batch,
            alpha=row_alpha,
            epsilon=args.epsilon,
            max_iterations=args.max_iterations,
        ).run(np.tile(x0, (len(values), 1)))
        sweep = SweepResult(
            parameter=args.param,
            values=[float(v) for v in values],
            measurements=[
                {
                    "cost": float(result.costs[i]),
                    "iterations": int(result.iterations[i]),
                    "converged": bool(result.converged[i]),
                }
                for i in range(len(values))
            ],
        )
    elif args.engine == "pooled":
        sweep = sweep_parallel(
            args.param, values, factory,
            measure=_sweep_measure,
            initial_allocation=x0,
            alpha=alpha,
            epsilon=args.epsilon,
            max_iterations=args.max_iterations,
            seed=args.seed,
            max_workers=args.jobs,
            warm_start=args.warm_start,
        )
    else:
        # "serial" and "fast" share the in-process sweep; "fast" swaps the
        # per-point solver loop for the fused one.
        sweep = parameter_sweep(
            args.param, values, factory,
            measure=_sweep_measure,
            initial_allocation=x0,
            alpha=alpha,
            epsilon=args.epsilon,
            max_iterations=args.max_iterations,
            seed=args.seed,
            warm_start=args.warm_start,
            engine="fast" if args.engine == "fast" else "reference",
        )
    print(
        format_table(
            sweep.headers(), sweep.rows(),
            title=f"sweep over {args.param} ({args.engine} engine, {len(values)} points)",
        )
    )
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(sweep.to_json() + "\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the allocation service over a line-delimited JSON stream.

    Requests stream in (stdin or ``--input``), responses stream out on
    stdout in request order — solves, structured rejections, and
    per-line parse errors alike, one JSON object per line.  Requests are
    micro-batched ``--max-batch`` at a time; a run summary goes to
    stderr so stdout stays machine-readable.
    """
    import json

    from repro.service import (
        AdmissionController,
        AllocationService,
        iter_request_payloads,
        safe_parse,
    )

    registry = MetricsRegistry()
    sink = None
    if args.emit_metrics is not None:
        sink = JsonLinesSink(args.emit_metrics)
        registry.add_sink(sink)
    service = AllocationService(
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        cache_ttl_s=args.cache_ttl,
        cache_eviction=args.cache_eviction,
        cache_max_bytes=args.cache_budget,
        drift_threshold=args.drift_threshold,
        drift_window=args.drift_window,
        admission=AdmissionController(
            max_queue_depth=args.queue_depth, default_timeout_s=args.timeout
        ),
        registry=registry,
    )
    stream = open(args.input) if args.input is not None else sys.stdin

    slots: List = []  # ("error", dict) | ("ticket", PendingSolve), stream order
    printed = 0

    def flush() -> None:
        nonlocal printed
        while printed < len(slots):
            kind, payload = slots[printed]
            if kind == "ticket":
                if not payload.done():
                    break
                print(json.dumps(payload.response.as_dict()), flush=True)
            else:
                print(json.dumps(payload), flush=True)
            printed += 1

    try:
        queued = 0
        for payload in iter_request_payloads(stream):
            request, error = safe_parse(payload)
            if error is not None:
                slots.append(("error", error))
                flush()
                continue
            slots.append(("ticket", service.submit(request)))
            queued += 1
            if queued >= args.max_batch:
                service.pump()
                queued = 0
                flush()
        service.pump()
        flush()
    finally:
        if args.input is not None:
            stream.close()
        if sink is not None:
            sink.close()
        if args.metrics_out is not None:
            with open(args.metrics_out, "w") as fh:
                json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
                fh.write("\n")

    counters = registry.counters
    latency = service.latency_percentiles()
    solved = int(counters.get("service.solved", 0))
    hits = int(counters.get("service.cache.hit", 0))
    print(
        "served {served} of {total} request(s): cache hit/warm/miss = "
        "{hit}/{warm}/{miss}, {batches} dispatch(es), {rejected} rejected; "
        "latency p50/p95/p99 = {p50:.4g}/{p95:.4g}/{p99:.4g}s".format(
            served=solved + hits,
            total=int(counters.get("service.requests", 0)),
            hit=int(counters.get("service.cache.hit", 0)),
            warm=int(counters.get("service.cache.warm", 0)),
            miss=int(counters.get("service.cache.miss", 0)),
            batches=int(counters.get("service.batches", 0)),
            rejected=int(counters.get("service.rejected", 0)),
            **latency,
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_net_serve(args: argparse.Namespace) -> int:
    """Run the sharded TCP allocation server until SIGTERM/SIGINT.

    The bound address is announced on stdout as one JSON line
    (``{"event": "listening", ...}``) so scripts — and the loopback
    tests — can connect to an ephemeral ``--port 0``.  SIGTERM and
    SIGINT drain gracefully: in-flight requests finish, queued and new
    ones get structured ``shutting_down`` rejections.
    """
    import json

    from repro.exceptions import ConfigurationError
    from repro.net import NetServer

    try:
        server = NetServer(
            args.host,
            args.port,
            workers=args.workers,
            shards=args.shards,
            routing=args.routing,
            codec=args.codec,
            secret=args.secret,
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            cache_ttl_s=args.cache_ttl,
            cache_eviction=args.cache_eviction,
            cache_max_bytes=args.cache_budget,
            drift_threshold=args.drift_threshold,
            drift_window=args.drift_window,
            lookaside=args.lookaside,
            lookaside_ttl_s=args.lookaside_ttl,
            peers=args.peers,
            gossip_interval_s=args.gossip_interval,
            gossip_budget=args.gossip_budget,
            server_id=args.server_id,
            queue_depth=args.queue_depth,
            default_timeout_s=args.timeout,
        )
    except ConfigurationError as exc:
        print(f"net-serve: {exc}", file=sys.stderr)
        return 2
    server.start()
    server.install_signal_handlers()
    host, port = server.address
    print(
        json.dumps(
            {
                "event": "listening",
                "host": host,
                "port": port,
                "workers": server.num_workers,
                "shards": server.num_shards,
                "routing": args.routing,
                "codec": args.codec,
                "auth": args.secret is not None,
                "server_id": server.server_id,
                "peers": [f"{h}:{p}" for h, p in server.peer_addresses],
            }
        ),
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        stats = server.stats()
        if args.metrics_out is not None:
            with open(args.metrics_out, "w") as fh:
                json.dump(stats, fh, indent=2, sort_keys=True)
                fh.write("\n")
        counters = stats.get("counters", {})
        print(
            "net-serve drained: {req} request(s), {conns} connection(s), "
            "{restarts} worker restart(s), {rej} shutdown rejection(s)".format(
                req=int(counters.get("net.requests", 0)),
                conns=int(counters.get("net.connections", 0)),
                restarts=int(counters.get("net.worker_restarts", 0)),
                rej=int(counters.get("net.rejected.shutting_down", 0)),
            ),
            file=sys.stderr,
        )
        if stats.get("gossip") is not None:
            print(
                "gossip: {rounds} round(s), {sent} record(s) sent, "
                "{merged} merged, {down} peer-down event(s)".format(
                    rounds=int(counters.get("net.gossip.rounds", 0)),
                    sent=int(counters.get("net.gossip.records_sent", 0)),
                    merged=int(counters.get("net.gossip.records_merged", 0)),
                    down=int(counters.get("net.gossip.peer_down", 0)),
                ),
                file=sys.stderr,
            )
    return 0


def _cmd_net_solve(args: argparse.Namespace) -> int:
    """Stream requests to a running ``net-serve`` over one pooled client.

    One JSON response line per request line, in request order; transport
    failures surface as in-band ``{"status": "error"}`` lines so a flaky
    network cannot desynchronize stdout from the request stream.
    """
    import json

    from repro.net import NetClient, NetError
    from repro.service import iter_request_payloads

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"net-solve: bad --connect {args.connect!r} (expected HOST:PORT)")
    client = NetClient(
        host or "127.0.0.1",
        port,
        timeout_s=args.timeout,
        retries=args.retries,
        codec=args.codec,
        secret=args.secret,
    )
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        stream = open(args.input) if args.input is not None else sys.stdin
        served = errors = 0
        try:
            for payload in iter_request_payloads(stream):
                try:
                    response = client.solve_payload(payload)
                except NetError as exc:
                    response = {
                        "id": str(payload.get("id", "")),
                        "status": "error",
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                if response.get("status") == "ok":
                    served += 1
                else:
                    errors += 1
                print(json.dumps(response), flush=True)
        finally:
            if args.input is not None:
                stream.close()
        print(
            f"net-solve: {served} ok, {errors} not-ok; "
            f"client retries={client.metrics['retries']}, "
            f"timeouts={client.metrics['timeouts']}",
            file=sys.stderr,
        )
        return 0
    finally:
        client.close()


def _cmd_solve(args: argparse.Namespace) -> int:
    problem, start = _build_instance(args)
    registry = None
    sink = None
    if args.emit_metrics is not None:
        registry = MetricsRegistry()
        sink = JsonLinesSink(args.emit_metrics)
        registry.add_sink(sink)
    try:
        result = DecentralizedAllocator(
            problem, alpha=args.alpha, epsilon=args.epsilon, registry=registry
        ).run(start, engine=args.engine)
    finally:
        if sink is not None:
            sink.close()
    status = "converged" if result.converged else "did NOT converge"
    print(f"{problem.name}: {status} after {result.iterations} iterations")
    print(f"final cost: {result.cost:.6g}")
    print("allocation:", np.array2string(result.allocation, precision=4))
    if args.plot:
        print(ascii_plot({"cost": result.trace.costs()}, title="convergence profile"))
    if registry is not None:
        print(f"metrics: {sink.emitted} events -> {args.emit_metrics}")
        print(RunReport.from_registry(registry, name=problem.name).summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Solve while streaming every iteration as a JSON line."""
    problem, start = _build_instance(args)
    registry = MetricsRegistry()
    sink = (
        JsonLinesSink(args.out)
        if args.out is not None
        else JsonLinesSink(sys.stdout)
    )
    registry.add_sink(sink)
    try:
        result = DecentralizedAllocator(
            problem, alpha=args.alpha, epsilon=args.epsilon, registry=registry
        ).run(start)
    finally:
        sink.close()
    if args.out is not None:
        status = "converged" if result.converged else "did NOT converge"
        print(
            f"{problem.name}: {status} after {result.iterations} iterations; "
            f"{sink.emitted} events -> {args.out}"
        )
    return 0


def _print_figure(number: int) -> None:
    if number == 3:
        res = figures.figure3()
        print(format_table(res.HEADERS, res.rows(), title="Figure 3: convergence profiles"))
        print(ascii_plot(
            {f"alpha={a:g}": p for a, p in sorted(res.profiles.items(), reverse=True)},
            title="cost vs iteration",
        ))
    elif number == 4:
        res = figures.figure4()
        print(format_table(res.HEADERS, res.rows(), title="Figure 4: fragmentation vs integral"))
    elif number == 5:
        res = figures.figure5()
        print(format_table(res.HEADERS, res.rows(), title="Figure 5: iterations vs alpha"))
        print(f"best alpha: {res.best_alpha:g}; plateau width: {res.plateau_width():.3g}")
    elif number == 6:
        res = figures.figure6()
        print(format_table(res.HEADERS, res.rows(), title="Figure 6: iterations vs N"))
        print("flat in N:" , res.is_flat())
    elif number == 8:
        res = figures.figure8()
        print(format_table(res.HEADERS, res.rows(), title="Figure 8: multi-copy profiles"))
        print("comm-dominated oscillates more:", res.comm_oscillates_more)
    elif number == 9:
        res = figures.figure9()
        print(format_table(res.HEADERS, res.rows(), title="Figure 9: alpha vs oscillation"))
        print("smaller alpha oscillates less:", res.smaller_alpha_oscillates_less)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "figure":
        _print_figure(args.number)
        return 0
    if args.command == "figures":
        for number in (3, 4, 5, 6, 8, 9):
            _print_figure(number)
            print()
        return 0
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "net-serve":
        return _cmd_net_serve(args)
    if args.command == "net-solve":
        return _cmd_net_solve(args)
    if args.command == "report":
        from repro.experiments.report import generate_report

        print(generate_report(fast=args.fast))
        return 0
    if args.command == "topology":
        from repro.network.visualize import adjacency_art, topology_summary

        topo = _TOPOLOGIES[args.family](args.nodes)
        print(topology_summary(topo))
        print()
        print(adjacency_art(topo))
        return 0
    if args.command == "copies":
        from repro.multicopy import optimal_copy_count_with_writes
        from repro.network.virtual_ring import VirtualRing

        ring = VirtualRing([1.0] * args.nodes)
        sweep = optimal_copy_count_with_writes(
            ring,
            np.ones(args.nodes),
            mu=args.mu,
            write_fraction=args.write_fraction,
            storage_cost_per_copy=args.storage_cost,
        )
        print(
            format_table(
                sweep.HEADERS,
                sweep.rows(),
                title=(
                    f"Copy-count sweep: {args.nodes}-node unit ring, "
                    f"{args.write_fraction:.0%} writes"
                ),
            )
        )
        print(f"optimal m = {sweep.best.copies}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
