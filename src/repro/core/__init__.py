"""Core FAP library: the paper's primary contribution.

Typical use::

    from repro.core import FileAllocationProblem, DecentralizedAllocator

    problem = FileAllocationProblem.paper_network()      # 4-node ring, §6
    result = DecentralizedAllocator(problem, alpha=0.3).run([0.8, 0.1, 0.1, 0.0])
    result.allocation                                    # -> ~[0.25]*4
"""

from repro.core.active_set import (
    ActiveSetPolicy,
    ClampRedistribute,
    PaperActiveSet,
    ScaledStep,
    Unconstrained,
    make_policy,
)
from repro.core.algorithm import AllocationResult, DecentralizedAllocator, solve
from repro.core.fastpath import run_fast, solve_fast
from repro.core.initials import (
    paper_skewed_allocation,
    proportional_allocation,
    random_allocation,
    single_node_allocation,
    uniform_allocation,
)
from repro.core.kkt import KKTReport, check_kkt, optimal_allocation, optimal_cost
from repro.core.model import FileAllocationProblem
from repro.core.multifile import MultiFileAllocator, MultiFileProblem
from repro.core.neighbor import (
    GossipAverageAllocator,
    NeighborOnlyAllocator,
    graph_laplacian,
    metropolis_weights,
)
from repro.core.query_update import QueryUpdateSpec, build_query_update_problem
from repro.core.second_order import SecondOrderAllocator
from repro.core.stepsize import (
    BacktrackingLineSearch,
    DecayOnOscillation,
    DynamicStep,
    FixedStep,
    StepSizePolicy,
    TheoremTwoStep,
    make_stepsize,
    theorem2_alpha_bound,
)
from repro.core.termination import (
    AnyOf,
    CostDeltaCriterion,
    GradientSpreadCriterion,
    LowestObservedCostCriterion,
    TerminationCriterion,
)
from repro.core.trace import IterationRecord, Trace
from repro.core.volume import VolumeCostProblem

__all__ = [
    "ActiveSetPolicy",
    "AllocationResult",
    "AnyOf",
    "BacktrackingLineSearch",
    "ClampRedistribute",
    "CostDeltaCriterion",
    "DecayOnOscillation",
    "DecentralizedAllocator",
    "DynamicStep",
    "FileAllocationProblem",
    "FixedStep",
    "GossipAverageAllocator",
    "GradientSpreadCriterion",
    "IterationRecord",
    "KKTReport",
    "LowestObservedCostCriterion",
    "MultiFileAllocator",
    "MultiFileProblem",
    "NeighborOnlyAllocator",
    "PaperActiveSet",
    "QueryUpdateSpec",
    "ScaledStep",
    "SecondOrderAllocator",
    "StepSizePolicy",
    "TerminationCriterion",
    "TheoremTwoStep",
    "Trace",
    "Unconstrained",
    "VolumeCostProblem",
    "build_query_update_problem",
    "check_kkt",
    "graph_laplacian",
    "make_policy",
    "metropolis_weights",
    "make_stepsize",
    "optimal_allocation",
    "optimal_cost",
    "paper_skewed_allocation",
    "proportional_allocation",
    "random_allocation",
    "run_fast",
    "single_node_allocation",
    "solve",
    "solve_fast",
    "theorem2_alpha_bound",
    "uniform_allocation",
]
