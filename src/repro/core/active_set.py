"""Active-set / non-negativity policies for the reallocation step.

The raw step ``dx_i = alpha (dU/dx_i - avg)`` can drive an allocation
negative.  §5.2 of the paper handles this with an *active set* ``A``:
freeze the violating nodes, recompute the step over ``A`` (whose deviations
from the ``A``-average still sum to zero, preserving feasibility), and
re-admit frozen nodes whose marginal utility exceeds the ``A``-average.

Numerical probing of the paper's own figure-3 configuration (see DESIGN.md)
shows the literal freeze rule stalls when a *large donor* overshoots below
zero, whereas uniformly shrinking the step so the worst node lands exactly
at zero reproduces the paper's reported iteration counts.  All four
variants are provided; :class:`ScaledStep` is the library default and the
ablation bench compares them.

Every policy returns ``(dx, active_mask)`` with ``sum(dx) == 0`` exactly
(feasibility, Theorem 1) and — except :class:`Unconstrained` —
``x + dx >= 0``.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np


class ActiveSetPolicy(abc.ABC):
    """Strategy object mapping (allocation, marginal utilities, alpha) to a
    feasible step."""

    name: str = "abstract"

    @abc.abstractmethod
    def apply(
        self, x: np.ndarray, utility_gradient: np.ndarray, alpha: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(dx, active_mask)`` for one iteration."""

    @staticmethod
    def raw_step(utility_gradient: np.ndarray, alpha: float, mask: np.ndarray) -> np.ndarray:
        """``alpha * (g_i - avg_A g)`` on the masked set, 0 elsewhere."""
        dx = np.zeros_like(utility_gradient)
        g = utility_gradient[mask]
        if g.size:
            dx[mask] = alpha * (g - g.mean())
        return dx

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Unconstrained(ActiveSetPolicy):
    """No non-negativity handling: the pure §5.2 step over all nodes.

    Allocations may transiently dip below zero (mathematically fine for the
    cost function, physically meaningless); included because the paper's
    figure-3 trajectories are consistent with this behaviour and it is the
    cleanest setting for studying raw convergence dynamics.
    """

    name = "unconstrained"
    #: Signals the allocator's validator that negative shares are intended.
    allows_negative = True

    def apply(self, x, utility_gradient, alpha):
        mask = np.ones(x.size, dtype=bool)
        return self.raw_step(utility_gradient, alpha, mask), mask


class ScaledStep(ActiveSetPolicy):
    """Shrink the whole step so the most-violating node lands exactly at 0.

    The step direction is unchanged (so monotonicity is kept — a shorter
    move along an ascent direction of a concave utility still ascends), and
    ``sum(dx) == 0`` survives scalar scaling.  Default policy.
    """

    name = "scaled-step"

    #: Shares below this are treated as pinned at the boundary.
    zero_tol = 1e-12

    def apply(self, x, utility_gradient, alpha):
        # Freeze boundary nodes that want to shrink further: they have
        # nothing to give, and KKT allows them to sit at zero with a
        # below-average marginal.  Without this, the uniform scaling below
        # would shrink every step to zero and stall at the boundary.
        mask = np.ones(x.size, dtype=bool)
        for _ in range(x.size):
            dx = self.raw_step(utility_gradient, alpha, mask)
            pinned = mask & (x <= self.zero_tol) & (dx < 0)
            if not np.any(pinned):
                break
            mask &= ~pinned
        if not np.any(mask):
            return np.zeros_like(x), mask
        # Uniformly shrink so the worst positive donor lands exactly at 0.
        if np.any(x + dx < 0):
            shrinking = dx < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
            scale = float(min(1.0, np.min(factors)))
            dx = dx * scale
        # Guard round-off: absorb any -1e-18 residue into the largest gainer.
        overshoot = np.minimum(x + dx, 0.0)
        if np.any(overshoot < 0):
            dx = dx - overshoot
            dx[int(np.argmax(dx))] += overshoot.sum()
        return dx, mask


class PaperActiveSet(ActiveSetPolicy):
    """The literal §5.2 procedure.

    (i)   A = { i : x_i + dx_i > 0 }  (dx computed over all nodes);
    (ii)  sort the frozen nodes by marginal utility;
    (iii) re-admit the best frozen node if its marginal utility exceeds the
          current A-average;
    (iv)  repeat until no additions;
    then recompute dx over the final A (zero elsewhere).

    A final safety scaling (as in :class:`ScaledStep`, restricted to A)
    protects the recomputed step, since the paper's procedure checks
    positivity only against the *first* step.

    Note a fact the paper does not state: the re-admission branch (iii)
    can never fire.  A node is frozen only if ``dx_j <= -x_j < 0``, i.e.
    ``g_j`` is *below* the all-nodes average; removing below-average
    elements raises the average, so every frozen node is also below the
    A-average.  The branch is implemented anyway for fidelity, and the
    test suite pins down the impossibility (see
    ``TestPaperActiveSet::test_readmission_branch_is_provably_dead``).
    """

    name = "paper"

    def apply(self, x, utility_gradient, alpha):
        n = x.size
        g = utility_gradient
        mask = np.ones(n, dtype=bool)
        dx = self.raw_step(g, alpha, mask)
        if np.all(x + dx > 0):
            return dx, mask
        # Step (i): freeze violators.
        mask = (x + dx) > 0
        if not np.any(mask):
            # Pathological: everything violates; keep the single best node.
            mask = np.zeros(n, dtype=bool)
            mask[int(np.argmax(g))] = True
        # Steps (ii)-(v): re-admit frozen nodes with above-average marginals.
        changed = True
        while changed:
            changed = False
            frozen = np.flatnonzero(~mask)
            if frozen.size == 0:
                break
            best = frozen[np.argmax(g[frozen])]
            if g[best] > g[mask].mean():
                mask[best] = True
                changed = True
        dx = self.raw_step(g, alpha, mask)
        # Safety: the recomputed step may itself violate; scale within A.
        if np.any(x + dx < 0):
            shrinking = dx < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
            dx = dx * float(min(1.0, np.min(factors)))
        return dx, mask


class ClampRedistribute(ActiveSetPolicy):
    """Clamp violators to zero and hand the released mass to the movers.

    Violating nodes are set to exactly 0; the mass they could not give up
    is charged back pro-rata against the nodes whose shares were growing,
    keeping ``sum(dx) == 0``.  A projection-flavoured alternative included
    for the ablation study.
    """

    name = "clamp-redistribute"

    def apply(self, x, utility_gradient, alpha):
        mask = np.ones(x.size, dtype=bool)
        dx = self.raw_step(utility_gradient, alpha, mask)
        target = x + dx
        violated = target < 0
        if np.any(violated):
            deficit = float(-target[violated].sum())
            target[violated] = 0.0
            gaining = dx > 0
            if np.any(gaining):
                weights = dx[gaining] / dx[gaining].sum()
                target[gaining] -= deficit * weights
                # Cascading violation is possible in principle; fall back to
                # a uniform trim over whatever is still positive.
                while np.any(target < -1e-15):
                    bad = target < 0
                    extra = float(-target[bad].sum())
                    target[bad] = 0.0
                    pos = target > 0
                    target[pos] -= extra * target[pos] / target[pos].sum()
            dx = target - x
        return dx, mask


_POLICIES = {
    cls.name: cls for cls in (Unconstrained, ScaledStep, PaperActiveSet, ClampRedistribute)
}


def make_policy(name_or_policy) -> ActiveSetPolicy:
    """Resolve a policy from an instance or one of the registered names
    (``"scaled-step"``, ``"paper"``, ``"clamp-redistribute"``,
    ``"unconstrained"``)."""
    if isinstance(name_or_policy, ActiveSetPolicy):
        return name_or_policy
    try:
        return _POLICIES[str(name_or_policy)]()
    except KeyError:
        raise ValueError(
            f"unknown active-set policy {name_or_policy!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
