"""The decentralized file allocation algorithm (§5).

Each iteration of :class:`DecentralizedAllocator` performs what, deployed
on a real network, would be one local-compute-plus-broadcast round:

1. every node evaluates its marginal utility ``dU/dx_i`` at the current
   allocation (local: it needs only its own ``x_i``, ``C_i``, ``k`` and
   the network access rate);
2. the marginals are averaged (by broadcast or a designated central agent —
   :mod:`repro.distributed` simulates both protocols and message counts);
3. the allocation moves toward above-average marginal utility,
   ``dx_i = alpha (dU/dx_i - avg_A)``, with an active-set policy keeping
   every share non-negative.

Stopping: marginal utilities agree within ``epsilon`` on the active set
(exactly the paper's §5.2 criterion), or a custom criterion.

The run maintains the paper's headline invariants, which are asserted (not
hoped for) at every step when ``validate=True``:

* **feasibility** — ``sum x == 1`` after every iteration (Theorem 1);
* **monotonicity** — the cost strictly decreases until convergence
  (Theorem 2) whenever the stepsize respects its bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.active_set import ActiveSetPolicy, make_policy
from repro.core.initials import uniform_allocation
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import StepSizePolicy, make_stepsize
from repro.core.termination import GradientSpreadCriterion, TerminationCriterion
from repro.core.trace import KEEP_ALLOCATION_MODES, IterationRecord, Trace
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.obs.registry import MetricsRegistry, maybe_timer
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


@dataclass
class AllocationResult:
    """Outcome of a :class:`DecentralizedAllocator` run."""

    allocation: np.ndarray
    cost: float
    utility: float
    iterations: int
    converged: bool
    trace: Trace

    def __repr__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"AllocationResult({status} after {self.iterations} iterations, "
            f"cost={self.cost:.6g})"
        )


class DecentralizedAllocator:
    """The §5.2 iterative algorithm over a single-copy FAP instance.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.model.FileAllocationProblem` to optimize.
    alpha:
        A number (fixed stepsize, as in the paper's experiments) or any
        :class:`~repro.core.stepsize.StepSizePolicy`.
    epsilon:
        Convergence tolerance on the marginal-utility spread (the paper
        uses 1e-3 in §6).
    active_set:
        Non-negativity policy name or instance; see
        :mod:`repro.core.active_set`.  Default ``"scaled-step"``.
    termination:
        Optional custom criterion; defaults to the paper's
        gradient-spread rule at ``epsilon``.
    max_iterations:
        Iteration budget for :meth:`run`.
    validate:
        Assert feasibility after every step (cheap; on by default).
    callback:
        Optional observer invoked with each
        :class:`~repro.core.trace.IterationRecord` as it is appended —
        progress bars, live dashboards, adaptive schedulers.  Exceptions
        from the callback propagate (fail fast rather than mask bugs).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        attached, the run tallies iterations, gradient evaluations,
        active-set shrink events, clamp redistributions, and
        monotonicity violations, publishes final-cost / convergence /
        trace-memory gauges, and streams one structured ``iteration``
        event per step to any attached sinks.  Strictly observational:
        the iterate sequence is bit-for-bit identical with or without it.
    keep_allocations, sample_every:
        Trace memory policy — see :class:`~repro.core.trace.Trace`.
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        alpha: Union[float, StepSizePolicy] = 0.1,
        epsilon: float = 1e-3,
        active_set: Union[str, ActiveSetPolicy] = "scaled-step",
        termination: Optional[TerminationCriterion] = None,
        max_iterations: int = 100_000,
        validate: bool = True,
        callback=None,
        registry: Optional[MetricsRegistry] = None,
        keep_allocations: str = "all",
        sample_every: int = 100,
    ):
        self.problem = problem
        self.stepsize = make_stepsize(alpha)
        self.epsilon = check_positive(epsilon, "epsilon")
        self.active_set = make_policy(active_set)
        self.termination = termination or GradientSpreadCriterion(epsilon)
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.max_iterations = int(max_iterations)
        self.validate = validate
        self.callback = callback
        self.registry = registry
        if keep_allocations not in KEEP_ALLOCATION_MODES:
            raise ConfigurationError(
                f"keep_allocations must be one of {KEEP_ALLOCATION_MODES}, "
                f"got {keep_allocations!r}"
            )
        if sample_every < 1:
            raise ConfigurationError("sample_every must be >= 1")
        self.keep_allocations = keep_allocations
        self.sample_every = int(sample_every)

    # -- single step (used directly by the distributed runtime) -------------

    def step(self, x: np.ndarray, iteration: int = 0) -> tuple[np.ndarray, dict]:
        """One reallocation step; returns ``(new_x, info)``.

        ``info`` carries ``alpha``, the ``active_mask``, and the gradient
        used — everything the trace records and the distributed runtime
        forwards as messages.
        """
        g = self.problem.utility_gradient(x)
        if self.registry is not None:
            self.registry.counter_inc("allocator.gradient_evals")
        alpha = self.stepsize.alpha(iteration, x, g, self.problem)
        dx, mask = self.active_set.apply(x, g, alpha)
        new_x = self._apply(x, dx)
        return new_x, {"alpha": alpha, "active_mask": mask, "gradient": g}

    def _apply(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        """Apply a computed step, asserting the Theorem-1 invariants.

        Non-negativity is only an invariant of the constraint-handling
        policies; the deliberate :class:`~repro.core.active_set.Unconstrained`
        policy is allowed to dip below zero.

        Round-off residue below zero (magnitude <= 1e-9) is clamped, and
        the clamped mass is *redistributed* pro-rata over the positive
        shares.  A bare ``maximum(new_x, 0)`` would inject the clamped
        mass into the total: each step passes the per-step 1e-9 check,
        but over 10^4+ iterations ``sum(x)`` drifts systematically upward
        — the feasibility (Theorem 1) invariant erodes exactly where it
        is asserted.  Redistribution keeps the step's sum exact.
        """
        new_x = x + dx
        if self.validate:
            if abs(new_x.sum() - x.sum()) > 1e-9:
                raise AssertionError(
                    f"feasibility broken: sum moved from {x.sum()!r} to {new_x.sum()!r}"
                )
            if not getattr(self.active_set, "allows_negative", False):
                if np.any(new_x < -1e-9):
                    raise AssertionError(f"negative allocation: min={new_x.min()!r}")
                negative = new_x < 0.0
                if np.any(negative):
                    target_sum = float(new_x.sum())
                    clamped = float(-new_x[negative].sum())
                    new_x[negative] = 0.0
                    positive = new_x > 0.0
                    total = float(new_x[positive].sum())
                    if total > 0.0:
                        new_x[positive] -= clamped * (new_x[positive] / total)
                        # Pin the residual rounding error of the pro-rata
                        # subtraction onto the largest share (one ulp).
                        new_x[int(np.argmax(new_x))] -= new_x.sum() - target_sum
                    if self.registry is not None:
                        self.registry.counter_inc("allocator.clamp_events")
                        self.registry.counter_inc("allocator.clamped_mass", clamped)
        return new_x

    # -- full run ---------------------------------------------------------------

    def run(
        self,
        initial_allocation: Optional[Sequence[float]] = None,
        *,
        raise_on_failure: bool = False,
        engine: str = "reference",
    ) -> AllocationResult:
        """Iterate from ``initial_allocation`` (default: uniform) until the
        termination criterion fires or the budget is exhausted.

        ``engine`` selects the loop implementation:

        * ``"reference"`` (default) — this method's loop: one trace record,
          one registry event, and one callback invocation per iteration.
        * ``"fast"`` — :func:`repro.core.fastpath.run_fast`: fused one-pass
          cost/gradient evaluation and sampled trace/event emission.  The
          iterate sequence, iteration count, final allocation, cost, and
          registry counter totals are bit-for-bit identical to the
          reference engine; trace records, per-iteration events, and
          callback invocations arrive at ``sample_every`` cadence instead
          of every step.
        """
        if engine == "fast":
            from repro.core.fastpath import run_fast

            return run_fast(
                self, initial_allocation, raise_on_failure=raise_on_failure
            )
        if engine != "reference":
            raise ConfigurationError(
                f'engine must be "reference" or "fast", got {engine!r}'
            )
        if initial_allocation is None:
            x = uniform_allocation(self.problem.n)
        else:
            x = self.problem.check_feasible(initial_allocation).copy()

        self.stepsize.reset()
        self.termination.reset()
        reg = self.registry

        # Convergence is always judged on the *prospective* step's active
        # set at the current point — exactly what each node computes from
        # one round of reports in the distributed runtime, so the two
        # implementations stop at the same iterate.
        trace = Trace(
            keep_allocations=self.keep_allocations, sample_every=self.sample_every
        )
        # Under "sampled"/"last" the trace discards most allocation
        # snapshots on the very next append — copying every iterate would
        # be pure churn.  The loop below rebinds ``x`` each step (``_apply``
        # returns a fresh array), so handing the trace the live array is
        # safe: a record either drops it or becomes its sole owner.  The
        # final record is detached with a real copy after the loop so it
        # never aliases ``result.allocation``.
        copy_records = self.keep_allocations == "all"

        def emit(record: IterationRecord) -> None:
            trace.append(record)
            if self.callback is not None:
                self.callback(record)

        with maybe_timer(reg, "allocator.run_seconds"):
            g = self.problem.utility_gradient(x)
            alpha = self.stepsize.alpha(0, x, g, self.problem)
            dx, mask = self.active_set.apply(x, g, alpha)
            cost = self.problem.cost(x)
            initial_spread = spread(g[mask])
            active_count = int(mask.sum())
            if reg is not None:
                reg.counter_inc("allocator.gradient_evals")
                reg.event(
                    "iteration",
                    i=0,
                    cost=cost,
                    spread=initial_spread,
                    active=active_count,
                )
            emit(
                IterationRecord(
                    iteration=0,
                    allocation=x.copy() if copy_records else x,
                    cost=cost,
                    utility=-cost,
                    gradient_spread=initial_spread,
                    alpha=float("nan"),
                    active_count=active_count,
                )
            )

            converged = self.termination.should_stop(0, x, g, mask, cost)
            iteration = 0
            prev_cost = cost
            prev_active = active_count
            while not converged and iteration < self.max_iterations:
                iteration += 1
                applied_alpha = alpha
                x = self._apply(x, dx)
                cost = self.problem.cost(x)
                self.stepsize.notify_cost(iteration, cost)
                g = self.problem.utility_gradient(x)
                alpha = self.stepsize.alpha(iteration, x, g, self.problem)
                dx, mask = self.active_set.apply(x, g, alpha)
                step_spread = spread(g[mask])
                active_count = int(mask.sum())
                if reg is not None:
                    reg.counter_inc("allocator.iterations")
                    reg.counter_inc("allocator.gradient_evals")
                    if active_count < prev_active:
                        reg.counter_inc("allocator.active_set_shrink")
                    if cost > prev_cost + 1e-12:
                        reg.counter_inc("allocator.monotonicity_violations")
                    reg.observe("allocator.alpha", applied_alpha)
                    reg.event(
                        "iteration",
                        i=iteration,
                        cost=cost,
                        alpha=applied_alpha,
                        spread=step_spread,
                        active=active_count,
                    )
                emit(
                    IterationRecord(
                        iteration=iteration,
                        allocation=x.copy() if copy_records else x,
                        cost=cost,
                        utility=-cost,
                        gradient_spread=step_spread,
                        alpha=applied_alpha,
                        active_count=active_count,
                    )
                )
                converged = self.termination.should_stop(iteration, x, g, mask, cost)
                prev_cost = cost
                prev_active = active_count

        last = trace.records[-1]
        if not copy_records and last.allocation is x:
            trace.records[-1] = replace(last, allocation=x.copy())
        if reg is not None:
            reg.gauge_set("allocator.final_cost", cost)
            reg.gauge_set("allocator.converged", float(converged))
            reg.gauge_set("allocator.active_count", active_count)
            reg.gauge_max("allocator.trace_peak_bytes", trace.peak_allocation_bytes)
            reg.event(
                "run_complete",
                iterations=iteration,
                cost=cost,
                converged=converged,
            )
        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"no convergence in {self.max_iterations} iterations "
                f"(spread={spread(g[mask]):g}, epsilon={self.epsilon:g})",
                iterations=iteration,
            )
        return AllocationResult(
            allocation=x,
            cost=cost,
            utility=-cost,
            iterations=iteration,
            converged=converged,
            trace=trace,
        )

    def __repr__(self) -> str:
        return (
            f"DecentralizedAllocator(problem={self.problem.name!r}, "
            f"stepsize={self.stepsize!r}, active_set={self.active_set!r})"
        )


def solve(
    problem: FileAllocationProblem,
    *,
    alpha: Union[float, StepSizePolicy] = 0.1,
    epsilon: float = 1e-3,
    initial_allocation: Optional[Sequence[float]] = None,
    max_iterations: int = 100_000,
    active_set: Union[str, ActiveSetPolicy] = "scaled-step",
    termination: Optional[TerminationCriterion] = None,
    validate: bool = True,
    callback=None,
    raise_on_failure: bool = False,
    registry: Optional[MetricsRegistry] = None,
    keep_allocations: str = "all",
    sample_every: int = 100,
    engine: str = "reference",
) -> AllocationResult:
    """One-call convenience wrapper around :class:`DecentralizedAllocator`.

    Exposes the full allocator surface — earlier versions silently
    dropped ``active_set``, ``validate``, ``callback`` and
    ``raise_on_failure``, so callers of the convenience wrapper could not
    reach documented allocator features.  ``engine="fast"`` selects the
    fused :mod:`repro.core.fastpath` loop (see
    :meth:`DecentralizedAllocator.run`); :func:`repro.core.fastpath.solve_fast`
    is the same thing as a named entry point.
    """
    allocator = DecentralizedAllocator(
        problem,
        alpha=alpha,
        epsilon=epsilon,
        max_iterations=max_iterations,
        active_set=active_set,
        termination=termination,
        validate=validate,
        callback=callback,
        registry=registry,
        keep_allocations=keep_allocations,
        sample_every=sample_every,
    )
    return allocator.run(
        initial_allocation, raise_on_failure=raise_on_failure, engine=engine
    )
