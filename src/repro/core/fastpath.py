"""The fused serial fast path: the §5.2 loop without the Python tax.

The reference :meth:`~repro.core.algorithm.DecentralizedAllocator.run`
loop is written for observability: it evaluates the cost and the gradient
separately (each a per-node Python loop for object delay models), builds
an :class:`~repro.core.trace.IterationRecord` with a fresh ``x.copy()``
every step, and streams one registry event per iteration.  For the
paper's §6 workloads — thousands of gradient iterations to ε=1e-3 — that
bookkeeping dominates the arithmetic.

:func:`run_fast` executes the *same* iteration:

* one fused :meth:`~repro.core.model.FileAllocationProblem.evaluate` call
  per step (cost + gradient — and the Hessian diagonal when the stepsize
  is :class:`~repro.core.stepsize.DynamicStep` — sharing the
  ``1/(mu - lambda x)`` reciprocals);
* the exact reference step pipeline — the allocator's own
  :class:`~repro.core.active_set.ActiveSetPolicy` ``apply`` and its
  ``_apply`` feasibility/clamp redistribution — so the iterate sequence
  is **bit-for-bit identical** to the reference loop (property-tested in
  ``tests/test_fastpath.py``);
* sampled trace emission: records at iteration 0, every
  ``sample_every``-th iteration, and the final iterate, instead of every
  step.  A registry, when attached, receives events at the same sampled
  cadence while its counters (iterations, gradient evals, shrink/
  monotonicity tallies) and final gauges stay exactly the reference
  totals.  The callback, when set, fires on the sampled records only.

``AllocationResult.iterations / allocation / cost / converged`` are
bit-identical to the reference engine; only the trace density differs.
Select it with ``DecentralizedAllocator.run(engine="fast")``,
``solve(..., engine="fast")``, or the :func:`solve_fast` shorthand.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.active_set import ScaledStep
from repro.core.initials import uniform_allocation
from repro.core.stepsize import DynamicStep, FixedStep
from repro.core.termination import GradientSpreadCriterion
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConvergenceError
from repro.obs.registry import maybe_timer
from repro.utils.numeric import spread

__all__ = ["run_fast", "solve_fast"]


def _dynamic_alpha(dyn: DynamicStep, g: np.ndarray, hessian: np.ndarray) -> float:
    """:meth:`DynamicStep.alpha` with the Hessian from the fused evaluate.

    Reproduces the policy's arithmetic exactly (same expressions, same
    reduction order) so the chosen alpha is bit-identical to the
    reference loop's ``problem.cost_hessian_diag`` route."""
    dev = g - g.mean()
    s1 = float(np.sum(dev**2))
    h = -hessian  # d2U/dx2
    s2 = float(np.sum(h * dev**2))
    if s2 >= 0 or s1 == 0:
        return dyn.fallback
    return dyn.safety * (-s1 / s2)


def run_fast(
    allocator,
    initial_allocation: Optional[Sequence[float]] = None,
    *,
    raise_on_failure: bool = False,
):
    """Run ``allocator`` (a :class:`DecentralizedAllocator`) on the fused
    fast path; returns the same :class:`AllocationResult` the reference
    engine would, with a sampled trace."""
    from repro.core.algorithm import AllocationResult

    problem = allocator.problem
    if initial_allocation is None:
        x = uniform_allocation(problem.n)
    else:
        x = problem.check_feasible(initial_allocation).copy()

    stepsize = allocator.stepsize
    stepsize.reset()
    allocator.termination.reset()
    reg = allocator.registry
    active_set = allocator.active_set
    sample_every = allocator.sample_every

    # Exact-type stepsize dispatch: FixedStep collapses to a constant and
    # DynamicStep to the closed-form bound over the fused Hessian; any
    # other (or subclassed) policy takes the polymorphic reference call.
    fixed_alpha = stepsize.value if type(stepsize) is FixedStep else None
    dynamic = stepsize if type(stepsize) is DynamicStep else None
    need_hessian = dynamic is not None

    # The default configuration — scaled-step policy, fixed/dynamic
    # stepsize, gradient-spread stopping, pure M/M/1 nodes — admits a
    # fully inlined loop with no per-iteration Python object calls at
    # all.  Exact types only: subclasses may override anything.
    if (
        (fixed_alpha is not None or dynamic is not None)
        and type(active_set) is ScaledStep
        and type(allocator.termination) is GradientSpreadCriterion
        and getattr(problem, "_mm1_mu", None) is not None
        and problem.n > 0
        and bool(np.isfinite(problem._mm1_mu).all())
    ):
        return _run_specialized(allocator, x, raise_on_failure=raise_on_failure)

    trace = Trace(
        keep_allocations=allocator.keep_allocations, sample_every=sample_every
    )

    def emit(record: IterationRecord) -> None:
        trace.append(record)
        if allocator.callback is not None:
            allocator.callback(record)

    def next_alpha(iteration: int, g: np.ndarray, hessian) -> float:
        if fixed_alpha is not None:
            return fixed_alpha
        if dynamic is not None:
            return _dynamic_alpha(dynamic, g, hessian)
        return stepsize.alpha(iteration, x, g, problem)

    with maybe_timer(reg, "allocator.run_seconds"):
        evaluated = problem.evaluate(x, need_hessian=need_hessian)
        cost = evaluated[0]
        g = -evaluated[1]
        hessian = evaluated[2] if need_hessian else None
        alpha = next_alpha(0, g, hessian)
        dx, mask = active_set.apply(x, g, alpha)
        active_count = int(mask.sum())
        if reg is not None:
            reg.event(
                "iteration",
                i=0,
                cost=cost,
                spread=spread(g[mask]),
                active=active_count,
            )
        emit(
            IterationRecord(
                iteration=0,
                allocation=x.copy(),
                cost=cost,
                utility=-cost,
                gradient_spread=spread(g[mask]),
                alpha=float("nan"),
                active_count=active_count,
            )
        )

        converged = allocator.termination.should_stop(0, x, g, mask, cost)
        iteration = 0
        prev_cost = cost
        prev_active = active_count
        shrink_events = 0
        monotonicity_violations = 0
        while not converged and iteration < allocator.max_iterations:
            iteration += 1
            applied_alpha = alpha
            x = allocator._apply(x, dx)
            evaluated = problem.evaluate(x, need_hessian=need_hessian)
            cost = evaluated[0]
            g = -evaluated[1]
            if need_hessian:
                hessian = evaluated[2]
            stepsize.notify_cost(iteration, cost)
            alpha = next_alpha(iteration, g, hessian)
            dx, mask = active_set.apply(x, g, alpha)
            if reg is not None:
                active_count = int(mask.sum())
                if active_count < prev_active:
                    shrink_events += 1
                prev_active = active_count
                if cost > prev_cost + 1e-12:
                    monotonicity_violations += 1
                prev_cost = cost
            if iteration % sample_every == 0:
                step_spread = spread(g[mask])
                active_count = int(mask.sum())
                if reg is not None:
                    reg.observe("allocator.alpha", applied_alpha)
                    reg.event(
                        "iteration",
                        i=iteration,
                        cost=cost,
                        alpha=applied_alpha,
                        spread=step_spread,
                        active=active_count,
                    )
                emit(
                    IterationRecord(
                        iteration=iteration,
                        allocation=x.copy(),
                        cost=cost,
                        utility=-cost,
                        gradient_spread=step_spread,
                        alpha=applied_alpha,
                        active_count=active_count,
                    )
                )
            converged = allocator.termination.should_stop(
                iteration, x, g, mask, cost
            )

        if trace.records[-1].iteration != iteration:
            # The loop exited between sample points: always record the
            # final iterate (the trace's "most recent" contract).
            emit(
                IterationRecord(
                    iteration=iteration,
                    allocation=x.copy(),
                    cost=cost,
                    utility=-cost,
                    gradient_spread=spread(g[mask]),
                    alpha=applied_alpha,
                    active_count=int(mask.sum()),
                )
            )

    if reg is not None:
        # Counter totals match the reference loop exactly; only the
        # per-iteration event stream is sampled.
        if iteration:
            reg.counter_inc("allocator.iterations", iteration)
        reg.counter_inc("allocator.gradient_evals", iteration + 1)
        if shrink_events:
            reg.counter_inc("allocator.active_set_shrink", shrink_events)
        if monotonicity_violations:
            reg.counter_inc(
                "allocator.monotonicity_violations", monotonicity_violations
            )
        reg.gauge_set("allocator.final_cost", cost)
        reg.gauge_set("allocator.converged", float(converged))
        reg.gauge_set("allocator.active_count", int(mask.sum()))
        reg.gauge_max("allocator.trace_peak_bytes", trace.peak_allocation_bytes)
        reg.event(
            "run_complete",
            iterations=iteration,
            cost=cost,
            converged=converged,
        )
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"no convergence in {allocator.max_iterations} iterations "
            f"(spread={spread(g[mask]):g}, epsilon={allocator.epsilon:g})",
            iterations=iteration,
        )
    return AllocationResult(
        allocation=x,
        cost=cost,
        utility=-cost,
        iterations=iteration,
        converged=converged,
        trace=trace,
    )


def _run_specialized(allocator, x, *, raise_on_failure):
    """The default-configuration loop with every policy object inlined.

    Dispatch (from :func:`run_fast`) requires exactly :class:`ScaledStep`,
    :class:`FixedStep`/:class:`DynamicStep`, :class:`GradientSpreadCriterion`,
    and a pure-M/M/1 problem with finite service rates.  Under those types
    one iteration is ~15 vectorized numpy calls and zero Python-level
    policy dispatch, yet every float is produced by the *same expression
    shapes* as the reference path, so the iterate sequence stays
    bit-for-bit identical:

    * the step works on the cost gradient ``cg`` directly instead of
      materializing ``g = -cg``: IEEE-754 rounding is sign-symmetric, so
      ``mean(-cg) == -mean(cg)``, ``fl((-cg_i) - (-m)) == fl(m - cg_i)``,
      and ``dev**2`` is sign-invariant — the negation never needs to
      happen;
    * the cost is evaluated lazily — only for sampled trace records, the
      final iterate, or every iteration when a registry is attached
      (``FixedStep``/``DynamicStep`` are known not to override the no-op
      ``notify_cost`` hook);
    * the boundary machinery is *checked*, not run: while ``x.min()``
      stays off the boundary and ``x + dx`` stays non-negative (the
      overwhelmingly common case), :class:`ScaledStep`'s pin loop,
      uniform scaling, and overshoot guard are all provably no-ops and
      the feasibility clamp in ``_apply`` cannot fire.  The moment either
      check trips, the iteration falls back to the real policy objects
      for that step.
    """
    from repro.core.algorithm import AllocationResult

    problem = allocator.problem
    stepsize = allocator.stepsize
    active_set = allocator.active_set
    reg = allocator.registry
    callback = allocator.callback
    sample_every = allocator.sample_every
    validate = allocator.validate
    max_iterations = allocator.max_iterations
    epsilon = allocator.termination.epsilon
    zero_tol = active_set.zero_tol

    mu = problem._mm1_mu
    lam = problem.total_rate
    k = problem.k
    access = problem.access_cost
    two_lam = 2.0 * lam  # matches the scalar fold of ``2.0 * lam * dt``
    n = problem.n
    all_mask = np.ones(n, dtype=bool)

    dynamic = stepsize if type(stepsize) is DynamicStep else None
    fixed_alpha = stepsize.value if type(stepsize) is FixedStep else None
    need_cost = reg is not None

    trace = Trace(
        keep_allocations=allocator.keep_allocations, sample_every=sample_every
    )

    def emit(record: IterationRecord) -> None:
        trace.append(record)
        if callback is not None:
            callback(record)

    def derivatives(xv):
        """``_evaluate_mm1`` term by term, cost deferred.

        ``gap.min() > 0`` (False for NaN) plus finite service rates imply
        exactly the states ``_evaluate_mm1`` accepts; ``gap.max() == inf``
        catches a ``-inf`` arrival, which it rejects as non-finite.  On
        any failed check the delegate call raises the exact error."""
        arrivals = lam * xv
        gap = mu - arrivals
        if not gap.min() > 0 or gap.max() == np.inf:
            problem.evaluate(xv)
            raise AssertionError("evaluate accepted an unstable state")
        t = 1.0 / gap
        gapsq = gap * gap
        dt = 1.0 / gapsq
        cg = access + k * (t + arrivals * dt)
        return arrivals, gap, gapsq, t, dt, cg

    def next_alpha(cg, cg_mean, arrivals, gap, gapsq, dt):
        if fixed_alpha is not None:
            return fixed_alpha
        # DynamicStep.alpha via sign symmetry: dev here is the exact
        # negation of the reference ``g - g.mean()``, so ``dev**2`` and
        # s1 match bitwise and s2 is the exact negation of the sum.
        dev = cg - cg_mean
        dev2 = dev**2
        s1 = float(np.sum(dev2))
        d2t = 2.0 / (gapsq * gap)
        hess = k * (two_lam * dt + (arrivals * lam) * d2t)
        s2 = -float(np.sum(hess * dev2))
        if s2 >= 0 or s1 == 0:
            return dynamic.fallback
        return dynamic.safety * (-s1 / s2)

    def compute_step(xv, x_min, cg, cg_mean, alpha):
        """One ``ScaledStep.apply`` — inlined when no boundary is in play.

        Returns ``(dx, mask, all_active, cand, cand_min)``; ``cand`` is
        ``xv + dx`` (reusable as the next iterate) or ``None`` when the
        real policy ran and ``_apply`` must handle the step."""
        dx = alpha * (cg_mean - cg)  # == alpha * (g - g.mean()) bitwise
        clean = x_min > zero_tol or not bool(
            np.any((xv <= zero_tol) & (dx < 0))
        )
        if clean:
            cand = xv + dx
            cand_min = cand.min()
            if not cand_min < 0:  # NaN keeps the clean path, like apply()
                return dx, all_mask, True, cand, cand_min
        dx, mask = active_set.apply(xv, -cg, alpha)
        return dx, mask, bool(mask.all()), None, None

    with maybe_timer(reg, "allocator.run_seconds"):
        arrivals, gap, gapsq, t, dt, cg = derivatives(x)
        cost = float(np.sum((access + k * t) * x))
        cg_mean = cg.mean()
        alpha = next_alpha(cg, cg_mean, arrivals, gap, gapsq, dt)
        dx, mask, all_active, cand, cand_min = compute_step(
            x, x.min(), cg, cg_mean, alpha
        )
        if all_active:
            active_count = n
            step_spread = float(cg.max() - cg.min())
            empty = False
        else:
            gm = cg[mask]
            active_count = int(mask.sum())
            empty = gm.size == 0
            step_spread = 0.0 if empty else float(gm.max() - gm.min())
        if reg is not None:
            reg.event(
                "iteration", i=0, cost=cost, spread=step_spread,
                active=active_count,
            )
        emit(
            IterationRecord(
                iteration=0,
                allocation=x.copy(),
                cost=cost,
                utility=-cost,
                gradient_spread=step_spread,
                alpha=float("nan"),
                active_count=active_count,
            )
        )

        converged = True if empty else step_spread < epsilon
        iteration = 0
        applied_alpha = float("nan")
        x_sum = x.sum() if validate else None
        prev_cost = cost
        prev_active = active_count
        shrink_events = 0
        monotonicity_violations = 0
        while not converged and iteration < max_iterations:
            iteration += 1
            applied_alpha = alpha
            # -- advance the iterate (reference ``_apply`` semantics).
            # cand_min >= 0 makes the negativity checks/clamps no-ops;
            # only the sum-drift assertion can observe anything.
            if cand is not None:
                if validate:
                    new_sum = cand.sum()
                    if abs(new_sum - x_sum) > 1e-9:
                        raise AssertionError(
                            f"feasibility broken: sum moved from {x_sum!r} "
                            f"to {new_sum!r}"
                        )
                    x_sum = new_sum
                x = cand
                x_min = cand_min
            else:
                x = allocator._apply(x, dx)
                if validate:
                    x_sum = x.sum()
                x_min = x.min()

            arrivals, gap, gapsq, t, dt, cg = derivatives(x)
            cost = (
                float(np.sum((access + k * t) * x)) if need_cost else None
            )
            cg_mean = cg.mean()
            alpha = next_alpha(cg, cg_mean, arrivals, gap, gapsq, dt)
            dx, mask, all_active, cand, cand_min = compute_step(
                x, x_min, cg, cg_mean, alpha
            )
            if all_active:
                active_count = n
                step_spread = float(cg.max() - cg.min())
                empty = False
            else:
                gm = cg[mask]
                active_count = int(mask.sum())
                empty = gm.size == 0
                step_spread = 0.0 if empty else float(gm.max() - gm.min())
            if reg is not None:
                if active_count < prev_active:
                    shrink_events += 1
                prev_active = active_count
                if cost > prev_cost + 1e-12:
                    monotonicity_violations += 1
                prev_cost = cost
            if iteration % sample_every == 0:
                if cost is None:
                    cost = float(np.sum((access + k * t) * x))
                if reg is not None:
                    reg.observe("allocator.alpha", applied_alpha)
                    reg.event(
                        "iteration",
                        i=iteration,
                        cost=cost,
                        alpha=applied_alpha,
                        spread=step_spread,
                        active=active_count,
                    )
                emit(
                    IterationRecord(
                        iteration=iteration,
                        allocation=x.copy(),
                        cost=cost,
                        utility=-cost,
                        gradient_spread=step_spread,
                        alpha=applied_alpha,
                        active_count=active_count,
                    )
                )
            converged = True if empty else step_spread < epsilon

        if cost is None:
            cost = float(np.sum((access + k * t) * x))
        if trace.records[-1].iteration != iteration:
            emit(
                IterationRecord(
                    iteration=iteration,
                    allocation=x.copy(),
                    cost=cost,
                    utility=-cost,
                    gradient_spread=step_spread,
                    alpha=applied_alpha,
                    active_count=active_count,
                )
            )

    if reg is not None:
        if iteration:
            reg.counter_inc("allocator.iterations", iteration)
        reg.counter_inc("allocator.gradient_evals", iteration + 1)
        if shrink_events:
            reg.counter_inc("allocator.active_set_shrink", shrink_events)
        if monotonicity_violations:
            reg.counter_inc(
                "allocator.monotonicity_violations", monotonicity_violations
            )
        reg.gauge_set("allocator.final_cost", cost)
        reg.gauge_set("allocator.converged", float(converged))
        reg.gauge_set("allocator.active_count", active_count)
        reg.gauge_max("allocator.trace_peak_bytes", trace.peak_allocation_bytes)
        reg.event(
            "run_complete",
            iterations=iteration,
            cost=cost,
            converged=converged,
        )
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"no convergence in {max_iterations} iterations "
            f"(spread={step_spread:g}, epsilon={allocator.epsilon:g})",
            iterations=iteration,
        )
    return AllocationResult(
        allocation=x,
        cost=cost,
        utility=-cost,
        iterations=iteration,
        converged=converged,
        trace=trace,
    )


def solve_fast(problem, **kwargs):
    """:func:`repro.core.algorithm.solve` on the fast engine — one call,
    fused evaluation, sampled trace.  Accepts every ``solve`` keyword."""
    from repro.core.algorithm import solve

    return solve(problem, engine="fast", **kwargs)
