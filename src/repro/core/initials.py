"""Initial-allocation helpers.

The paper stresses that the initial allocation does not affect the final
optimum — only iteration counts — and that its sole requirement is
feasibility.  These helpers produce the starting points used in the paper's
experiments plus the usual generic ones.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.seeding import SeedLike, rng_from_seed


def uniform_allocation(n: int) -> np.ndarray:
    """``x_i = 1/n`` — also the optimum of every symmetric instance."""
    if n < 1:
        raise ConfigurationError(f"need at least one node, got {n}")
    return np.full(n, 1.0 / n)


def single_node_allocation(n: int, node: int = 0) -> np.ndarray:
    """The whole file at one node — the integral allocation of figure 4."""
    if not 0 <= node < n:
        raise ConfigurationError(f"node {node} out of range for n={n}")
    x = np.zeros(n)
    x[node] = 1.0
    return x


def paper_skewed_allocation(n: int) -> np.ndarray:
    """The paper's (0.8, 0.1, 0.1, 0, 0, ...) start (figures 3 and 6)."""
    if n < 3:
        raise ConfigurationError(f"the paper's skewed start needs n >= 3, got {n}")
    x = np.zeros(n)
    x[0], x[1], x[2] = 0.8, 0.1, 0.1
    return x


def random_allocation(n: int, *, seed: SeedLike = None, concentration: float = 1.0) -> np.ndarray:
    """A Dirichlet-distributed random feasible allocation.

    ``concentration`` < 1 produces skewed draws, > 1 near-uniform ones.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one node, got {n}")
    if concentration <= 0:
        raise ConfigurationError(f"concentration must be positive, got {concentration}")
    rng = rng_from_seed(seed)
    return rng.dirichlet(np.full(n, concentration))


def proportional_allocation(weights) -> np.ndarray:
    """Allocation proportional to non-negative ``weights`` (e.g. mu_i)."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size < 1:
        raise ConfigurationError("weights must be a non-empty vector")
    if np.any(w < 0) or w.sum() <= 0:
        raise ConfigurationError("weights must be non-negative with positive sum")
    return w / w.sum()
