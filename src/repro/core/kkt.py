"""KKT conditions and the closed-form optimum (§5.3).

At the optimum there is a multiplier ``q`` with

    dC/dx_i = q   for every node with x_i > 0,
    dC/dx_i >= q  for every node with x_i = 0

(in cost terms; the paper states the mirror image for utilities).  Because
each marginal cost ``MC_i(x) = C_i + k mu_i / (mu_i - lambda x)^2`` is
continuous and strictly increasing in ``x``, the optimum can be computed
*exactly* by one-dimensional bisection on ``q`` — node ``i``'s share at
multiplier ``q`` inverts ``MC_i(x) = q`` in closed form, and
``sum_i x_i(q)`` is monotone in ``q``.  This "water-filling" solution is
the library's ground truth: every optimizer in the repository is tested
against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError, ConvergenceError


@dataclass(frozen=True)
class KKTReport:
    """Result of checking an allocation against the KKT conditions."""

    satisfied: bool
    multiplier: float
    #: max over positive-share nodes of |MC_i - q|.
    interior_residual: float
    #: max over zero-share nodes of (q - MC_i), positive values violate.
    boundary_residual: float


def _marginal_cost_at(problem: FileAllocationProblem, i: int, x_i: float) -> float:
    """``MC_i(x_i)`` using only node-local state."""
    return -problem.node_marginal_utility(i, x_i)


def _share_at_multiplier(problem: FileAllocationProblem, i: int, q: float) -> float:
    """Invert ``MC_i(x) = q`` over ``[0, x_max)``; clamp to 0 below range.

    Monotonicity of ``MC_i`` makes bisection exact; we use it instead of
    the M/M/1 algebraic inverse so every delay model (M/G/1, overload
    approximations) is supported by the same code path.
    """
    if _marginal_cost_at(problem, i, 0.0) >= q:
        return 0.0
    model = problem.delay_models[i]
    hi_cap = getattr(model, "max_stable_arrival", np.inf) / problem.total_rate
    hi = min(1.0, hi_cap * (1.0 - 1e-12)) if np.isfinite(hi_cap) else 1.0
    if _marginal_cost_at(problem, i, hi) <= q:
        return hi
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _marginal_cost_at(problem, i, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-15:
            break
    return 0.5 * (lo + hi)


def optimal_allocation(
    problem: FileAllocationProblem, *, tol: float = 1e-12, max_bisections: int = 500
) -> np.ndarray:
    """The exact optimum by bisection on the KKT multiplier ``q``.

    Raises :class:`~repro.exceptions.ConvergenceError` if the multiplier
    bracket cannot be closed (cannot happen for stable M/M/1 instances).
    """
    n = problem.n
    # q must exceed every node's marginal cost at zero for that node to take
    # mass; bracket q between min MC(0) and a value where shares sum past 1.
    mc0 = np.array([_marginal_cost_at(problem, i, 0.0) for i in range(n)])
    q_lo = float(mc0.min())  # sum of shares == 0 here
    q_hi = q_lo + 1.0
    for _ in range(200):
        total = sum(_share_at_multiplier(problem, i, q_hi) for i in range(n))
        if total > 1.0:
            break
        q_hi = q_lo + (q_hi - q_lo) * 2.0
    else:  # pragma: no cover - unreachable for stable instances
        raise ConvergenceError("could not bracket the KKT multiplier")
    for _ in range(max_bisections):
        q = 0.5 * (q_lo + q_hi)
        total = sum(_share_at_multiplier(problem, i, q) for i in range(n))
        if total > 1.0:
            q_hi = q
        else:
            q_lo = q
        if q_hi - q_lo < tol:
            break
    q = 0.5 * (q_lo + q_hi)
    x = np.array([_share_at_multiplier(problem, i, q) for i in range(n)])
    total = x.sum()
    if total <= 0:  # pragma: no cover - degenerate
        raise ConvergenceError("bisection produced an empty allocation")
    # Distribute the (tiny) residual over positive shares to restore
    # sum == 1 exactly.
    positive = x > 0
    x[positive] += (1.0 - total) * x[positive] / x[positive].sum()
    return np.maximum(x, 0.0)


def optimal_cost(problem: FileAllocationProblem) -> float:
    """Cost of the exact optimum."""
    return problem.cost(optimal_allocation(problem))


def check_kkt(
    problem: FileAllocationProblem,
    allocation,
    *,
    tolerance: float = 1e-6,
    zero_share: float = 1e-9,
) -> KKTReport:
    """Check the §5.3 optimality conditions at ``allocation``.

    The multiplier is estimated as the mean marginal cost over
    positive-share nodes.
    """
    x = problem.check_feasible(allocation)
    mc = problem.cost_gradient(x)
    positive = x > zero_share
    if not np.any(positive):
        raise ConfigurationError("allocation has no positive shares")
    q = float(mc[positive].mean())
    interior = float(np.max(np.abs(mc[positive] - q)))
    if np.all(positive):
        boundary = 0.0
    else:
        boundary = float(np.max(q - mc[~positive]))
    return KKTReport(
        satisfied=bool(interior <= tolerance and boundary <= tolerance),
        multiplier=q,
        interior_residual=interior,
        boundary_residual=boundary,
    )
