"""The single-copy file allocation model (§4).

A network of ``N`` nodes shares one copy of a divisible file.  Node ``i``
holds the fraction ``x_i`` (``sum x = 1``); because record access is
uniform, ``x_i`` is also the probability an access lands on node ``i``.
Node ``j`` generates Poisson accesses at rate ``lambda_j``; the system-wide
rate is ``lambda = sum_j lambda_j``.  The expected cost of the allocation is

    C(x) = sum_i (C_i + k * T_i(lambda * x_i)) * x_i

where ``C_i = sum_j (lambda_j / lambda) c_ji`` is the traffic-weighted
communication cost of reaching node ``i``, and ``T_i`` is the expected
sojourn time of node ``i``'s access queue (M/M/1 in the paper:
``T_i = 1/(mu - lambda x_i)``).  The utility is ``U = -C``.

:class:`FileAllocationProblem` evaluates ``C``, its gradient and its
(diagonal) Hessian for any delay model from :mod:`repro.queueing`, with
optional per-node service rates (§5.4 notes both generalizations are
direct).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    InfeasibleAllocationError,
    StabilityError,
)
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.network.topology import Topology
from repro.queueing.mm1 import MM1Delay
from repro.utils.validation import check_positive, check_square_matrix

DelayModelLike = object  # duck-typed: sojourn_time / d_sojourn / d2_sojourn / mu


class FileAllocationProblem:
    """One divisible file over ``N`` nodes: costs, gradients, Hessians.

    Parameters
    ----------
    cost_matrix:
        ``c[j, i]`` = communication cost of node ``j`` making one access to
        node ``i`` (request plus response); the diagonal must be zero.
        For a routed network, build with :meth:`from_topology`.
    access_rates:
        Per-node Poisson access generation rates ``lambda_i`` (>= 0, with a
        positive total).
    k:
        The §4 scaling factor trading delay against communication cost.
    mu:
        Service rate — a scalar (the paper's homogeneous case) or one value
        per node.  Ignored when ``delay_models`` is given.
    delay_models:
        Optional explicit per-node delay models (any objects exposing
        ``sojourn_time`` / ``d_sojourn`` / ``d2_sojourn`` and
        ``max_stable_arrival``); defaults to :class:`MM1Delay` at ``mu``.
    name:
        Optional label used in experiment reports.
    """

    def __init__(
        self,
        cost_matrix: Sequence[Sequence[float]],
        access_rates: Sequence[float],
        *,
        k: float = 1.0,
        mu: Union[float, Sequence[float], None] = None,
        delay_models: Optional[Sequence[DelayModelLike]] = None,
        name: str = "",
    ):
        rates = np.asarray(access_rates, dtype=float)
        if rates.ndim != 1 or rates.size < 2:
            raise ConfigurationError("need access rates for at least two nodes")
        if np.any(rates < 0) or not np.all(np.isfinite(rates)):
            raise ConfigurationError("access rates must be finite and non-negative")
        n = rates.size
        costs = check_square_matrix(cost_matrix, "cost_matrix", size=n)
        if np.any(np.diag(costs) != 0):
            raise ConfigurationError("cost_matrix diagonal (local access) must be zero")
        if np.any(costs < 0):
            raise ConfigurationError("communication costs must be non-negative")

        self.n = n
        self.name = name or f"fap-{n}"
        self.access_rates = rates
        self.total_rate = float(rates.sum())
        if self.total_rate <= 0:
            raise ConfigurationError("total access rate must be positive")
        self.k = check_positive(k, "k")
        self.cost_matrix = costs
        #: C_i = sum_j (lambda_j / lambda) c_ji  (traffic-weighted access cost).
        self.access_cost = (rates / self.total_rate) @ costs

        if delay_models is not None:
            models = list(delay_models)
            if len(models) != n:
                raise ConfigurationError(
                    f"need {n} delay models, got {len(models)}"
                )
        else:
            if mu is None:
                raise ConfigurationError("provide either mu or delay_models")
            mus = np.broadcast_to(np.asarray(mu, dtype=float), (n,)).copy()
            for i, m in enumerate(mus):
                check_positive(float(m), f"mu[{i}]")
            models = [MM1Delay(float(m)) for m in mus]
        self.delay_models: List[DelayModelLike] = models
        # Vectorized fast route: when every node runs the plain analytic
        # M/M/1 model (homogeneous or per-node mu), `evaluate` computes
        # T = 1/(mu - a) and its derivatives as closed-form array
        # expressions instead of N Python method calls per pass.  Exotic
        # or subclassed delay models fall back to the object loop.
        if all(type(m) is MM1Delay for m in models):
            self._mm1_mu: Optional[np.ndarray] = np.array(
                [m.mu for m in models], dtype=float
            )
        else:
            self._mm1_mu = None

        # The paper assumes mu > lambda so the whole file can sit anywhere
        # with finite delay.  With an overload-capable model (infinite
        # max_stable_arrival) the restriction is unnecessary.
        for i, model in enumerate(models):
            if self.total_rate >= getattr(model, "max_stable_arrival", np.inf):
                raise ConfigurationError(
                    f"node {i}: total access rate {self.total_rate:g} >= service "
                    f"rate {getattr(model, 'mu', float('nan')):g}; the model requires "
                    "mu > lambda (or use an overload approximation delay model)"
                )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        access_rates: Sequence[float],
        *,
        k: float = 1.0,
        mu: Union[float, Sequence[float], None] = None,
        delay_models: Optional[Sequence[DelayModelLike]] = None,
        name: str = "",
    ) -> "FileAllocationProblem":
        """Build the model with ``c_ij`` = least-cost routed path costs (§6)."""
        problem = cls(
            all_pairs_shortest_paths(topology),
            access_rates,
            k=k,
            mu=mu,
            delay_models=delay_models,
            name=name or topology.name,
        )
        problem.topology = topology
        return problem

    @classmethod
    def paper_network(
        cls,
        *,
        mu: float = 1.5,
        k: float = 1.0,
        total_rate: float = 1.0,
        n: int = 4,
    ) -> "FileAllocationProblem":
        """The §6 experimental setup: an ``n``-node unit-cost ring with equal
        per-node access rates summing to ``total_rate``, mu = 1.5, k = 1."""
        from repro.network.builders import ring_graph

        rates = np.full(n, total_rate / n)
        return cls.from_topology(
            ring_graph(n), rates, k=k, mu=mu, name=f"paper-ring-{n}"
        )

    #: The topology this problem was derived from (None when built from a
    #: raw cost matrix); the distributed runtime uses it for hop-by-hop
    #: message routing.
    topology: Optional[Topology] = None

    # -- feasibility -----------------------------------------------------------

    def check_feasible(self, x: Sequence[float], *, atol: float = 1e-8) -> np.ndarray:
        """Validate ``sum x == 1`` and ``x >= 0``; returns the vector."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.n,):
            raise InfeasibleAllocationError(
                f"allocation has shape {arr.shape}, expected ({self.n},)"
            )
        if np.any(arr < -atol):
            raise InfeasibleAllocationError(f"negative allocation entries: min={arr.min()}")
        if abs(arr.sum() - 1.0) > atol:
            raise InfeasibleAllocationError(
                f"allocation sums to {arr.sum()!r}, expected 1"
            )
        return arr

    # -- evaluation -------------------------------------------------------------

    def node_arrival_rates(self, x: Sequence[float]) -> np.ndarray:
        """``lambda * x_i`` — the access traffic hitting each node."""
        return self.total_rate * np.asarray(x, dtype=float)

    def delays(self, x: Sequence[float]) -> np.ndarray:
        """Expected sojourn time ``T_i`` at each node under allocation ``x``."""
        arrivals = self.node_arrival_rates(x)
        return np.array(
            [m.sojourn_time(float(a)) for m, a in zip(self.delay_models, arrivals)]
        )

    def cost(self, x: Sequence[float]) -> float:
        """System-wide expected access cost ``C(x)`` (eq. 1)."""
        arr = np.asarray(x, dtype=float)
        return float(np.sum((self.access_cost + self.k * self.delays(arr)) * arr))

    def utility(self, x: Sequence[float]) -> float:
        """``U(x) = -C(x)`` (eq. 2)."""
        return -self.cost(x)

    def cost_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``dC/dx_i = C_i + k (T_i + x_i lambda T_i')``.

        For M/M/1 this is the paper's ``C_i + k mu / (mu - lambda x_i)^2``.
        """
        arr = np.asarray(x, dtype=float)
        arrivals = self.total_rate * arr
        t = np.array([m.sojourn_time(float(a)) for m, a in zip(self.delay_models, arrivals)])
        dt = np.array([m.d_sojourn(float(a)) for m, a in zip(self.delay_models, arrivals)])
        return self.access_cost + self.k * (t + arr * self.total_rate * dt)

    def utility_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``dU/dx = -dC/dx`` — the marginal utilities the nodes exchange."""
        return -self.cost_gradient(x)

    def cost_hessian_diag(self, x: Sequence[float]) -> np.ndarray:
        """``d2C/dx_i^2 = k (2 lambda T_i' + x_i lambda^2 T_i'')``.

        Cross-partials are identically zero (each term of ``C`` depends on
        a single ``x_i``), the fact Theorems 2-3 rely on.  For M/M/1 this
        is ``2 k lambda mu / (mu - lambda x_i)^3 >= 0`` — the cost is convex
        on the feasible set.
        """
        arr = np.asarray(x, dtype=float)
        arrivals = self.total_rate * arr
        dt = np.array([m.d_sojourn(float(a)) for m, a in zip(self.delay_models, arrivals)])
        d2t = np.array([m.d2_sojourn(float(a)) for m, a in zip(self.delay_models, arrivals)])
        lam = self.total_rate
        return self.k * (2.0 * lam * dt + arr * lam * lam * d2t)

    # -- fused evaluation (the serial solver hot path) ---------------------------

    @property
    def has_vectorized_evaluate(self) -> bool:
        """Whether :meth:`evaluate` runs the closed-form M/M/1 array route
        (every node is a plain :class:`~repro.queueing.mm1.MM1Delay`)."""
        return self._mm1_mu is not None

    def evaluate(self, x: Sequence[float], *, need_hessian: bool = False):
        """Fused one-pass evaluation: ``(cost, cost_gradient[, hessian_diag])``.

        Computes everything :meth:`cost`, :meth:`cost_gradient` (and, with
        ``need_hessian=True``, :meth:`cost_hessian_diag`) would return, but
        in a single pass sharing the ``1/(mu - lambda x)`` reciprocals —
        the per-iteration hot path of the solvers.  On the vectorized
        M/M/1 route there are no per-node Python calls at all; other delay
        models use one object loop instead of the two or three the separate
        methods would make.

        Every returned value is **bit-for-bit identical** to the separate
        methods' results (the parity the fast solver engine and the §8.2
        second-order allocator rely on).
        """
        arr = np.asarray(x, dtype=float)
        if self._mm1_mu is not None:
            return self._evaluate_mm1(arr, need_hessian)
        arrivals = self.total_rate * arr
        models = self.delay_models
        t = np.array([m.sojourn_time(float(a)) for m, a in zip(models, arrivals)])
        dt = np.array([m.d_sojourn(float(a)) for m, a in zip(models, arrivals)])
        cost = float(np.sum((self.access_cost + self.k * t) * arr))
        gradient = self.access_cost + self.k * (t + arr * self.total_rate * dt)
        if not need_hessian:
            return cost, gradient
        d2t = np.array([m.d2_sojourn(float(a)) for m, a in zip(models, arrivals)])
        lam = self.total_rate
        hessian = self.k * (2.0 * lam * dt + arr * lam * lam * d2t)
        return cost, gradient, hessian

    def _evaluate_mm1(self, arr: np.ndarray, need_hessian: bool):
        """Closed-form array evaluation for plain M/M/1 nodes.

        Derivative powers are spelled as explicit products so every element
        matches the scalar :class:`~repro.queueing.mm1.MM1Delay` bits (see
        its :meth:`~repro.queueing.mm1.MM1Delay.d_sojourn` note)."""
        arrivals = self.total_rate * arr
        if not np.all(np.isfinite(arrivals)):
            raise StabilityError("arrival rates must be finite")
        gap = self._mm1_mu - arrivals
        if np.any(gap <= 0):
            i = int(np.argmax(gap <= 0))
            raise StabilityError(
                f"M/M/1 unstable: arrival rate {arrivals[i]:g} >= "
                f"service rate {self._mm1_mu[i]:g}"
            )
        t = 1.0 / gap
        dt = 1.0 / (gap * gap)
        cost = float(np.sum((self.access_cost + self.k * t) * arr))
        gradient = self.access_cost + self.k * (t + arr * self.total_rate * dt)
        if not need_hessian:
            return cost, gradient
        lam = self.total_rate
        d2t = 2.0 / (gap * gap * gap)
        hessian = self.k * (2.0 * lam * dt + arr * lam * lam * d2t)
        return cost, gradient, hessian

    # -- batched view (lockstep evaluation over many instances) ------------------

    def mm1_service_rates(self) -> np.ndarray:
        """Per-node service rates when every delay model is the plain
        analytic :class:`~repro.queueing.mm1.MM1Delay` — the contract the
        batched ``(B, N)`` kernel in :mod:`repro.parallel` relies on.

        The batched path evaluates ``T = 1/(mu - a)`` and its derivatives
        as closed-form array expressions, so it is only exact for the
        unmodified M/M/1 model; any other (or subclassed) delay model must
        go through the serial per-model dispatch.  Raises
        :class:`~repro.exceptions.ConfigurationError` otherwise.
        """
        for i, model in enumerate(self.delay_models):
            if type(model) is not MM1Delay:
                raise ConfigurationError(
                    f"node {i} uses {type(model).__name__}; batched evaluation "
                    "requires plain MM1Delay at every node (use the serial "
                    "DecentralizedAllocator for other delay models)"
                )
        return np.array([m.mu for m in self.delay_models], dtype=float)

    # -- per-node view (what a *node* can compute locally) ----------------------

    def node_marginal_utility(self, node: int, x_i: float) -> float:
        """Marginal utility as node ``node`` computes it from purely local
        state (its ``C_i``, ``k``, ``lambda`` and its own ``x_i``) — the
        algorithm's informational decentralization in one method."""
        model = self.delay_models[node]
        a = self.total_rate * float(x_i)
        t = model.sojourn_time(a)
        dt = model.d_sojourn(a)
        return -(self.access_cost[node] + self.k * (t + float(x_i) * self.total_rate * dt))

    def __repr__(self) -> str:
        return (
            f"FileAllocationProblem(name={self.name!r}, n={self.n}, "
            f"lambda={self.total_rate:g}, k={self.k:g})"
        )
