"""Multiple distinct files (§5.4).

With ``M`` files, ``x[f, i]`` is the fraction of file ``f`` held at node
``i`` (each file sums to one copy), ``lambda^f`` is file ``f``'s network
access rate, and the cost couples the files through queueing contention at
shared nodes:

    C = sum_i [ sum_f C_i^f x[f,i]  +  k * T_i(a_i) * s_i ],
    a_i = sum_f lambda^f x[f,i]   (total access traffic hitting node i),
    s_i = sum_f x[f,i]            (total file mass at node i)

— the paper's extended utility, which "includes the effects of simultaneous
accesses to different files stored at the same location, a real-world
resource contention phenomenon typically not considered in most FAP
formulations".

The algorithm runs the §5.2 update *per file* (each file's deviations from
its own average sum to zero, so per-file feasibility is an invariant).
Unlike the single-file case the objective is not jointly convex in the full
``(M, N)`` variable (the contention term ``s_i T(a_i)`` has an indefinite
Hessian block), and simultaneous cross-file steps are not covered by
Theorem 2; :class:`MultiFileAllocator` therefore carries an optional
cost-decrease safeguard (on by default) that halves the step when a joint
move would increase the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.active_set import ScaledStep
from repro.exceptions import ConfigurationError, ConvergenceError, InfeasibleAllocationError
from repro.obs.registry import MetricsRegistry, maybe_timer
from repro.queueing.mm1 import MM1Delay
from repro.utils.numeric import spread
from repro.utils.validation import check_positive, check_square_matrix


class MultiFileProblem:
    """``M`` files over ``N`` nodes with shared queueing contention.

    Parameters
    ----------
    cost_matrix:
        ``c[j, i]`` pairwise access costs, shared by all files.
    access_rates:
        ``(M, N)`` array; ``access_rates[f, j]`` is node ``j``'s Poisson
        access rate to file ``f``.
    k:
        Delay/communication trade-off factor.
    mu:
        Scalar or per-node service rates (each node serves accesses to
        every file it holds from one queue — that is the contention).
    delay_models:
        Optional explicit per-node delay models, as in the single-file model.
    """

    def __init__(
        self,
        cost_matrix: Sequence[Sequence[float]],
        access_rates: Sequence[Sequence[float]],
        *,
        k: float = 1.0,
        mu: Union[float, Sequence[float], None] = None,
        delay_models: Optional[Sequence[object]] = None,
        name: str = "",
    ):
        rates = np.asarray(access_rates, dtype=float)
        if rates.ndim != 2 or rates.shape[0] < 1 or rates.shape[1] < 2:
            raise ConfigurationError(
                f"access_rates must be (M >= 1, N >= 2), got shape {rates.shape}"
            )
        if np.any(rates < 0) or not np.all(np.isfinite(rates)):
            raise ConfigurationError("access rates must be finite and non-negative")
        self.m, self.n = rates.shape
        self.name = name or f"multifap-{self.m}x{self.n}"
        costs = check_square_matrix(cost_matrix, "cost_matrix", size=self.n)
        if np.any(np.diag(costs) != 0) or np.any(costs < 0):
            raise ConfigurationError(
                "cost_matrix needs a zero diagonal and non-negative entries"
            )
        self.cost_matrix = costs
        self.access_rates = rates
        #: lambda^f — network-wide access rate per file.
        self.file_rates = rates.sum(axis=1)
        if np.any(self.file_rates <= 0):
            raise ConfigurationError("every file needs a positive total access rate")
        self.k = check_positive(k, "k")
        #: C^f_i = sum_j (rates[f, j] / lambda^f) c_ji — per-file weighted
        #: access cost of reaching node i.
        self.access_cost = (rates / self.file_rates[:, None]) @ costs

        if delay_models is not None:
            models = list(delay_models)
            if len(models) != self.n:
                raise ConfigurationError(f"need {self.n} delay models, got {len(models)}")
        else:
            if mu is None:
                raise ConfigurationError("provide either mu or delay_models")
            mus = np.broadcast_to(np.asarray(mu, dtype=float), (self.n,)).copy()
            for i, m_i in enumerate(mus):
                check_positive(float(m_i), f"mu[{i}]")
            models = [MM1Delay(float(m_i)) for m_i in mus]
        self.delay_models: List[object] = models

    # -- feasibility -----------------------------------------------------------

    def check_feasible(self, x, *, atol: float = 1e-8) -> np.ndarray:
        """Each file's shares are non-negative and sum to one."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.m, self.n):
            raise InfeasibleAllocationError(
                f"allocation has shape {arr.shape}, expected ({self.m}, {self.n})"
            )
        if np.any(arr < -atol):
            raise InfeasibleAllocationError(f"negative shares: min={arr.min()}")
        sums = arr.sum(axis=1)
        if np.any(np.abs(sums - 1.0) > atol):
            raise InfeasibleAllocationError(f"per-file sums are {sums}, expected all 1")
        return arr

    # -- evaluation --------------------------------------------------------------

    def node_arrivals(self, x) -> np.ndarray:
        """``a_i = sum_f lambda^f x[f, i]``."""
        arr = np.asarray(x, dtype=float)
        return self.file_rates @ arr

    def cost(self, x) -> float:
        arr = np.asarray(x, dtype=float)
        a = self.node_arrivals(arr)
        s = arr.sum(axis=0)
        t = np.array([m.sojourn_time(float(ai)) for m, ai in zip(self.delay_models, a)])
        comm = float(np.sum(self.access_cost * arr))
        return comm + self.k * float(np.sum(t * s))

    def utility(self, x) -> float:
        return -self.cost(x)

    def cost_gradient(self, x) -> np.ndarray:
        """``dC/dx[f, i] = C^f_i + k (T(a_i) + lambda^f T'(a_i) s_i)``."""
        arr = np.asarray(x, dtype=float)
        a = self.node_arrivals(arr)
        s = arr.sum(axis=0)
        t = np.array([m.sojourn_time(float(ai)) for m, ai in zip(self.delay_models, a)])
        dt = np.array([m.d_sojourn(float(ai)) for m, ai in zip(self.delay_models, a)])
        return self.access_cost + self.k * (
            t[None, :] + self.file_rates[:, None] * dt[None, :] * s[None, :]
        )

    def utility_gradient(self, x) -> np.ndarray:
        return -self.cost_gradient(x)

    def single_file_view(self, f: int) -> "MultiFileProblem":
        """A one-file sub-problem for file ``f`` (no contention coupling) —
        useful for sanity checks against the single-file model."""
        if not 0 <= f < self.m:
            raise ConfigurationError(f"file index {f} out of range")
        return MultiFileProblem(
            self.cost_matrix,
            self.access_rates[f : f + 1],
            k=self.k,
            delay_models=self.delay_models,
            name=f"{self.name}[file {f}]",
        )

    def __repr__(self) -> str:
        return f"MultiFileProblem(name={self.name!r}, files={self.m}, nodes={self.n})"


@dataclass
class MultiFileResult:
    """Outcome of a multi-file allocation run."""

    allocation: np.ndarray
    cost: float
    iterations: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    spread_history: List[float] = field(default_factory=list)


class MultiFileAllocator:
    """Per-file §5.2 updates with a joint cost-decrease safeguard.

    Parameters
    ----------
    problem:
        The :class:`MultiFileProblem`.
    alpha:
        Fixed stepsize applied to every file's update.
    epsilon:
        Stop when every file's marginal-utility spread falls below this.
    safeguard:
        When True (default), a joint step that would *increase* the cost is
        halved (up to ``max_halvings`` times) before being applied —
        restoring in practice the monotonicity that Theorem 2 only
        guarantees file-by-file.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        attached the run tallies iterations, safeguard α-halvings, and
        per-file spread progress.  Observational only.
    """

    def __init__(
        self,
        problem: MultiFileProblem,
        *,
        alpha: float = 0.1,
        epsilon: float = 1e-3,
        safeguard: bool = True,
        max_halvings: int = 30,
        max_iterations: int = 100_000,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.problem = problem
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.safeguard = safeguard
        self.max_halvings = int(max_halvings)
        self.max_iterations = int(max_iterations)
        self.registry = registry
        self._policy = ScaledStep()

    def _raw_step(self, x: np.ndarray, alpha: float) -> np.ndarray:
        g = self.problem.utility_gradient(x)
        dx = np.zeros_like(x)
        for f in range(self.problem.m):
            dx[f], _ = self._policy.apply(x[f], g[f], alpha)
        return dx

    def spreads(self, x: np.ndarray) -> np.ndarray:
        """Per-file marginal-utility spread over each file's *active set*.

        As in the single-file algorithm, the convergence statistic ignores
        boundary nodes pinned at zero whose marginal utility is below the
        active average — KKT allows them to stay worse (§5.3).
        """
        g = self.problem.utility_gradient(x)
        out = np.empty(self.problem.m)
        for f in range(self.problem.m):
            _, mask = self._policy.apply(x[f], g[f], self.alpha)
            out[f] = spread(g[f][mask])
        return out

    def run(
        self,
        initial_allocation,
        *,
        raise_on_failure: bool = False,
    ) -> MultiFileResult:
        """Iterate from a feasible ``(M, N)`` start until every file's
        marginals agree within epsilon."""
        x = self.problem.check_feasible(initial_allocation).copy()
        reg = self.registry
        cost = self.problem.cost(x)
        cost_history = [cost]
        spread_history = [float(self.spreads(x).max())]
        iteration = 0
        with maybe_timer(reg, "multifile.run_seconds"):
            while spread_history[-1] >= self.epsilon and iteration < self.max_iterations:
                iteration += 1
                alpha = self.alpha
                dx = self._raw_step(x, alpha)
                if self.safeguard:
                    for _ in range(self.max_halvings):
                        trial_cost = self.problem.cost(np.maximum(x + dx, 0.0))
                        if trial_cost <= cost:
                            break
                        alpha *= 0.5
                        dx = self._raw_step(x, alpha)
                        if reg is not None:
                            reg.counter_inc("multifile.alpha_halvings")
                x = np.maximum(x + dx, 0.0)
                cost = self.problem.cost(x)
                cost_history.append(cost)
                spread_history.append(float(self.spreads(x).max()))
                if reg is not None:
                    reg.counter_inc("multifile.iterations")
                    reg.observe("multifile.alpha", alpha)
                    reg.event(
                        "multifile_iteration",
                        i=iteration,
                        cost=cost,
                        spread=spread_history[-1],
                        alpha=alpha,
                    )
        converged = spread_history[-1] < self.epsilon
        if reg is not None:
            reg.gauge_set("multifile.final_cost", cost)
            reg.gauge_set("multifile.converged", float(converged))
            reg.gauge_set("multifile.files", self.problem.m)
            per_file = self.spreads(x)
            for f in range(self.problem.m):
                reg.gauge_set(f"multifile.spread.file_{f}", float(per_file[f]))
        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"multi-file allocator: no convergence in {self.max_iterations} iterations",
                iterations=iteration,
            )
        return MultiFileResult(
            allocation=x,
            cost=cost,
            iterations=iteration,
            converged=converged,
            cost_history=cost_history,
            spread_history=spread_history,
        )

    def __repr__(self) -> str:
        return f"MultiFileAllocator(problem={self.problem.name!r}, alpha={self.alpha:g})"
