"""Neighbours-only reallocation (§8.2 future work).

The paper: "To reduce the amount of message sending at each iteration we
wish to look at restrictions in communication where nodes communicate only
with their neighbours ... It would be extremely beneficial to find
algorithms based on marginal utility that maintain the attractive
properties of feasibility, monotonicity and rapid convergence and yet
execute with a 'neighbours-only' restriction on communication."

Such an algorithm exists, and it is a natural generalization of Heal's
rule.  Put a positive weight ``w_ij`` on every network edge and exchange
mass *pairwise* along edges in proportion to the marginal-utility gap:

    dx_i = alpha * sum_{j ~ i} w_ij (dU/dx_i - dU/dx_j)
         = alpha * (L g)_i,          L = weighted graph Laplacian.

Properties (proved the same way as Theorems 1-2, and property-tested):

* **feasibility** — every edge's transfer is antisymmetric, so
  ``sum_i dx_i = 1^T L g = 0`` exactly;
* **monotonicity** — the first-order utility change is
  ``alpha * g^T L g >= 0`` because the Laplacian is positive
  semidefinite, with equality iff ``g`` is constant on each connected
  component — i.e. exactly at the §5.3 optimality condition (for a
  connected network);
* **Heal's rule is the special case** of the complete graph with uniform
  weights ``1/n``: then ``(L g)_i = g_i - mean(g)``, the §5.2 step.

Each iteration costs only one message per directed edge (``2 |E|``),
versus ``N (N - 1)`` for the §5.1 broadcast — the trade being more
iterations, since information now diffuses hop by hop.  The ablation bench
``bench_neighbor.py`` quantifies both sides.

**Known limitation (documented, demonstrated in the tests).**  The
fixed points of pairwise exchange satisfy only an *edge-wise* optimality
condition: along every edge, either the marginals agree or the donor side
is pinned at zero.  When a zero-share node whose marginal is locally worst
separates two positive-share regions, mass would have to flow "downhill
then uphill" through it, which gradient exchange never does — the run
stalls at a local edge-equilibrium strictly worse than the global optimum
(see ``test_core_neighbor.py::test_zero_separator_can_stall_edge_exchange``).
:class:`GossipAverageAllocator` is the companion §8.2 variant without this
failure mode: marginal *information* still travels neighbours-only (by
average-consensus gossip), while the reallocation uses the §5.2 global
rule, so its trajectory matches the broadcast algorithm exactly at the
price of several gossip rounds per iteration.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.algorithm import AllocationResult
from repro.core.initials import uniform_allocation
from repro.core.model import FileAllocationProblem
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.network.topology import Topology
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


def graph_laplacian(topology: Topology, *, weight: str = "uniform") -> np.ndarray:
    """The weighted Laplacian ``L = D - W`` of a topology.

    ``weight="uniform"`` puts 1 on every edge; ``weight="inverse-cost"``
    puts ``1 / c_ij`` (cheap links carry more exchange).  Rows sum to zero.
    """
    n = topology.n
    w = np.zeros((n, n))
    for u, v, cost in topology.edges():
        if weight == "uniform":
            w_uv = 1.0
        elif weight == "inverse-cost":
            w_uv = 1.0 / cost
        else:
            raise ConfigurationError(
                f"unknown weight scheme {weight!r}; use 'uniform' or 'inverse-cost'"
            )
        w[u, v] = w_uv
        w[v, u] = w_uv
    return np.diag(w.sum(axis=1)) - w


class NeighborOnlyAllocator:
    """Pairwise marginal-utility exchange along network edges.

    Parameters
    ----------
    problem:
        The FAP instance.
    topology:
        Communication graph; defaults to the problem's own topology.  Must
        be connected for convergence to the global optimum.
    alpha:
        Stepsize.  A safe default upper range is ``1 / (2 lambda_max(L))``
        scaled by the cost curvature; in practice moderate values behave
        like the §5.2 rule (the bench sweeps this).
    weight:
        Edge weighting scheme for the Laplacian.
    epsilon:
        Stop when the marginal utilities agree within ``epsilon`` over the
        movable set (same criterion as §5.2; on a connected graph the
        fixed points coincide).
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        topology: Optional[Topology] = None,
        alpha: float = 0.1,
        weight: str = "uniform",
        epsilon: float = 1e-3,
        max_iterations: int = 200_000,
    ):
        self.problem = problem
        topo = topology or problem.topology
        if topo is None:
            raise ConfigurationError(
                "neighbours-only allocation needs a topology (build the problem "
                "with from_topology or pass topology=...)"
            )
        if topo.n != problem.n:
            raise ConfigurationError(
                f"topology has {topo.n} nodes, problem has {problem.n}"
            )
        if not topo.is_connected():
            raise ConfigurationError(
                "neighbours-only exchange needs a connected communication graph"
            )
        self.topology = topo
        self.laplacian = graph_laplacian(topo, weight=weight)
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.max_iterations = int(max_iterations)
        #: Directed messages per iteration: each node sends its marginal to
        #: every neighbour once (the paper's desired communication bill).
        self.messages_per_iteration = 2 * topo.edge_count()

    # -- one step ---------------------------------------------------------

    def step(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One Laplacian exchange step; returns ``(new_x, active_mask)``.

        Boundary handling mirrors ``scaled-step``: nodes at zero whose
        exchange is outbound are frozen (their Laplacian row/column is
        dropped, preserving antisymmetry of the remaining transfers), then
        the step is uniformly shrunk so no share goes negative.
        """
        mask = np.ones(x.size, dtype=bool)
        g = self.problem.utility_gradient(x)
        for _ in range(x.size):
            lap = self.laplacian[np.ix_(mask, mask)].copy()
            # Re-diagonalize after dropping frozen nodes: rows must still
            # sum to zero over the surviving set.
            np.fill_diagonal(lap, 0.0)
            np.fill_diagonal(lap, -lap.sum(axis=1))
            dx = np.zeros_like(x)
            dx[mask] = self.alpha * (lap @ g[mask])
            pinned = mask & (x <= 1e-12) & (dx < 0)
            if not np.any(pinned):
                break
            mask &= ~pinned
        if np.any(x + dx < 0):
            shrinking = dx < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
            dx = dx * float(min(1.0, np.min(factors)))
        return np.maximum(x + dx, 0.0), mask

    # -- full run --------------------------------------------------------------

    def run(
        self,
        initial_allocation: Optional[Sequence[float]] = None,
        *,
        raise_on_failure: bool = False,
    ) -> AllocationResult:
        """Iterate to agreement of marginals over the movable set."""
        if initial_allocation is None:
            x = uniform_allocation(self.problem.n)
        else:
            x = self.problem.check_feasible(initial_allocation).copy()

        trace = Trace()
        mask = np.ones(self.problem.n, dtype=bool)

        def record(iteration: int) -> float:
            cost = self.problem.cost(x)
            g = self.problem.utility_gradient(x)
            trace.append(
                IterationRecord(
                    iteration=iteration,
                    allocation=x.copy(),
                    cost=cost,
                    utility=-cost,
                    gradient_spread=spread(g[mask]),
                    alpha=self.alpha if iteration else float("nan"),
                    active_count=int(mask.sum()),
                )
            )
            return cost

        cost = record(0)
        converged = trace[0].gradient_spread < self.epsilon
        iteration = 0
        while not converged and iteration < self.max_iterations:
            iteration += 1
            previous = x
            x, mask = self.step(x)
            cost = record(iteration)
            converged = trace[-1].gradient_spread < self.epsilon
            if not converged and np.max(np.abs(x - previous)) < 1e-15:
                # Stalled at a local edge-equilibrium (see the module
                # docstring): no exchange can move, yet marginals differ.
                break

        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"neighbours-only allocator: no convergence in "
                f"{self.max_iterations} iterations",
                iterations=iteration,
            )
        return AllocationResult(
            allocation=x,
            cost=cost,
            utility=-cost,
            iterations=iteration,
            converged=converged,
            trace=trace,
        )

    def total_messages(self, iterations: int) -> int:
        """Message bill for a run of ``iterations`` rounds."""
        return self.messages_per_iteration * iterations

    def __repr__(self) -> str:
        return (
            f"NeighborOnlyAllocator(problem={self.problem.name!r}, "
            f"topology={self.topology.name!r}, alpha={self.alpha:g})"
        )


def metropolis_weights(topology: Topology) -> np.ndarray:
    """The Metropolis–Hastings gossip matrix of a topology.

    ``W[i, j] = 1 / (1 + max(deg_i, deg_j))`` on edges, diagonal filled to
    make rows sum to one.  Symmetric and doubly stochastic, so repeated
    application converges to the average on any connected graph while
    *exactly* preserving the sum — the property that keeps the allocation
    feasible when gossip estimates replace the true average.
    """
    n = topology.n
    w = np.zeros((n, n))
    degrees = [topology.degree(u) for u in range(n)]
    for u, v, _ in topology.edges():
        w_uv = 1.0 / (1.0 + max(degrees[u], degrees[v]))
        w[u, v] = w_uv
        w[v, u] = w_uv
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


class GossipAverageAllocator:
    """§5.2 reallocation with the average computed by neighbours-only gossip.

    Instead of broadcasting marginals (or reporting to a central agent),
    each iteration runs ``R`` rounds of average-consensus gossip with the
    Metropolis matrix ``W``: every node repeatedly replaces its estimate by
    a weighted average of its neighbours'.  After enough rounds every node
    holds the global average marginal to within ``gossip_tol``, applies the
    §5.2 step, and the iteration proceeds exactly as in
    :class:`~repro.core.algorithm.DecentralizedAllocator` — the *allocation
    trajectory is identical*; what changes is the communication pattern and
    its price, which this class accounts per iteration.

    Feasibility under inexact consensus: because ``W`` is doubly
    stochastic, the *sum* of the estimates equals the sum of the true
    marginals at every round, so the step's total mass change is exactly
    zero even before consensus is reached (the residual only perturbs the
    step's direction, vanishing at rate ``lambda_2(W)^R``).  We run gossip
    until the estimates agree to ``gossip_tol`` and record the rounds.

    Parameters
    ----------
    problem, topology, alpha, epsilon, max_iterations:
        As for :class:`NeighborOnlyAllocator`.
    gossip_tol:
        Consensus accuracy per iteration: gossip rounds continue until
        ``max_i |z_i - avg|`` falls below this.
    max_gossip_rounds:
        Safety bound on rounds per iteration.
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        topology: Optional[Topology] = None,
        alpha: float = 0.1,
        epsilon: float = 1e-3,
        gossip_tol: float = 1e-8,
        max_gossip_rounds: int = 10_000,
        max_iterations: int = 100_000,
    ):
        self.problem = problem
        topo = topology or problem.topology
        if topo is None:
            raise ConfigurationError(
                "gossip allocation needs a topology (build the problem with "
                "from_topology or pass topology=...)"
            )
        if topo.n != problem.n:
            raise ConfigurationError(
                f"topology has {topo.n} nodes, problem has {problem.n}"
            )
        if not topo.is_connected():
            raise ConfigurationError("gossip needs a connected communication graph")
        self.topology = topo
        self.weights = metropolis_weights(topo)
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.gossip_tol = check_positive(gossip_tol, "gossip_tol")
        self.max_gossip_rounds = int(max_gossip_rounds)
        self.max_iterations = int(max_iterations)
        self._edges2 = 2 * topo.edge_count()
        #: Gossip rounds used by each completed iteration.
        self.gossip_rounds_per_iteration: list[int] = []

    def gossip_average(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Run consensus until agreement within ``gossip_tol``.

        Returns ``(estimates, rounds)``; estimates are each node's view of
        the average (their sum always equals ``values.sum()`` exactly).
        """
        z = np.asarray(values, dtype=float).copy()
        target = z.mean()
        rounds = 0
        while np.max(np.abs(z - target)) > self.gossip_tol:
            if rounds >= self.max_gossip_rounds:
                raise ConvergenceError(
                    f"gossip did not reach tolerance {self.gossip_tol:g} in "
                    f"{self.max_gossip_rounds} rounds",
                    iterations=rounds,
                )
            z = self.weights @ z
            rounds += 1
        return z, rounds

    def run(
        self,
        initial_allocation: Optional[Sequence[float]] = None,
        *,
        raise_on_failure: bool = False,
    ) -> AllocationResult:
        """Iterate to convergence, accounting gossip rounds per iteration.

        The allocation trajectory equals the broadcast algorithm's (at
        ``gossip_tol -> 0`` they coincide; at the default 1e-8 they agree
        to round-off), so the interesting outputs are the message
        statistics: :attr:`gossip_rounds_per_iteration` and
        :meth:`total_messages`.
        """
        from repro.core.algorithm import DecentralizedAllocator

        self.gossip_rounds_per_iteration = []
        engine = DecentralizedAllocator(
            self.problem,
            alpha=self.alpha,
            epsilon=self.epsilon,
            max_iterations=self.max_iterations,
        )
        result = engine.run(initial_allocation, raise_on_failure=raise_on_failure)
        # Account the gossip bill for every iteration the engine took: one
        # consensus on the marginal vector per round, from the recorded
        # trace states.
        for record in result.trace.records[:-1]:
            g = self.problem.utility_gradient(record.allocation)
            _, rounds = self.gossip_average(g)
            self.gossip_rounds_per_iteration.append(rounds)
        return result

    def total_messages(self) -> int:
        """Messages of the last run: gossip rounds x 2|E| each iteration."""
        return int(sum(self.gossip_rounds_per_iteration) * self._edges2)

    def __repr__(self) -> str:
        return (
            f"GossipAverageAllocator(problem={self.problem.name!r}, "
            f"topology={self.topology.name!r}, alpha={self.alpha:g})"
        )
