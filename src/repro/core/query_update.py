"""Separate query and update costs (§5.4).

The paper: "Different costs for queries and updates can be easily taken
into account by splitting the cost function into two separate costs ... and
weighting these costs appropriately."  For the single-copy fragmented file
both access kinds are served by the node holding the record, so the split
folds into the *same* functional form with a redefined weighted access cost

    C_i = sum_j ( w_q q_j c^q_ji + w_u u_j c^u_ji ) / Lambda,
    Lambda = sum_j (q_j + u_j),

and total rate ``Lambda``.  :func:`build_query_update_problem` performs the
fold and returns an ordinary
:class:`~repro.core.model.FileAllocationProblem`, so every algorithm,
theorem check, and benchmark applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_nonnegative, check_square_matrix


@dataclass(frozen=True)
class QueryUpdateSpec:
    """Workload with distinct query and update streams.

    Attributes
    ----------
    query_rates, update_rates:
        Per-node Poisson rates for the two access kinds.
    query_cost_matrix:
        ``c^q[j, i]`` communication costs for queries.
    update_cost_matrix:
        ``c^u[j, i]`` for updates; defaults to the query matrix (updates
        often carry more payload — pass a scaled matrix to model that).
    query_weight, update_weight:
        The §5.4 "weighting these costs appropriately" factors.
    """

    query_rates: Sequence[float]
    update_rates: Sequence[float]
    query_cost_matrix: Sequence[Sequence[float]]
    update_cost_matrix: Optional[Sequence[Sequence[float]]] = None
    query_weight: float = 1.0
    update_weight: float = 1.0


def build_query_update_problem(
    spec: QueryUpdateSpec,
    *,
    k: float = 1.0,
    mu: Union[float, Sequence[float], None] = None,
    delay_models: Optional[Sequence[object]] = None,
    name: str = "",
) -> FileAllocationProblem:
    """Fold a query/update workload into a standard FAP instance.

    The returned problem has per-node rates ``q_j + u_j`` and an effective
    cost matrix whose traffic-weighted column averages equal the combined
    weighted query/update access cost, so its ``C_i`` is exactly the §5.4
    split-cost value.
    """
    q = np.asarray(spec.query_rates, dtype=float)
    u = np.asarray(spec.update_rates, dtype=float)
    if q.shape != u.shape or q.ndim != 1 or q.size < 2:
        raise ConfigurationError(
            "query_rates and update_rates must be equal-length vectors (n >= 2)"
        )
    if np.any(q < 0) or np.any(u < 0):
        raise ConfigurationError("rates must be non-negative")
    n = q.size
    wq = check_nonnegative(spec.query_weight, "query_weight")
    wu = check_nonnegative(spec.update_weight, "update_weight")
    if wq == 0 and wu == 0:
        raise ConfigurationError("at least one of the weights must be positive")
    cq = check_square_matrix(spec.query_cost_matrix, "query_cost_matrix", size=n)
    cu = (
        check_square_matrix(spec.update_cost_matrix, "update_cost_matrix", size=n)
        if spec.update_cost_matrix is not None
        else cq
    )

    total = q + u
    if total.sum() <= 0:
        raise ConfigurationError("total access rate must be positive")
    # Per-row effective cost: the rate-weighted, importance-weighted blend of
    # the two matrices.  Rows with zero traffic contribute nothing to C_i and
    # get zero cost rows.
    with np.errstate(divide="ignore", invalid="ignore"):
        blend = (wq * q[:, None] * cq + wu * u[:, None] * cu) / total[:, None]
    blend[total == 0, :] = 0.0
    np.fill_diagonal(blend, 0.0)

    return FileAllocationProblem(
        blend,
        total,
        k=k,
        mu=mu,
        delay_models=delay_models,
        name=name or "query-update-fap",
    )
