"""The second-derivative algorithm (§8.2 future work).

The paper reports a pilot study of a variant that also uses second
derivatives, keeping feasibility and monotonicity while gaining two
properties: **resilience to problem scale** (multiplying all link costs or
service pressure by a constant should not change behaviour) and **wider
stepsize tolerance**.

We implement the natural center-free second-order rule (in the spirit of
Ho–Servi–Suri [20] and Bertsekas–Gafni–Gallager [2]): with marginal cost
``g_i = dC/dx_i`` and curvature ``h_i = d2C/dx_i^2 > 0``,

    dx_i = alpha * ( q* - g_i ) / h_i,
    q*   = ( sum_j g_j / h_j ) / ( sum_j 1 / h_j )

i.e. a Newton step toward the curvature-weighted average marginal.  The
choice of ``q*`` makes ``sum_i dx_i == 0`` *exactly* — feasibility is an
invariant just as in the first-order rule — and with ``alpha = 1`` the
step solves the equal-marginal condition exactly for locally quadratic
costs, which is where the speed and the scale invariance come from:
scaling the whole cost function by ``s`` scales ``g`` and ``h`` alike and
leaves ``dx`` unchanged.

The class deliberately mirrors :class:`~repro.core.algorithm.DecentralizedAllocator`
so the ablation bench can swap one for the other.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.algorithm import AllocationResult
from repro.core.initials import uniform_allocation
from repro.core.model import FileAllocationProblem
from repro.core.termination import GradientSpreadCriterion, TerminationCriterion
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


class SecondOrderAllocator:
    """Center-free Newton-like reallocation (the §8.2 variant).

    Parameters
    ----------
    problem:
        The FAP instance.
    alpha:
        Step scale; ``1.0`` is the pure Newton step and is the default —
        the variant's stepsize tolerance is exactly what the ablation
        bench measures.
    epsilon, max_iterations, termination:
        As for the first-order allocator.
    curvature_floor:
        Lower clamp on ``h_i`` to keep the division well-posed when an
        allocation wanders into a nearly linear region.
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        alpha: float = 1.0,
        epsilon: float = 1e-3,
        termination: Optional[TerminationCriterion] = None,
        max_iterations: int = 10_000,
        curvature_floor: float = 1e-12,
    ):
        self.problem = problem
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.termination = termination or GradientSpreadCriterion(epsilon)
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.max_iterations = int(max_iterations)
        self.curvature_floor = check_positive(curvature_floor, "curvature_floor")

    def step(
        self,
        x: np.ndarray,
        *,
        gradient: Optional[np.ndarray] = None,
        hessian_diag: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One Newton-like step; returns ``(new_x, active_mask)``.

        ``gradient``/``hessian_diag`` accept precomputed ``dC/dx`` and
        ``d2C/dx2`` at ``x`` (e.g. from one fused
        :meth:`~repro.core.model.FileAllocationProblem.evaluate` call);
        when omitted they are computed here, so ``step(x)`` alone still
        works as a standalone single-step API.

        Boundary handling mirrors the first-order ``scaled-step`` policy:
        zero-share nodes that want to shrink are frozen (their ``1/h``
        weight drops out of ``q*``, preserving ``sum dx == 0``), then the
        whole step is shrunk so the worst donor lands at zero.
        """
        mask = np.ones(x.size, dtype=bool)
        g = self.problem.cost_gradient(x) if gradient is None else gradient
        h = np.maximum(
            self.problem.cost_hessian_diag(x) if hessian_diag is None else hessian_diag,
            self.curvature_floor,
        )
        for _ in range(x.size):
            w = np.where(mask, 1.0 / h, 0.0)
            if w.sum() == 0:
                return x.copy(), mask
            q_star = float((w * g).sum() / w.sum())
            dx = np.where(mask, self.alpha * (q_star - g) / h, 0.0)
            pinned = mask & (x <= 1e-12) & (dx < 0)
            if not np.any(pinned):
                break
            mask &= ~pinned
        if np.any(x + dx < 0):
            shrinking = dx < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
            dx = dx * float(min(1.0, np.min(factors)))
        new_x = np.maximum(x + dx, 0.0)
        return new_x, mask

    def run(
        self,
        initial_allocation: Optional[Sequence[float]] = None,
        *,
        raise_on_failure: bool = False,
    ) -> AllocationResult:
        """Iterate until the marginal utilities agree within epsilon."""
        if initial_allocation is None:
            x = uniform_allocation(self.problem.n)
        else:
            x = self.problem.check_feasible(initial_allocation).copy()
        self.termination.reset()

        trace = Trace()
        mask = np.ones(self.problem.n, dtype=bool)

        def record(iteration: int, alpha: float, cost: float, g_u: np.ndarray) -> None:
            trace.append(
                IterationRecord(
                    iteration=iteration,
                    allocation=x.copy(),
                    cost=cost,
                    utility=-cost,
                    gradient_spread=spread(g_u[mask]),
                    alpha=alpha,
                    active_count=int(mask.sum()),
                )
            )

        # One fused evaluate per iterate: cost, gradient and Hessian
        # diagonal share the sojourn reciprocals, replacing the four
        # separate sojourn sweeps (cost + utility_gradient in the record,
        # cost_gradient + cost_hessian_diag in the step) of the original
        # loop.  The step then consumes the derivatives already computed
        # at the incoming iterate — exactly what it would recompute.
        cost, cg, h = self.problem.evaluate(x, need_hessian=True)
        g_u = -cg
        record(0, float("nan"), cost, g_u)
        converged = self.termination.should_stop(0, x, g_u, mask, cost)
        iteration = 0
        while not converged and iteration < self.max_iterations:
            iteration += 1
            x, mask = self.step(x, gradient=cg, hessian_diag=h)
            cost, cg, h = self.problem.evaluate(x, need_hessian=True)
            g_u = -cg
            record(iteration, self.alpha, cost, g_u)
            converged = self.termination.should_stop(iteration, x, g_u, mask, cost)

        if not converged and raise_on_failure:
            raise ConvergenceError(
                f"second-order allocator: no convergence in {self.max_iterations} iterations",
                iterations=iteration,
            )
        return AllocationResult(
            allocation=x,
            cost=cost,
            utility=-cost,
            iterations=iteration,
            converged=converged,
            trace=trace,
        )

    def __repr__(self) -> str:
        return f"SecondOrderAllocator(problem={self.problem.name!r}, alpha={self.alpha:g})"
