"""Stepsize policies for the reallocation iteration.

The paper proves (Theorem 2) that strict monotonicity holds whenever

    alpha < eps^2 (mu - lambda)^4
            / ( 2 N k lambda ( (Cmax - Cmin) mu (mu - lambda)
                               + lambda k (2 mu - lambda) )^2 )

and remarks that this static bound is *very* conservative — the appendix
suggests "we could get a better value for alpha if we dynamically calculate
it at each iteration using the current allocation".  Both are implemented
here, together with a plain fixed alpha (what the experiments sweep), a
backtracking line search, and the §7.3 decay-on-oscillation schedule used
by the multi-copy allocator.

A policy is called once per iteration with the full iteration context and
returns the alpha to use.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_in_range, check_positive


class StepSizePolicy(abc.ABC):
    """Strategy producing the stepsize for each iteration."""

    @abc.abstractmethod
    def alpha(
        self,
        iteration: int,
        x: np.ndarray,
        utility_gradient: np.ndarray,
        problem,
    ) -> float:
        """Stepsize for this iteration (must be positive)."""

    def notify_cost(self, iteration: int, cost: float) -> None:
        """Hook: observe the post-step cost (used by adaptive schedules)."""

    def reset(self) -> None:
        """Hook: clear any internal state before a fresh run."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FixedStep(StepSizePolicy):
    """A constant alpha — what the paper's figures sweep."""

    def __init__(self, value: float):
        self.value = check_positive(value, "alpha")

    def alpha(self, iteration, x, utility_gradient, problem):
        return self.value

    def __repr__(self) -> str:
        return f"FixedStep({self.value:g})"


def theorem2_alpha_bound(problem, epsilon: float) -> float:
    """The closed-form Theorem-2 monotonicity bound for an M/M/1 problem.

    Uses ``C_max/C_min`` over the traffic-weighted access costs and the
    smallest service rate when rates are heterogeneous (the conservative
    choice: a smaller ``mu - lambda`` gap only tightens every bound used
    in the proof).
    """
    epsilon = check_positive(epsilon, "epsilon")
    lam = problem.total_rate
    k = problem.k
    n = problem.n
    mus = [getattr(m, "mu", None) for m in problem.delay_models]
    if any(m is None for m in mus):
        raise ConfigurationError(
            "theorem-2 bound needs delay models exposing a service rate mu"
        )
    mu = float(min(mus))
    if mu <= lam:
        raise ConfigurationError(
            f"theorem-2 bound requires mu > lambda, got mu={mu:g}, lambda={lam:g}"
        )
    c_max = float(np.max(problem.access_cost))
    c_min = float(np.min(problem.access_cost))
    denom_core = (c_max - c_min) * mu * (mu - lam) + lam * k * (2.0 * mu - lam)
    return (epsilon**2 * (mu - lam) ** 4) / (2.0 * n * k * lam * denom_core**2)


class TheoremTwoStep(StepSizePolicy):
    """The static Theorem-2 bound, scaled by a safety factor (< 1).

    Guaranteed monotone, usually painfully slow — exactly the trade-off the
    paper discusses; ``benchmarks/bench_stepsize.py`` quantifies it.
    """

    def __init__(self, epsilon: float, safety: float = 0.9):
        self.epsilon = check_positive(epsilon, "epsilon")
        self.safety = check_in_range(
            safety, "safety", 0.0, 1.0, inclusive_low=False
        )
        self._cached: Optional[float] = None

    def alpha(self, iteration, x, utility_gradient, problem):
        if self._cached is None:
            self._cached = self.safety * theorem2_alpha_bound(problem, self.epsilon)
        return self._cached

    def reset(self) -> None:
        self._cached = None

    def __repr__(self) -> str:
        return f"TheoremTwoStep(epsilon={self.epsilon:g}, safety={self.safety:g})"


class DynamicStep(StepSizePolicy):
    """Per-iteration bound from the exact second-order expansion (appendix).

    With ``g = dU/dx`` and ``h = d2U/dx2`` the utility change of a step
    ``dx_i = alpha (g_i - avg)`` is, exactly to second order,

        dU = alpha * S1 + alpha^2 / 2 * S2,
        S1 = sum (g_i - avg)^2 >= 0,       (Lemma 1)
        S2 = sum h_i (g_i - avg)^2 <= 0,   (h < 0: concave utility)

    maximized at ``alpha* = -S1 / S2``.  We take ``safety * alpha*`` —
    the dynamically calculated stepsize the appendix suggests.
    """

    def __init__(self, safety: float = 0.9, fallback: float = 0.1):
        self.safety = check_in_range(safety, "safety", 0.0, 1.0, inclusive_low=False)
        self.fallback = check_positive(fallback, "fallback")

    def alpha(self, iteration, x, utility_gradient, problem):
        g = utility_gradient
        dev = g - g.mean()
        s1 = float(np.sum(dev**2))
        h = -problem.cost_hessian_diag(x)  # d2U/dx2
        s2 = float(np.sum(h * dev**2))
        if s2 >= 0 or s1 == 0:
            # Flat or non-concave pocket: nothing principled to say.
            return self.fallback
        return self.safety * (-s1 / s2)

    def __repr__(self) -> str:
        return f"DynamicStep(safety={self.safety:g})"


class BacktrackingLineSearch(StepSizePolicy):
    """Armijo-style backtracking on the true cost.

    Starts from ``initial`` and halves until the step strictly reduces the
    cost (up to ``max_halvings`` times).  Strongest monotonicity guarantee
    of all policies — at the price of extra cost evaluations per iteration,
    which in a real deployment are extra rounds of communication; the bench
    measures that trade.
    """

    def __init__(self, initial: float = 1.0, max_halvings: int = 40):
        self.initial = check_positive(initial, "initial")
        if max_halvings < 1:
            raise ConfigurationError("max_halvings must be >= 1")
        self.max_halvings = int(max_halvings)

    def alpha(self, iteration, x, utility_gradient, problem):
        from repro.core.active_set import ScaledStep

        policy = ScaledStep()
        base_cost = problem.cost(x)
        a = self.initial
        for _ in range(self.max_halvings):
            dx, _ = policy.apply(x, utility_gradient, a)
            candidate = x + dx
            try:
                if problem.cost(candidate) < base_cost:
                    return a
            except Exception:
                pass  # unstable trial point: halve and retry
            a *= 0.5
        return a

    def __repr__(self) -> str:
        return f"BacktrackingLineSearch(initial={self.initial:g})"


class DecayOnOscillation(StepSizePolicy):
    """§7.3's schedule: cut alpha when the cost stops improving.

    "When oscillations are observed the value of the stepsize parameter
    alpha is decreased by a fixed amount after a certain predetermined
    number of iterations."  We watch the cost reported via
    :meth:`notify_cost`; after ``patience`` consecutive non-improving
    iterations, alpha is multiplied by ``decay``.
    """

    def __init__(
        self,
        initial: float,
        *,
        decay: float = 0.5,
        patience: int = 5,
        min_alpha: float = 1e-8,
    ):
        self.initial = check_positive(initial, "initial")
        self.decay = check_in_range(decay, "decay", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.patience = int(patience)
        self.min_alpha = check_positive(min_alpha, "min_alpha")
        self.reset()

    def reset(self) -> None:
        self._alpha = self.initial
        self._best_cost = np.inf
        self._bad_streak = 0

    def alpha(self, iteration, x, utility_gradient, problem):
        return self._alpha

    def notify_cost(self, iteration: int, cost: float) -> None:
        if cost < self._best_cost - 1e-15:
            self._best_cost = cost
            self._bad_streak = 0
        else:
            self._bad_streak += 1
            if self._bad_streak >= self.patience:
                self._alpha = max(self.min_alpha, self._alpha * self.decay)
                self._bad_streak = 0

    @property
    def current_alpha(self) -> float:
        """The alpha the next iteration will use."""
        return self._alpha

    def __repr__(self) -> str:
        return (
            f"DecayOnOscillation(initial={self.initial:g}, decay={self.decay:g}, "
            f"patience={self.patience})"
        )


def make_stepsize(value) -> StepSizePolicy:
    """Coerce a number into :class:`FixedStep`, pass policies through."""
    if isinstance(value, StepSizePolicy):
        return value
    if isinstance(value, (int, float)):
        return FixedStep(float(value))
    raise ConfigurationError(f"cannot interpret {value!r} as a stepsize policy")
