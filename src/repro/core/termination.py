"""Termination criteria.

The paper's stopping rule (§5.2) is agreement of the marginal utilities on
the active set: ``|dU/dx_i - dU/dx_j| < eps`` for all ``i, j in A``.  §7.3
adds a cost-delta rule for the oscillating multi-copy case, and notes a
"lowest observed cost over a window" fallback for pathologically
communication-dominated rings.  All three are provided and composable.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_positive


class TerminationCriterion(abc.ABC):
    """Decides, after each iteration, whether the run is finished."""

    @abc.abstractmethod
    def should_stop(
        self,
        iteration: int,
        x: np.ndarray,
        utility_gradient: np.ndarray,
        active_mask: np.ndarray,
        cost: float,
    ) -> bool:
        """True to stop after this iteration."""

    def reset(self) -> None:
        """Clear state before a fresh run."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class GradientSpreadCriterion(TerminationCriterion):
    """§5.2: stop when active-set marginal utilities agree within epsilon."""

    def __init__(self, epsilon: float = 1e-3):
        self.epsilon = check_positive(epsilon, "epsilon")

    def should_stop(self, iteration, x, utility_gradient, active_mask, cost):
        g = utility_gradient[active_mask]
        if g.size == 0:
            return True
        return float(g.max() - g.min()) < self.epsilon

    def __repr__(self) -> str:
        return f"GradientSpreadCriterion(epsilon={self.epsilon:g})"


class CostDeltaCriterion(TerminationCriterion):
    """§7.3: stop when successive costs differ by less than a tolerance.

    Requires ``min_iterations`` first so a lucky flat pair at the start
    does not end the run before the rapid phase.
    """

    def __init__(self, tolerance: float = 1e-6, min_iterations: int = 2):
        self.tolerance = check_positive(tolerance, "tolerance")
        if min_iterations < 1:
            raise ConfigurationError("min_iterations must be >= 1")
        self.min_iterations = int(min_iterations)
        self._previous: Optional[float] = None

    def reset(self) -> None:
        self._previous = None

    def should_stop(self, iteration, x, utility_gradient, active_mask, cost):
        previous, self._previous = self._previous, cost
        if iteration < self.min_iterations or previous is None:
            return False
        return abs(cost - previous) < self.tolerance

    def __repr__(self) -> str:
        return f"CostDeltaCriterion(tolerance={self.tolerance:g})"


class LowestObservedCostCriterion(TerminationCriterion):
    """§7.3's fallback for strongly oscillating runs: observe the cost over
    a window and stop once no new minimum has appeared for ``window``
    consecutive iterations (the caller then adopts the best allocation
    seen, which the allocator's trace retains)."""

    def __init__(self, window: int = 20):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = int(window)
        self._best = np.inf
        self._since_best = 0

    def reset(self) -> None:
        self._best = np.inf
        self._since_best = 0

    def should_stop(self, iteration, x, utility_gradient, active_mask, cost):
        if cost < self._best - 1e-15:
            self._best = cost
            self._since_best = 0
        else:
            self._since_best += 1
        return self._since_best >= self.window

    def __repr__(self) -> str:
        return f"LowestObservedCostCriterion(window={self.window})"


class AnyOf(TerminationCriterion):
    """Stop when any sub-criterion fires."""

    def __init__(self, *criteria: TerminationCriterion):
        if not criteria:
            raise ConfigurationError("AnyOf needs at least one criterion")
        self.criteria = list(criteria)

    def reset(self) -> None:
        for c in self.criteria:
            c.reset()

    def should_stop(self, iteration, x, utility_gradient, active_mask, cost):
        # Evaluate all (not short-circuit) so stateful criteria keep their
        # histories consistent.
        return any(
            [c.should_stop(iteration, x, utility_gradient, active_mask, cost) for c in self.criteria]
        )

    def __repr__(self) -> str:
        return f"AnyOf({', '.join(map(repr, self.criteria))})"
