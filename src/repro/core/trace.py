"""Iteration traces: the raw material of every figure in the paper.

Each algorithm run records one :class:`IterationRecord` per iteration; the
:class:`Trace` wrapper then answers the questions the paper's evaluation
asks — cost profiles (fig 3, 8, 9), iteration counts (fig 5, 6), rapid-phase
length (§6), monotonicity violations (§7.3 oscillation).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

#: Valid values for :attr:`Trace.keep_allocations`.
KEEP_ALLOCATION_MODES = ("all", "sampled", "last")


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of the algorithm state *after* one iteration.

    Attributes
    ----------
    iteration:
        0 is the initial allocation (no step applied yet).
    allocation:
        The feasible allocation vector — or ``None`` when the owning
        :class:`Trace` dropped it to bound memory (scalar fields are
        always kept).
    cost, utility:
        ``C(x)`` and ``U(x) = -C(x)``.
    gradient_spread:
        ``max - min`` of the marginal utilities over the active set — the
        convergence statistic.
    alpha:
        Stepsize used to *reach* this record (``nan`` for the initial one).
    active_count:
        Size of the active set used for the step.
    """

    iteration: int
    allocation: Optional[np.ndarray]
    cost: float
    utility: float
    gradient_spread: float
    alpha: float
    active_count: int


@dataclass
class Trace:
    """An ordered sequence of iteration records plus summary helpers.

    Parameters
    ----------
    keep_allocations:
        Memory policy for the per-record allocation vectors.  A long run
        (``max_iterations=100_000``) at default settings stores one
        ``float64`` vector per iteration — O(N * iterations) bytes —
        which is exactly the kind of silent cost this knob bounds:

        * ``"all"`` (default) — keep every allocation (legacy behaviour);
        * ``"sampled"`` — keep iteration 0, every ``sample_every``-th
          iteration, and always the most recent record;
        * ``"last"`` — keep only the most recent record's allocation.

        Scalar fields (cost, spread, alpha, ...) are always kept, so the
        summary statistics and figures that only need cost profiles are
        unaffected.
    sample_every:
        Sampling stride for ``"sampled"`` mode.

    The trace tracks :attr:`peak_allocation_bytes` — the high-watermark
    of retained allocation storage — which the allocator publishes to an
    attached :class:`~repro.obs.registry.MetricsRegistry`.
    """

    records: List[IterationRecord] = field(default_factory=list)
    keep_allocations: str = "all"
    sample_every: int = 100
    #: High-watermark of retained allocation-vector bytes.
    peak_allocation_bytes: int = field(default=0, init=False, repr=False)
    _retained_bytes: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.keep_allocations not in KEEP_ALLOCATION_MODES:
            raise ValueError(
                f"keep_allocations must be one of {KEEP_ALLOCATION_MODES}, "
                f"got {self.keep_allocations!r}"
            )
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        for record in self.records:
            if record.allocation is not None:
                self._retained_bytes += record.allocation.nbytes
        self.peak_allocation_bytes = self._retained_bytes

    def _should_retain(self, record: IterationRecord) -> bool:
        """Whether a record keeps its allocation once it is no longer last."""
        if self.keep_allocations == "all":
            return True
        if self.keep_allocations == "last":
            return False
        return record.iteration == 0 or record.iteration % self.sample_every == 0

    def append(self, record: IterationRecord) -> None:
        if self.keep_allocations != "all" and self.records:
            prev = self.records[-1]
            if prev.allocation is not None and not self._should_retain(prev):
                self._retained_bytes -= prev.allocation.nbytes
                self.records[-1] = replace(prev, allocation=None)
        self.records.append(record)
        if record.allocation is not None:
            self._retained_bytes += record.allocation.nbytes
            if self._retained_bytes > self.peak_allocation_bytes:
                self.peak_allocation_bytes = self._retained_bytes

    @property
    def retained_allocation_bytes(self) -> int:
        """Bytes of allocation vectors currently held."""
        return self._retained_bytes

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    # -- series ------------------------------------------------------------

    def costs(self) -> np.ndarray:
        """Cost after each iteration (index 0 = initial allocation)."""
        return np.array([r.cost for r in self.records])

    def utilities(self) -> np.ndarray:
        return np.array([r.utility for r in self.records])

    def spreads(self) -> np.ndarray:
        """Marginal-utility spread after each iteration."""
        return np.array([r.gradient_spread for r in self.records])

    def allocations(self) -> np.ndarray:
        """Matrix of the *retained* allocation vectors.

        Shape ``(iterations+1, n)`` under ``keep_allocations="all"``;
        fewer rows when the memory policy dropped some (use
        :meth:`retained_iterations` for the matching iteration numbers).
        """
        kept = [r.allocation for r in self.records if r.allocation is not None]
        return np.stack(kept)

    def retained_iterations(self) -> np.ndarray:
        """Iteration numbers of the records whose allocation is retained."""
        return np.array(
            [r.iteration for r in self.records if r.allocation is not None],
            dtype=int,
        )

    def alphas(self) -> np.ndarray:
        return np.array([r.alpha for r in self.records])

    # -- summaries -----------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Number of reallocation steps taken.

        The final record's iteration number — not ``len(records) - 1``,
        which undercounts on the sampled traces the fast engine emits
        (record iteration numbers are authoritative; record *count* is a
        memory-policy artifact).
        """
        if not self.records:
            return 0
        return self.records[-1].iteration

    def final_allocation(self) -> np.ndarray:
        return self.records[-1].allocation

    def final_cost(self) -> float:
        return self.records[-1].cost

    def cost_reduction(self) -> float:
        """Fractional cost reduction from initial to final allocation.

        Figure 4's headline number: ~0.25 for the whole-file-at-one-node
        start on the paper's ring.
        """
        initial = self.records[0].cost
        if initial == 0:
            return 0.0
        return (initial - self.final_cost()) / initial

    def is_monotone(self, *, tol: float = 1e-12) -> bool:
        """True when the cost never increases by more than ``tol``."""
        c = self.costs()
        return bool(np.all(np.diff(c) <= tol))

    def monotonicity_violations(self, *, tol: float = 1e-12) -> int:
        """Number of iterations whose cost rose (the §7.3 oscillations)."""
        c = self.costs()
        return int(np.sum(np.diff(c) > tol))

    def rapid_phase_length(self, fraction: float = 0.9) -> int:
        """Iterations needed to realize ``fraction`` of the total cost drop.

        §6 observes the "rapid convergence phase" has roughly the same
        length across alphas; this makes the observation measurable.
        """
        c = self.costs()
        total_drop = c[0] - c.min()
        if total_drop <= 0:
            return 0
        threshold = c[0] - fraction * total_drop
        below = np.flatnonzero(c <= threshold)
        return int(below[0]) if below.size else len(c) - 1

    def oscillation_amplitude(self, window: int = 10) -> float:
        """Max minus min cost over the trailing ``window`` records —
        quantifies the §7.3 oscillation around the optimum."""
        c = self.costs()[-max(1, window):]
        return float(c.max() - c.min())

    # -- export ----------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialize as CSV (iteration, cost, spread, alpha, x_0..x_{n-1}).

        Rows whose allocation was dropped by the memory policy leave the
        ``x_i`` cells empty.
        """
        out = io.StringIO()
        n = 0
        for r in self.records:
            if r.allocation is not None:
                n = r.allocation.size
                break
        headers = ["iteration", "cost", "gradient_spread", "alpha"] + [
            f"x_{i}" for i in range(n)
        ]
        out.write(",".join(headers) + "\n")
        for r in self.records:
            row = [str(r.iteration), f"{r.cost!r}", f"{r.gradient_spread!r}", f"{r.alpha!r}"]
            if r.allocation is not None:
                row += [f"{v!r}" for v in r.allocation]
            else:
                row += [""] * n
            out.write(",".join(row) + "\n")
        return out.getvalue()
