"""Iteration traces: the raw material of every figure in the paper.

Each algorithm run records one :class:`IterationRecord` per iteration; the
:class:`Trace` wrapper then answers the questions the paper's evaluation
asks — cost profiles (fig 3, 8, 9), iteration counts (fig 5, 6), rapid-phase
length (§6), monotonicity violations (§7.3 oscillation).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of the algorithm state *after* one iteration.

    Attributes
    ----------
    iteration:
        0 is the initial allocation (no step applied yet).
    allocation:
        The feasible allocation vector.
    cost, utility:
        ``C(x)`` and ``U(x) = -C(x)``.
    gradient_spread:
        ``max - min`` of the marginal utilities over the active set — the
        convergence statistic.
    alpha:
        Stepsize used to *reach* this record (``nan`` for the initial one).
    active_count:
        Size of the active set used for the step.
    """

    iteration: int
    allocation: np.ndarray
    cost: float
    utility: float
    gradient_spread: float
    alpha: float
    active_count: int


@dataclass
class Trace:
    """An ordered sequence of iteration records plus summary helpers."""

    records: List[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    # -- series ------------------------------------------------------------

    def costs(self) -> np.ndarray:
        """Cost after each iteration (index 0 = initial allocation)."""
        return np.array([r.cost for r in self.records])

    def utilities(self) -> np.ndarray:
        return np.array([r.utility for r in self.records])

    def spreads(self) -> np.ndarray:
        """Marginal-utility spread after each iteration."""
        return np.array([r.gradient_spread for r in self.records])

    def allocations(self) -> np.ndarray:
        """Matrix of shape (iterations+1, n)."""
        return np.stack([r.allocation for r in self.records])

    def alphas(self) -> np.ndarray:
        return np.array([r.alpha for r in self.records])

    # -- summaries -----------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Number of reallocation steps taken (records minus the initial)."""
        return max(0, len(self.records) - 1)

    def final_allocation(self) -> np.ndarray:
        return self.records[-1].allocation

    def final_cost(self) -> float:
        return self.records[-1].cost

    def cost_reduction(self) -> float:
        """Fractional cost reduction from initial to final allocation.

        Figure 4's headline number: ~0.25 for the whole-file-at-one-node
        start on the paper's ring.
        """
        initial = self.records[0].cost
        if initial == 0:
            return 0.0
        return (initial - self.final_cost()) / initial

    def is_monotone(self, *, tol: float = 1e-12) -> bool:
        """True when the cost never increases by more than ``tol``."""
        c = self.costs()
        return bool(np.all(np.diff(c) <= tol))

    def monotonicity_violations(self, *, tol: float = 1e-12) -> int:
        """Number of iterations whose cost rose (the §7.3 oscillations)."""
        c = self.costs()
        return int(np.sum(np.diff(c) > tol))

    def rapid_phase_length(self, fraction: float = 0.9) -> int:
        """Iterations needed to realize ``fraction`` of the total cost drop.

        §6 observes the "rapid convergence phase" has roughly the same
        length across alphas; this makes the observation measurable.
        """
        c = self.costs()
        total_drop = c[0] - c.min()
        if total_drop <= 0:
            return 0
        threshold = c[0] - fraction * total_drop
        below = np.flatnonzero(c <= threshold)
        return int(below[0]) if below.size else len(c) - 1

    def oscillation_amplitude(self, window: int = 10) -> float:
        """Max minus min cost over the trailing ``window`` records —
        quantifies the §7.3 oscillation around the optimum."""
        c = self.costs()[-max(1, window):]
        return float(c.max() - c.min())

    # -- export ----------------------------------------------------------------

    def to_csv(self) -> str:
        """Serialize as CSV (iteration, cost, spread, alpha, x_0..x_{n-1})."""
        out = io.StringIO()
        n = self.records[0].allocation.size if self.records else 0
        headers = ["iteration", "cost", "gradient_spread", "alpha"] + [
            f"x_{i}" for i in range(n)
        ]
        out.write(",".join(headers) + "\n")
        for r in self.records:
            row = [str(r.iteration), f"{r.cost!r}", f"{r.gradient_spread!r}", f"{r.alpha!r}"]
            row += [f"{v!r}" for v in r.allocation]
            out.write(",".join(row) + "\n")
        return out.getvalue()
