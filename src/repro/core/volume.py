"""Volume-dependent communication costs (§8 future work).

"If we consider systems in which the whole portion of the file is copied
to the querying node instead of a remote transaction working on its behalf
at the destination node then the communications cost will depend on the
volume of file transferred ... Such a model is useful in certain
message-based distributed systems where data objects are passed by value."

Model: an access to node ``i`` ships a payload whose volume grows with the
fragment held there, ``v(x_i) = v0 + v1 * x_i`` (``v0`` = fixed
request/response overhead, ``v1`` = the by-value fragment shipping).  The
communication part of eq. (1) becomes ``C_i * v(x_i)`` and the total cost

    C(x) = sum_i ( C_i (v0 + v1 x_i) + k T(lambda x_i) ) x_i

stays smooth and convex (the new term's second derivative is
``2 v1 C_i >= 0``), so every §5 property carries over — the class below
plugs straight into every allocator, baseline, and theorem check in the
library.  ``v0 = 1, v1 = 0`` recovers the paper's original model exactly
(tested).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.utils.validation import check_nonnegative


class VolumeCostProblem(FileAllocationProblem):
    """FAP with by-value fragment shipping: ``comm = C_i (v0 + v1 x_i)``.

    Parameters
    ----------
    cost_matrix, access_rates, k, mu, delay_models, name:
        As for :class:`~repro.core.model.FileAllocationProblem`.
    fixed_volume:
        ``v0`` — payload volume independent of the fragment size (the
        request plus a fixed-size response).
    volume_per_fraction:
        ``v1`` — additional volume proportional to the fragment held at
        the serving node (the pass-by-value shipping).
    """

    def __init__(
        self,
        cost_matrix,
        access_rates,
        *,
        k: float = 1.0,
        mu=None,
        delay_models: Optional[Sequence[object]] = None,
        fixed_volume: float = 1.0,
        volume_per_fraction: float = 1.0,
        name: str = "",
    ):
        super().__init__(
            cost_matrix,
            access_rates,
            k=k,
            mu=mu,
            delay_models=delay_models,
            name=name or "volume-fap",
        )
        self.fixed_volume = check_nonnegative(fixed_volume, "fixed_volume")
        self.volume_per_fraction = check_nonnegative(
            volume_per_fraction, "volume_per_fraction"
        )

    @classmethod
    def from_problem(
        cls,
        problem: FileAllocationProblem,
        *,
        fixed_volume: float = 1.0,
        volume_per_fraction: float = 1.0,
    ) -> "VolumeCostProblem":
        """Lift an existing instance into the by-value cost model."""
        lifted = cls(
            problem.cost_matrix,
            problem.access_rates,
            k=problem.k,
            delay_models=problem.delay_models,
            fixed_volume=fixed_volume,
            volume_per_fraction=volume_per_fraction,
            name=f"{problem.name}-by-value",
        )
        lifted.topology = problem.topology
        return lifted

    # -- evaluation overrides ---------------------------------------------

    def _volumes(self, x: np.ndarray) -> np.ndarray:
        return self.fixed_volume + self.volume_per_fraction * x

    def cost(self, x: Sequence[float]) -> float:
        arr = np.asarray(x, dtype=float)
        comm = self.access_cost * self._volumes(arr)
        return float(np.sum((comm + self.k * self.delays(arr)) * arr))

    def cost_gradient(self, x: Sequence[float]) -> np.ndarray:
        """``dC/dx_i = C_i (v0 + 2 v1 x_i) + k (T + x lambda T')``."""
        arr = np.asarray(x, dtype=float)
        arrivals = self.total_rate * arr
        t = np.array(
            [m.sojourn_time(float(a)) for m, a in zip(self.delay_models, arrivals)]
        )
        dt = np.array(
            [m.d_sojourn(float(a)) for m, a in zip(self.delay_models, arrivals)]
        )
        comm_grad = self.access_cost * (
            self.fixed_volume + 2.0 * self.volume_per_fraction * arr
        )
        return comm_grad + self.k * (t + arr * self.total_rate * dt)

    def cost_hessian_diag(self, x: Sequence[float]) -> np.ndarray:
        """Adds ``2 v1 C_i`` to the base curvature — still non-negative."""
        base = super().cost_hessian_diag(x)
        return base + 2.0 * self.volume_per_fraction * self.access_cost

    def node_marginal_utility(self, node: int, x_i: float) -> float:
        model = self.delay_models[node]
        a = self.total_rate * float(x_i)
        t = model.sojourn_time(a)
        dt = model.d_sojourn(a)
        comm_grad = self.access_cost[node] * (
            self.fixed_volume + 2.0 * self.volume_per_fraction * float(x_i)
        )
        return -(comm_grad + self.k * (t + float(x_i) * self.total_rate * dt))

    def __repr__(self) -> str:
        return (
            f"VolumeCostProblem(name={self.name!r}, n={self.n}, "
            f"v0={self.fixed_volume:g}, v1={self.volume_per_fraction:g})"
        )
