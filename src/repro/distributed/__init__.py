"""Discrete-event distributed runtime.

The algorithm of §5 is *decentralized*: each iteration is a local marginal
computation followed by a communication round among the file's users.  This
package executes exactly that protocol over a simulated store-and-forward
network, instead of just evaluating the mathematics centrally:

* :mod:`simulator` — the event-calendar engine;
* :mod:`messages` — the wire types (marginal reports, averages, accesses);
* :mod:`node` — node processes computing marginals from local state only;
* :mod:`protocols` — the §5.1 coordination alternatives: all-to-all
  broadcast vs a designated central agent, with message/hop accounting;
* :mod:`runtime` — drives full runs and is verified to produce *bit-equal*
  allocations to the centralized math engine;
* :mod:`access_traffic` — Poisson file accesses against a live allocation,
  measuring empirical delay and communication cost (validates the cost
  model the optimizer trusts);
* :mod:`failures` — node-failure injection for the §4 graceful-degradation
  claim.
"""

from repro.distributed.access_traffic import TrafficStats, simulate_access_traffic
from repro.distributed.failover import (
    FailoverRunResult,
    degraded_subproblem,
    run_with_failure,
)
from repro.distributed.failures import FailureImpact, failure_impact
from repro.distributed.messages import (
    AccessRequest,
    AccessResponse,
    AverageAnnouncement,
    MarginalReport,
    Message,
)
from repro.distributed.metrics import MessageStats
from repro.distributed.multicopy_runtime import (
    MultiCopyDistributedResult,
    MultiCopyDistributedRuntime,
)
from repro.distributed.protocols import (
    BroadcastProtocol,
    CentralCoordinatorProtocol,
    FloodingProtocol,
)
from repro.distributed.runtime import DistributedFapRuntime, DistributedRunResult
from repro.distributed.simulator import Simulator

__all__ = [
    "AccessRequest",
    "AccessResponse",
    "AverageAnnouncement",
    "BroadcastProtocol",
    "CentralCoordinatorProtocol",
    "DistributedFapRuntime",
    "DistributedRunResult",
    "FailoverRunResult",
    "FloodingProtocol",
    "FailureImpact",
    "MarginalReport",
    "Message",
    "MessageStats",
    "MultiCopyDistributedResult",
    "MultiCopyDistributedRuntime",
    "Simulator",
    "TrafficStats",
    "degraded_subproblem",
    "failure_impact",
    "run_with_failure",
    "simulate_access_traffic",
]
