"""Poisson access traffic against a live allocation.

The optimizer trusts the analytic cost model; this simulation checks that
trust.  Each node generates Poisson file accesses; every access is routed
to node ``i`` with probability ``x_i`` (uniform record addressing over the
allocation — §4), waits in that node's FCFS access queue with exponential
service, and pays the routed communication cost.  The measured per-access
``comm + k * sojourn`` converges to the model's ``C(x)`` within sampling
error — exactly equation 1's interpretation as an expected cost per access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.utils.seeding import SeedLike, rng_from_seed


@dataclass(frozen=True)
class TrafficStats:
    """Empirical measurements from an access-traffic simulation."""

    accesses: int
    mean_comm_cost: float
    mean_sojourn: float
    #: mean(comm + k * sojourn) — the empirical analogue of C(x).
    mean_total_cost: float
    #: Standard error of mean_total_cost (iid approximation).
    total_cost_stderr: float
    #: Per-node observed utilizations.
    utilization: np.ndarray


def simulate_access_traffic(
    problem: FileAllocationProblem,
    allocation,
    *,
    accesses: int = 50_000,
    warmup: int = 2_000,
    seed: SeedLike = None,
) -> TrafficStats:
    """Measure the empirical access cost under ``allocation``.

    Implementation: a merged arrival stream at total rate ``lambda`` (each
    arrival tagged with its origin ``j`` with probability ``lambda_j /
    lambda`` and destination ``i`` with probability ``x_i`` — the
    superposition of the per-node Poisson streams), with per-destination
    FCFS queues advanced by the Lindley recurrence.
    """
    x = problem.check_feasible(allocation)
    if accesses <= 0 or warmup < 0:
        raise ConfigurationError("accesses must be > 0, warmup >= 0")
    rng = rng_from_seed(seed)
    n = problem.n
    lam = problem.total_rate
    total = warmup + accesses

    arrival_gaps = rng.exponential(1.0 / lam, size=total)
    arrival_times = np.cumsum(arrival_gaps)
    origins = rng.choice(n, size=total, p=problem.access_rates / lam)
    positive = x > 0
    dest_probs = np.where(positive, x, 0.0)
    dest_probs = dest_probs / dest_probs.sum()
    destinations = rng.choice(n, size=total, p=dest_probs)

    mus = np.array([getattr(m, "mu", np.nan) for m in problem.delay_models])
    if np.any(~np.isfinite(mus)):
        raise ConfigurationError(
            "traffic simulation needs delay models exposing a service rate mu"
        )
    if any(getattr(m, "servers", 1) > 1 for m in problem.delay_models):
        raise ConfigurationError(
            "traffic simulation models each node as a single FCFS server; "
            "multi-server (M/M/c) nodes are not supported here — validate "
            "those with repro.queueing.simulate_multiserver_queue instead"
        )
    services = rng.exponential(1.0, size=total) / mus[destinations]

    # Lindley recurrence per destination queue.
    depart_ready = np.zeros(n)  # time each server frees up
    sojourns = np.empty(total)
    busy = np.zeros(n)
    for idx in range(total):
        d = destinations[idx]
        t = arrival_times[idx]
        start = max(t, depart_ready[d])
        finish = start + services[idx]
        depart_ready[d] = finish
        sojourns[idx] = finish - t
        busy[d] += services[idx]

    comm = problem.cost_matrix[origins[warmup:], destinations[warmup:]]
    soj = sojourns[warmup:]
    total_costs = comm + problem.k * soj
    horizon = arrival_times[-1] - arrival_times[warmup]
    return TrafficStats(
        accesses=accesses,
        mean_comm_cost=float(comm.mean()),
        mean_sojourn=float(soj.mean()),
        mean_total_cost=float(total_costs.mean()),
        total_cost_stderr=float(total_costs.std(ddof=1) / np.sqrt(total_costs.size)),
        utilization=np.minimum(busy / max(horizon, 1e-12), 1.0),
    )
