"""Failure handling for the distributed protocol: epoch restart.

§3's case for decentralization is reliability — "the single central agent
represents a single point-of-failure".  The resource-directed protocol has
no such agent: when a node dies mid-run, the survivors form a new
configuration epoch and keep optimizing.  This module implements that:

1. **epoch 1** runs the normal broadcast protocol until the failure
   instant (failure *detection* — heartbeats, timeouts — is abstracted as
   a fixed ``detection_delay`` of virtual time, the standard idealization);
2. at detection, each survivor discards the dead node's fragment from its
   view, rescales the surviving shares to a feasible allocation of the
   (smaller) remaining file — the §4 graceful-degradation semantics: the
   lost records must be re-replicated, which the rescale represents as
   proportional re-expansion — and rebuilds its cost model for the
   degraded network (recomputed routes and access weights);
3. **epoch 2** runs the protocol among survivors to convergence.

The final allocation provably matches optimizing the degraded sub-problem
directly (asserted in the tests), and the traffic statistics account both
epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.distributed.metrics import MessageStats
from repro.distributed.runtime import DistributedFapRuntime
from repro.exceptions import ConfigurationError
from repro.network.shortest_paths import dijkstra
from repro.utils.validation import check_nonnegative


@dataclass
class FailoverRunResult:
    """Outcome of a run that survived one node failure."""

    #: Final allocation in the ORIGINAL indexing (0 at the failed node).
    allocation: np.ndarray
    #: Cost under the degraded problem (survivors only).
    cost: float
    failed_node: int
    #: Protocol rounds before the failure was detected.
    rounds_before_failure: int
    #: Rounds the survivor epoch needed.
    rounds_after_failure: int
    converged: bool
    #: Virtual time including the detection delay.
    virtual_time: float
    stats: MessageStats
    #: The degraded sub-problem (surviving indices, original order).
    degraded_problem: FileAllocationProblem


def degraded_subproblem(
    problem: FileAllocationProblem, failed_node: int
) -> tuple[FileAllocationProblem, np.ndarray]:
    """The FAP instance the survivors face after ``failed_node`` dies.

    Returns ``(sub_problem, survivor_indices)``.  Requires the problem to
    carry its topology (routes change when a store-and-forward relay
    disappears) and the surviving network to remain connected.
    """
    if problem.topology is None:
        raise ConfigurationError(
            "failover needs the problem's topology (build with from_topology)"
        )
    if not 0 <= failed_node < problem.n:
        raise ConfigurationError(f"failed node {failed_node} out of range")
    survivors = np.flatnonzero(np.arange(problem.n) != failed_node)
    alive = problem.topology.without_node(failed_node)
    m = survivors.size
    costs = np.zeros((m, m))
    for a, u in enumerate(survivors):
        dist, _ = dijkstra(alive, int(u))
        row = dist[survivors]
        if not np.all(np.isfinite(row)):
            raise ConfigurationError(
                f"losing node {failed_node} disconnects the network"
            )
        costs[a] = row
    sub = FileAllocationProblem(
        costs,
        problem.access_rates[survivors],
        k=problem.k,
        delay_models=[problem.delay_models[int(i)] for i in survivors],
        name=f"{problem.name}-minus-{failed_node}",
    )
    return sub, survivors


def run_with_failure(
    problem: FileAllocationProblem,
    initial_allocation: Sequence[float],
    *,
    failed_node: int,
    fail_after_rounds: int,
    detection_delay: float = 5.0,
    protocol: str = "broadcast",
    alpha: float = 0.2,
    epsilon: float = 1e-4,
) -> FailoverRunResult:
    """Optimize, lose ``failed_node`` after ``fail_after_rounds``, recover.

    Parameters
    ----------
    problem:
        Must carry its topology.
    fail_after_rounds:
        Protocol rounds of epoch 1 before the node dies (0 = immediately).
    detection_delay:
        Virtual time charged for the survivors to detect the failure.
    """
    check_nonnegative(detection_delay, "detection_delay")
    if fail_after_rounds < 0:
        raise ConfigurationError("fail_after_rounds must be >= 0")

    # -- epoch 1: run until the failure instant -------------------------------
    x = problem.check_feasible(initial_allocation).copy()
    epoch1_rounds = 0
    epoch1_time = 0.0
    stats = MessageStats()
    if fail_after_rounds > 0:
        runtime1 = DistributedFapRuntime(
            problem,
            protocol=protocol,
            alpha=alpha,
            epsilon=epsilon,
            max_rounds=fail_after_rounds,
        )
        run1 = runtime1.run(x)
        x = run1.allocation
        epoch1_rounds = run1.iterations
        epoch1_time = run1.virtual_time
        stats = run1.stats

    # -- failure: survivors rescale and rebuild their view ---------------------
    sub, survivors = degraded_subproblem(problem, failed_node)
    surviving_mass = float(x[survivors].sum())
    if surviving_mass <= 1e-12:
        raise ConfigurationError(
            f"node {failed_node} held the entire file; survivors have nothing "
            "to rescale (the integral-allocation total outage)"
        )
    x_sub = x[survivors] / surviving_mass

    # -- epoch 2: survivors optimize the degraded instance ----------------------
    runtime2 = DistributedFapRuntime(
        sub, protocol=protocol, alpha=alpha, epsilon=epsilon
    )
    run2 = runtime2.run(x_sub)

    final = np.zeros(problem.n)
    final[survivors] = run2.allocation
    return FailoverRunResult(
        allocation=final,
        cost=run2.cost,
        failed_node=failed_node,
        rounds_before_failure=epoch1_rounds,
        rounds_after_failure=run2.iterations,
        converged=run2.converged,
        virtual_time=epoch1_time + detection_delay + run2.virtual_time,
        stats=stats.merged_with(run2.stats),
        degraded_problem=sub,
    )
