"""Node-failure injection: the §4(a) graceful-degradation argument.

"If the file is distributed over a number of nodes then failure of one or
more nodes only means that the portions of the file stored at those nodes
cannot be accessed" — under fragmentation a failure loses ``x_dead`` of the
file; under integral allocation it loses everything or nothing.  This
module measures that, and additionally re-optimizes the surviving fragments
over the surviving network (what an adaptive deployment of the algorithm
would do after detecting the failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.utils.numeric import normalize_simplex


@dataclass(frozen=True)
class FailureImpact:
    """Consequences of one node's failure under a given allocation."""

    failed_node: int
    #: Fraction of the file still reachable (1 - x_dead).
    surviving_fraction: float
    #: True when *no* record is reachable (the integral-allocation disaster).
    total_outage: bool
    #: The surviving fragments, renormalized over live nodes (the mass the
    #: re-replication step must redistribute is 1 - surviving_fraction).
    surviving_allocation: Optional[np.ndarray]
    #: Cost of the re-optimized allocation over the surviving network
    #: (None when re-optimization was not requested or not possible).
    reoptimized_cost: Optional[float]


def failure_impact(
    problem: FileAllocationProblem,
    allocation: Sequence[float],
    failed_node: int,
    *,
    reoptimize: bool = True,
    alpha: float = 0.1,
    epsilon: float = 1e-4,
) -> FailureImpact:
    """Assess (and optionally repair) the loss of ``failed_node``.

    Re-optimization requires the problem to have been built from a
    topology (so the surviving network's access costs can be recomputed)
    and the surviving network to be connected.
    """
    x = problem.check_feasible(allocation)
    if not 0 <= failed_node < problem.n:
        raise ConfigurationError(f"failed_node {failed_node} out of range")
    lost = float(x[failed_node])
    surviving = 1.0 - lost
    if surviving <= 1e-12:
        return FailureImpact(
            failed_node=failed_node,
            surviving_fraction=0.0,
            total_outage=True,
            surviving_allocation=None,
            reoptimized_cost=None,
        )

    survivors = np.ones(problem.n, dtype=bool)
    survivors[failed_node] = False
    surviving_allocation = x.copy()
    surviving_allocation[failed_node] = 0.0

    reoptimized_cost: Optional[float] = None
    if reoptimize and problem.topology is not None:
        alive = problem.topology.without_node(failed_node)
        # Collapse to the surviving index set for a well-posed sub-problem.
        idx = np.flatnonzero(survivors)
        if all(
            np.isfinite(alive.edge_cost(u, v)) or u == v or _reachable(alive, u, v)
            for u in idx
            for v in idx
        ):
            sub_cost = _subnetwork_costs(alive, idx)
            sub_rates = problem.access_rates[idx]
            if sub_rates.sum() > 0:
                sub_problem = FileAllocationProblem(
                    sub_cost,
                    sub_rates,
                    k=problem.k,
                    delay_models=[problem.delay_models[i] for i in idx],
                    name=f"{problem.name}-minus-{failed_node}",
                )
                start = normalize_simplex(surviving_allocation[idx])
                result = DecentralizedAllocator(
                    sub_problem, alpha=alpha, epsilon=epsilon
                ).run(start)
                reoptimized_cost = result.cost

    return FailureImpact(
        failed_node=failed_node,
        surviving_fraction=surviving,
        total_outage=False,
        surviving_allocation=surviving_allocation,
        reoptimized_cost=reoptimized_cost,
    )


def _reachable(topology, u: int, v: int) -> bool:
    """Connectivity probe between two nodes of the degraded topology."""
    from repro.network.shortest_paths import dijkstra

    dist, _ = dijkstra(topology, u)
    return bool(np.isfinite(dist[v]))


def _subnetwork_costs(topology, idx: np.ndarray) -> np.ndarray:
    """All-pairs least costs restricted to the surviving node set."""
    from repro.network.shortest_paths import dijkstra

    m = idx.size
    out = np.zeros((m, m))
    for a, u in enumerate(idx):
        dist, _ = dijkstra(topology, int(u))
        for b, v in enumerate(idx):
            out[a, b] = dist[v]
    if not np.all(np.isfinite(out)):
        raise ConfigurationError("surviving network is disconnected")
    return out
