"""Wire-format message types for the distributed protocol.

§5.2 step (a): each node "sends dU/dx_i and x_i to all nodes j != i ... or
to the designated central agent" — that pair is :class:`MarginalReport`.
The central-agent variant answers with :class:`AverageAnnouncement`.  The
access-traffic simulation uses :class:`AccessRequest`/:class:`AccessResponse`.

Every message carries its origin/destination and the iteration (or request
id) it belongs to, and reports a nominal payload size so the protocol
comparison can account bytes as well as message counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    """Base class: a point-to-point message between nodes."""

    sender: int
    recipient: int

    #: Nominal payload size in bytes (header excluded), per message type.
    PAYLOAD_BYTES = 0

    @property
    def payload_bytes(self) -> int:
        return self.PAYLOAD_BYTES


@dataclass(frozen=True)
class MarginalReport(Message):
    """Step (a): one node's ``(dU/dx_i, x_i)`` pair for one iteration."""

    iteration: int = 0
    marginal_utility: float = 0.0
    share: float = 0.0

    PAYLOAD_BYTES = 8 + 8 + 4  # two floats + iteration tag


@dataclass(frozen=True)
class AverageAnnouncement(Message):
    """Central-agent reply: the average marginal utility and the active-set
    average share context for one iteration."""

    iteration: int = 0
    average_marginal: float = 0.0
    active_count: int = 0

    PAYLOAD_BYTES = 8 + 4 + 4


@dataclass(frozen=True)
class AllocationUpdate(Message):
    """Optional notification of a node's new share (used when an external
    observer — e.g. the directory layer — must track the allocation)."""

    iteration: int = 0
    share: float = 0.0

    PAYLOAD_BYTES = 8 + 4


@dataclass(frozen=True)
class AccessRequest(Message):
    """A file access (query or update) directed at the node holding the
    addressed record."""

    request_id: int = 0
    issued_at: float = 0.0

    PAYLOAD_BYTES = 16


@dataclass(frozen=True)
class AccessResponse(Message):
    """The reply carrying the accessed record back to the requester."""

    request_id: int = 0
    issued_at: float = 0.0

    PAYLOAD_BYTES = 64
