"""Message accounting for the protocol comparison.

§5.1 remarks that in a broadcast medium the central-agent and all-to-all
schemes cost about the same number of messages, while in a point-to-point
network they differ; §8.2 lists reducing per-iteration messages as future
work.  :class:`MessageStats` counts messages, link hops (what a
store-and-forward network actually pays), and payload bytes, so
``benchmarks/bench_protocols.py`` can make that discussion quantitative.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MessageStats:
    """Tallies of protocol traffic."""

    messages: int = 0
    hops: int = 0
    payload_bytes: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)

    def record(self, message, hop_count: int) -> None:
        """Account one point-to-point message routed over ``hop_count`` links."""
        self.messages += 1
        self.hops += int(hop_count)
        self.payload_bytes += message.payload_bytes
        name = type(message).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1

    def merged_with(self, other: "MessageStats") -> "MessageStats":
        """Combined tallies (used when summing per-phase stats)."""
        combined = Counter(self.by_type)
        combined.update(other.by_type)
        return MessageStats(
            messages=self.messages + other.messages,
            hops=self.hops + other.hops,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            by_type=dict(combined),
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (JSON-serializable)."""
        return {
            "messages": self.messages,
            "hops": self.hops,
            "payload_bytes": self.payload_bytes,
            "by_type": dict(self.by_type),
        }

    def publish_to(self, registry, *, prefix: str = "messages") -> None:
        """Fold the tallies into a :class:`~repro.obs.registry.MetricsRegistry`.

        Adds (not sets) so per-phase stats accumulate:
        ``<prefix>.total``, ``<prefix>.hops``, ``<prefix>.payload_bytes``,
        and one ``<prefix>.by_type.<MessageClass>`` counter per type.
        """
        registry.counter_inc(f"{prefix}.total", self.messages)
        registry.counter_inc(f"{prefix}.hops", self.hops)
        registry.counter_inc(f"{prefix}.payload_bytes", self.payload_bytes)
        for name, count in self.by_type.items():
            registry.counter_inc(f"{prefix}.by_type.{name}", count)

    def __repr__(self) -> str:
        return (
            f"MessageStats(messages={self.messages}, hops={self.hops}, "
            f"bytes={self.payload_bytes})"
        )
