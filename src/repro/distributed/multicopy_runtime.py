"""Distributed execution of the multi-copy algorithm (§7.3).

The paper's §7.3 closing paragraph: "the communication requirements of the
multiple-copy version of the algorithm are greater than before since more
information is needed by each individual node to calculate its marginal
utility ... each node needs to know the allocation at every other node."

This runtime implements exactly that protocol over the discrete-event
simulator.  Each round, every node announces its *share* to every other
node (a marginal summary is not enough: the ring cost's access pattern —
who reads what from whom — depends on the whole allocation).  Once a node
holds all ``N`` shares for its round, it assembles the full vector, drives
its own replica of the deterministic §7.3 stepper
(:class:`~repro.multicopy.algorithm.MultiCopyStepper` — alpha decay, best
tracking, stopping rules), and adopts its own component of the step.  All
nodes hold identical information and identical stepper state, so their
transitions — and the stopping round — coincide, which the tests verify by
bit-comparing against the centralized allocator.

Message latency follows the §7.2 protocol: announcements travel clockwise
around the ring at the hop costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.distributed.messages import AllocationUpdate
from repro.distributed.metrics import MessageStats
from repro.distributed.simulator import Simulator
from repro.exceptions import ProtocolError
from repro.multicopy.algorithm import MultiCopyAllocator, MultiCopyResult
from repro.multicopy.cost import MultiCopyRingProblem
from repro.utils.validation import check_positive


@dataclass
class MultiCopyDistributedResult:
    """Outcome of a distributed multi-copy run."""

    result: MultiCopyResult
    stats: MessageStats
    virtual_time: float
    rounds: int


class _RingNode:
    """One participant: its share, its inbox, its stepper replica."""

    def __init__(self, node_id: int, share: float, stepper):
        self.node_id = node_id
        self.share = float(share)
        self.stepper = stepper
        self.round = 0
        #: round -> {sender: share}
        self.inbox: Dict[int, Dict[int, float]] = {}

    def receive(self, message: AllocationUpdate) -> None:
        bucket = self.inbox.setdefault(message.iteration, {})
        if message.sender in bucket:
            raise ProtocolError(
                f"duplicate share from {message.sender} in round {message.iteration}"
            )
        bucket[message.sender] = message.share

    def has_full_round(self, n: int) -> bool:
        return len(self.inbox.get(self.round, {})) == n - 1


class MultiCopyDistributedRuntime:
    """Share-announcement rounds driving per-node §7.3 steppers.

    Parameters
    ----------
    problem:
        The multi-copy ring instance.
    latency_per_cost:
        Virtual time per unit of clockwise ring distance.
    allocator_kwargs:
        Configuration forwarded to the underlying
        :class:`~repro.multicopy.algorithm.MultiCopyAllocator` (alpha,
        decay, patience, cost_tolerance, stall_window, max_iterations).
    """

    def __init__(
        self,
        problem: MultiCopyRingProblem,
        *,
        latency_per_cost: float = 1.0,
        **allocator_kwargs,
    ):
        self.problem = problem
        self.latency_per_cost = check_positive(latency_per_cost, "latency_per_cost")
        self.config = MultiCopyAllocator(problem, **allocator_kwargs)

    def messages_per_round(self) -> int:
        """``N (N - 1)`` share announcements per round (§7.3's bill)."""
        return self.problem.n * (self.problem.n - 1)

    def run(self, initial_allocation: Sequence[float]) -> MultiCopyDistributedResult:
        x0 = self.problem.check_feasible(initial_allocation)
        n = self.problem.n
        ring = self.problem.ring
        simulator = Simulator()
        stats = MessageStats()

        nodes = [
            _RingNode(i, float(x0[i]), self.config.make_stepper()) for i in range(n)
        ]
        for node in nodes:
            node.stepper.observe_initial(np.asarray(x0, dtype=float))

        def announce(node: _RingNode) -> None:
            for peer in nodes:
                if peer.node_id == node.node_id:
                    continue
                message = AllocationUpdate(
                    sender=node.node_id,
                    recipient=peer.node_id,
                    iteration=node.round,
                    share=node.share,
                )
                latency = max(
                    1e-3,
                    self.latency_per_cost
                    * ring.forward_distance(node.node_id, peer.node_id),
                )
                stats.record(message, 1)
                simulator.schedule(latency, lambda m=message: deliver(m))

        def deliver(message: AllocationUpdate) -> None:
            node = nodes[message.recipient]
            if node.stepper.finished:
                return  # late announcements of the final round
            node.receive(message)
            if not node.has_full_round(n):
                return
            bucket = node.inbox.pop(node.round)
            x = np.empty(n)
            x[node.node_id] = node.share
            for sender, share in bucket.items():
                x[sender] = share
            new_x = node.stepper.advance(x)
            node.share = float(new_x[node.node_id])
            node.round += 1
            if not node.stepper.finished:
                announce(node)

        for node in nodes:
            announce(node)
        simulator.run(max_events=self.config.max_iterations * n * n * 4 + 10_000)

        # All steppers evolved identically; report node 0's view.
        result = nodes[0].stepper.result()
        return MultiCopyDistributedResult(
            result=result,
            stats=stats,
            virtual_time=simulator.now,
            rounds=nodes[0].round,
        )

    def __repr__(self) -> str:
        return f"MultiCopyDistributedRuntime(problem={self.problem.name!r})"
