"""Node processes: the per-agent state machine of the §5.2 protocol.

A :class:`NodeProcess` owns exactly the state a real node would: its own
share ``x_i``, its locally computable marginal utility, and an inbox of
reports keyed by iteration.  When a node holds the full set of reports for
its current iteration it reconstructs the global ``(x, dU/dx)`` vectors and
runs the *same deterministic* active-set step every other node runs —
so all nodes transition identically without any further coordination, which
is precisely why the algorithm needs only one communication round per
iteration.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.active_set import ActiveSetPolicy
from repro.distributed.messages import MarginalReport
from repro.exceptions import ProtocolError
from repro.utils.numeric import spread


class NodeProcess:
    """One network node participating in the allocation protocol.

    Parameters
    ----------
    node_id:
        This node's index.
    problem:
        The FAP instance — used *only* through
        :meth:`~repro.core.model.FileAllocationProblem.node_marginal_utility`,
        i.e. node-local information.
    initial_share:
        The node's slice of the (feasible) initial allocation.
    alpha:
        Fixed stepsize (the distributed protocol exchanges marginals only,
        so stepsize policies needing global state stay centralized).
    epsilon:
        Local convergence detection threshold (identical at every node, so
        all nodes stop in the same round).
    policy:
        The shared deterministic active-set policy.
    """

    def __init__(
        self,
        node_id: int,
        problem,
        initial_share: float,
        *,
        alpha: float,
        epsilon: float,
        policy: ActiveSetPolicy,
        round_limit: int | None = None,
    ):
        self.node_id = node_id
        self.problem = problem
        self.share = float(initial_share)
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)
        self.policy = policy
        #: Stop participating after this many completed rounds (None =
        #: run to convergence).  Safe because every intermediate
        #: allocation is feasible and improved (§5.3).
        self.round_limit = round_limit
        self.iteration = 0
        self.converged = False
        #: True when the stop came from round_limit, not the criterion.
        self.stopped_by_limit = False
        #: iteration -> {sender: MarginalReport}
        self._inbox: Dict[int, Dict[int, MarginalReport]] = {}

    # -- local computation (§5.2 step a) -------------------------------------

    def marginal_utility(self) -> float:
        """``dU/dx_i`` at the current share, from node-local state only."""
        return self.problem.node_marginal_utility(self.node_id, self.share)

    def make_report(self, recipient: int) -> MarginalReport:
        """The step-(a) message for the current iteration."""
        return MarginalReport(
            sender=self.node_id,
            recipient=recipient,
            iteration=self.iteration,
            marginal_utility=self.marginal_utility(),
            share=self.share,
        )

    # -- message handling -------------------------------------------------------

    def receive(self, report: MarginalReport) -> None:
        """Buffer a peer's report (reports for future iterations queue up)."""
        if report.iteration < self.iteration:
            raise ProtocolError(
                f"node {self.node_id} got a stale report for iteration "
                f"{report.iteration} while at {self.iteration}"
            )
        bucket = self._inbox.setdefault(report.iteration, {})
        if report.sender in bucket:
            raise ProtocolError(
                f"duplicate report from node {report.sender} "
                f"for iteration {report.iteration}"
            )
        bucket[report.sender] = report

    def has_full_round(self) -> bool:
        """True when every peer's report for the current iteration is here."""
        bucket = self._inbox.get(self.iteration, {})
        return len(bucket) == self.problem.n - 1

    # -- the step (§5.2 steps b-c), identical at every node ----------------------

    def compute_round(self) -> Optional[float]:
        """Apply one iteration once the round is complete.

        Returns the node's new share, or ``None`` when the round detected
        convergence (share unchanged, node stops participating).
        """
        if self.converged:
            raise ProtocolError(f"node {self.node_id} already converged")
        if not self.has_full_round():
            raise ProtocolError(
                f"node {self.node_id} asked to compute iteration "
                f"{self.iteration} before all reports arrived"
            )
        bucket = self._inbox.pop(self.iteration)
        n = self.problem.n
        x = np.empty(n)
        g = np.empty(n)
        x[self.node_id] = self.share
        g[self.node_id] = self.marginal_utility()
        for sender, report in bucket.items():
            x[sender] = report.share
            g[sender] = report.marginal_utility
        # Same rule as the centralized engine: the prospective step's
        # active set defines the convergence statistic.
        dx, mask = self.policy.apply(x, g, self.alpha)
        if spread(g[mask]) < self.epsilon:
            self.converged = True
            return None
        self.share = float(max(x[self.node_id] + dx[self.node_id], 0.0))
        self.iteration += 1
        if self.round_limit is not None and self.iteration >= self.round_limit:
            # Deterministic early stop: all nodes hit the same limit at the
            # same round, so no peer is left waiting for a report.
            self.converged = True
            self.stopped_by_limit = True
            return None
        return self.share
