"""Coordination protocols: all-to-all broadcast vs designated central agent.

§5.1 describes both ways of computing the average marginal utility:

* **broadcast** — "each node may broadcast its marginal utility to all
  other nodes and then each node may compute the average marginal utility
  locally": ``N (N-1)`` point-to-point messages per iteration;
* **central agent** — "all nodes transmit their marginal utility to a
  central node which computes the average and broadcasts the results back":
  ``2 (N-1)`` point-to-point messages per iteration (the coordinator is
  itself a participant).

Both are event-driven over the :class:`~repro.distributed.simulator.Simulator`
with per-message latency proportional to the routed path cost; both count
messages, link hops, and bytes.  They produce identical allocations — the
protocol changes who aggregates, not the arithmetic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.distributed.messages import AllocationUpdate, MarginalReport, Message
from repro.distributed.metrics import MessageStats
from repro.distributed.node import NodeProcess
from repro.distributed.simulator import Simulator
from repro.exceptions import ProtocolError
from repro.network.routing import RoutingTable
from repro.obs.registry import MetricsRegistry
from repro.utils.numeric import spread


class _ProtocolBase:
    """Shared plumbing: latency, message accounting, delivery.

    ``registry`` is an optional
    :class:`~repro.obs.registry.MetricsRegistry`: each sent message bumps
    live ``protocol.messages`` / ``protocol.hops`` /
    ``protocol.payload_bytes`` counters, and each completed round emits a
    ``round`` event carrying the cumulative traffic — the per-round
    telemetry a deployment would scrape.  Purely observational.
    """

    def __init__(
        self,
        nodes: List[NodeProcess],
        routing: RoutingTable,
        simulator: Simulator,
        *,
        latency_per_cost: float = 1.0,
        min_latency: float = 1e-3,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.nodes = nodes
        self.routing = routing
        self.simulator = simulator
        self.latency_per_cost = float(latency_per_cost)
        self.min_latency = float(min_latency)
        self.registry = registry
        self.stats = MessageStats()
        self.rounds_completed = 0

    def _account(self, message: Message, hops: int) -> None:
        """Tally one message in the stats and the live registry counters."""
        self.stats.record(message, hops)
        if self.registry is not None:
            self.registry.counter_inc("protocol.messages")
            self.registry.counter_inc("protocol.hops", hops)
            self.registry.counter_inc("protocol.payload_bytes", message.payload_bytes)

    def _advance_rounds(self, value: int) -> None:
        """Monotonically raise ``rounds_completed``; emit a round event."""
        if value > self.rounds_completed:
            self.rounds_completed = value
            if self.registry is not None:
                self.registry.gauge_set("protocol.rounds", value)
                self.registry.event(
                    "round",
                    protocol=self.name,
                    round=value,
                    messages=self.stats.messages,
                    hops=self.stats.hops,
                    payload_bytes=self.stats.payload_bytes,
                )

    def _send(self, message: Message, on_delivery: Callable[[Message], None]) -> None:
        """Route, account, and schedule delivery of one message."""
        if message.sender == message.recipient:
            raise ProtocolError("nodes do not message themselves")
        hops = self.routing.hop_count(message.sender, message.recipient)
        self._account(message, hops)
        latency = max(
            self.min_latency,
            self.latency_per_cost * self.routing.cost(message.sender, message.recipient),
        )
        self.simulator.schedule(latency, lambda m=message: on_delivery(m))

    # Subclasses implement: start() to kick off round 0.


class BroadcastProtocol(_ProtocolBase):
    """All-to-all report exchange; every node aggregates locally."""

    name = "broadcast"

    def start(self) -> None:
        """Schedule round 0: every node broadcasts its report."""
        for node in self.nodes:
            self._broadcast_from(node)

    def _broadcast_from(self, node: NodeProcess) -> None:
        for peer in self.nodes:
            if peer.node_id != node.node_id:
                self._send(node.make_report(peer.node_id), self._deliver)

    def _deliver(self, message: MarginalReport) -> None:
        node = self.nodes[message.recipient]
        if node.converged:
            return  # late duplicate of the final round
        node.receive(message)
        if node.has_full_round():
            new_share = node.compute_round()
            if new_share is not None:
                self._broadcast_from(node)
        # Track completed rounds as the max iteration reached.
        self._advance_rounds(node.iteration)


class CentralCoordinatorProtocol(_ProtocolBase):
    """Nodes report to a coordinator; it computes and disseminates the step.

    The coordinator is node ``coordinator_id`` (default 0) and participates
    as an ordinary agent too.  Per round it receives ``N-1`` reports,
    computes the same deterministic step as the broadcast scheme, applies
    its own share locally, and sends each peer its new share.
    """

    name = "central"

    def __init__(
        self,
        nodes: List[NodeProcess],
        routing: RoutingTable,
        simulator: Simulator,
        *,
        coordinator_id: int = 0,
        latency_per_cost: float = 1.0,
        min_latency: float = 1e-3,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(
            nodes, routing, simulator,
            latency_per_cost=latency_per_cost, min_latency=min_latency,
            registry=registry,
        )
        if not 0 <= coordinator_id < len(nodes):
            raise ProtocolError(f"coordinator id {coordinator_id} out of range")
        self.coordinator_id = coordinator_id
        self._round_reports: Dict[int, MarginalReport] = {}
        self._done = False

    @property
    def coordinator(self) -> NodeProcess:
        return self.nodes[self.coordinator_id]

    def start(self) -> None:
        """Round 0: every non-coordinator node reports in."""
        for node in self.nodes:
            if node.node_id != self.coordinator_id:
                self._send(node.make_report(self.coordinator_id), self._deliver_report)

    def _deliver_report(self, message: MarginalReport) -> None:
        if self._done:
            return
        if message.sender in self._round_reports:
            raise ProtocolError(f"duplicate report from node {message.sender}")
        self._round_reports[message.sender] = message
        if len(self._round_reports) < len(self.nodes) - 1:
            return
        # Full round at the coordinator: compute the global step.
        coord = self.coordinator
        n = len(self.nodes)
        x = np.empty(n)
        g = np.empty(n)
        x[coord.node_id] = coord.share
        g[coord.node_id] = coord.marginal_utility()
        for sender, report in self._round_reports.items():
            x[sender] = report.share
            g[sender] = report.marginal_utility
        self._round_reports = {}
        self._advance_rounds(self.rounds_completed + 1)
        dx, mask = coord.policy.apply(x, g, coord.alpha)
        if spread(g[mask]) < coord.epsilon:
            self._done = True
            for node in self.nodes:
                node.converged = True
            return
        new_x = np.maximum(x + dx, 0.0)
        coord.share = float(new_x[coord.node_id])
        coord.iteration += 1
        if coord.round_limit is not None and coord.iteration >= coord.round_limit:
            # Deterministic round budget (see NodeProcess.round_limit).
            self._done = True
            for node in self.nodes:
                node.share = float(new_x[node.node_id])
                node.converged = True
                node.stopped_by_limit = True
            return
        for node in self.nodes:
            if node.node_id == self.coordinator_id:
                continue
            self._send(
                AllocationUpdate(
                    sender=self.coordinator_id,
                    recipient=node.node_id,
                    iteration=coord.iteration,
                    share=float(new_x[node.node_id]),
                ),
                self._deliver_update,
            )

    def _deliver_update(self, message: AllocationUpdate) -> None:
        if self._done:
            return
        node = self.nodes[message.recipient]
        node.share = message.share
        node.iteration = message.iteration
        # Next round: report the refreshed marginal back to the coordinator.
        self._send(node.make_report(self.coordinator_id), self._deliver_report)


class FloodingProtocol(_ProtocolBase):
    """Neighbours-only dissemination by link-state flooding.

    Each node sends its report only to its direct neighbours; every node
    forwards reports it has not seen before to its other neighbours.
    After at most ``diameter`` forwarding waves, every node holds all
    ``N`` reports for the iteration and applies the exact §5.2 step —
    the allocation trajectory is identical to the broadcast protocol's,
    but no message ever travels more than one link.

    Compared with the §8.2 alternatives: gossip averaging sends scalar
    summaries for many rounds; flooding ships the full report set once
    (O(N * |E|) messages per iteration) and pays only diameter latency.
    This is how link-state routing protocols disseminate in practice.
    """

    name = "flooding"

    def __init__(
        self,
        nodes: List[NodeProcess],
        routing: RoutingTable,
        simulator: Simulator,
        *,
        latency_per_cost: float = 1.0,
        min_latency: float = 1e-3,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(
            nodes, routing, simulator,
            latency_per_cost=latency_per_cost, min_latency=min_latency,
            registry=registry,
        )
        n = len(nodes)
        self._n = n
        #: per node: iteration -> {origin: (marginal, share)}
        self._known: List[Dict[int, Dict[int, tuple]]] = [dict() for _ in range(n)]
        self._topology = routing.topology

    def start(self) -> None:
        for node in self.nodes:
            self._originate(node)

    def _originate(self, node: NodeProcess) -> None:
        """A node injects its own report for its current iteration."""
        report = node.make_report(node.node_id)  # recipient rewritten per hop
        self._learn(node.node_id, report.iteration, report.sender,
                    (report.marginal_utility, report.share), exclude=None)

    def _learn(
        self,
        at: int,
        iteration: int,
        origin: int,
        payload: tuple,
        exclude: Optional[int],
    ) -> None:
        """Record a report at node ``at``; forward if new; maybe compute."""
        bucket = self._known[at].setdefault(iteration, {})
        if origin in bucket:
            return  # duplicate: suppress
        bucket[origin] = payload
        # Forward the novelty to every neighbour except where it came from.
        for neighbor in self._topology.neighbors(at):
            if neighbor == exclude:
                continue
            message = MarginalReport(
                sender=at,
                recipient=neighbor,
                iteration=iteration,
                marginal_utility=payload[0],
                share=payload[1],
            )
            self._send_local(
                message,
                lambda m, origin=origin: self._deliver(m, origin),
            )
        self._maybe_compute(self.nodes[at])

    def _send_local(self, message: MarginalReport, on_delivery) -> None:
        """Send over the direct link only — the point of flooding.

        Accounted as exactly one hop at the link's own cost (the routing
        table might find a cheaper multi-hop path to a physical neighbour,
        but flooding deliberately never leaves the local link).
        """
        self._account(message, 1)
        latency = max(
            self.min_latency,
            self.latency_per_cost
            * self._topology.edge_cost(message.sender, message.recipient),
        )
        self.simulator.schedule(latency, lambda m=message: on_delivery(m))

    def _deliver(self, message: MarginalReport, origin: int) -> None:
        self._learn(
            message.recipient,
            message.iteration,
            origin,
            (message.marginal_utility, message.share),
            exclude=message.sender,
        )

    def _maybe_compute(self, node: NodeProcess) -> None:
        if node.converged:
            return
        bucket = self._known[node.node_id].get(node.iteration, {})
        if len(bucket) < self._n:
            return
        x = np.empty(self._n)
        g = np.empty(self._n)
        for origin, (marginal, share) in bucket.items():
            g[origin] = marginal
            x[origin] = share
        dx, mask = node.policy.apply(x, g, node.alpha)
        if spread(g[mask]) < node.epsilon:
            node.converged = True
            self._advance_rounds(node.iteration)
            return
        node.share = float(max(x[node.node_id] + dx[node.node_id], 0.0))
        node.iteration += 1
        self._advance_rounds(node.iteration)
        if node.round_limit is not None and node.iteration >= node.round_limit:
            node.converged = True
            node.stopped_by_limit = True
            return
        self._originate(node)
