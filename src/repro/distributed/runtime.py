"""Driving full distributed runs of the allocation protocol.

:class:`DistributedFapRuntime` wires nodes, routing, a protocol, and the
event simulator together, runs to convergence, and reports the final
allocation plus traffic statistics and the virtual time consumed.  The
integration tests assert its allocation equals the centralized
:class:`~repro.core.algorithm.DecentralizedAllocator` trajectory to
floating-point equality — the two execute the same arithmetic, one as
mathematics, one as messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.active_set import make_policy
from repro.core.model import FileAllocationProblem
from repro.distributed.metrics import MessageStats
from repro.distributed.node import NodeProcess
from repro.distributed.protocols import (
    BroadcastProtocol,
    CentralCoordinatorProtocol,
    FloodingProtocol,
)
from repro.distributed.simulator import Simulator
from repro.exceptions import ConfigurationError
from repro.network.builders import complete_graph
from repro.network.routing import RoutingTable
from repro.obs.registry import MetricsRegistry, maybe_timer
from repro.utils.validation import check_positive


@dataclass
class DistributedRunResult:
    """Outcome of one distributed protocol run."""

    allocation: np.ndarray
    cost: float
    iterations: int
    converged: bool
    #: Virtual time at which the last event executed.
    virtual_time: float
    stats: MessageStats
    protocol: str


class DistributedFapRuntime:
    """Run the §5 protocol over a simulated store-and-forward network.

    Parameters
    ----------
    problem:
        The FAP instance.  Its originating topology (when built with
        :meth:`~repro.core.model.FileAllocationProblem.from_topology`)
        routes the messages; otherwise a unit-cost complete graph is
        assumed.
    protocol:
        ``"broadcast"`` or ``"central"`` (§5.1's two schemes), or
        ``"flooding"`` — neighbours-only link-state dissemination (§8.2's
        communication restriction) with the identical step arithmetic.
    alpha, epsilon:
        Fixed stepsize and the convergence tolerance, shared by all nodes.
    active_set:
        Deterministic policy name/instance shared by all nodes.
    latency_per_cost:
        Virtual seconds per unit of routed path cost.
    max_rounds:
        Safety bound on protocol rounds.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The
        protocol bumps live per-message/per-round counters during the
        run, and the final :class:`~repro.distributed.metrics.MessageStats`
        is folded into ``messages.*`` counters alongside
        ``distributed.rounds`` / ``distributed.virtual_time`` /
        ``distributed.converged`` gauges.  Observational only.
    """

    def __init__(
        self,
        problem: FileAllocationProblem,
        *,
        protocol: str = "broadcast",
        alpha: float = 0.1,
        epsilon: float = 1e-3,
        active_set="scaled-step",
        coordinator_id: int = 0,
        latency_per_cost: float = 1.0,
        max_rounds: int = 10_000,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.problem = problem
        if protocol not in ("broadcast", "central", "flooding"):
            raise ConfigurationError(
                f"protocol must be 'broadcast', 'central' or 'flooding', "
                f"got {protocol!r}"
            )
        self.protocol_name = protocol
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.policy = make_policy(active_set)
        self.coordinator_id = coordinator_id
        self.latency_per_cost = latency_per_cost
        self.max_rounds = int(max_rounds)
        self.registry = registry
        topology = problem.topology or complete_graph(problem.n)
        self.routing = RoutingTable(topology)

    def run(self, initial_allocation: Optional[Sequence[float]] = None) -> DistributedRunResult:
        """Execute the protocol to convergence (or the round bound)."""
        if initial_allocation is None:
            x0 = np.full(self.problem.n, 1.0 / self.problem.n)
        else:
            x0 = self.problem.check_feasible(initial_allocation)

        simulator = Simulator()
        nodes = [
            NodeProcess(
                i,
                self.problem,
                float(x0[i]),
                alpha=self.alpha,
                epsilon=self.epsilon,
                policy=self.policy,
                round_limit=self.max_rounds,
            )
            for i in range(self.problem.n)
        ]
        if self.protocol_name == "broadcast":
            protocol = BroadcastProtocol(
                nodes, self.routing, simulator,
                latency_per_cost=self.latency_per_cost, registry=self.registry,
            )
        elif self.protocol_name == "flooding":
            protocol = FloodingProtocol(
                nodes, self.routing, simulator,
                latency_per_cost=self.latency_per_cost, registry=self.registry,
            )
        else:
            protocol = CentralCoordinatorProtocol(
                nodes,
                self.routing,
                simulator,
                coordinator_id=self.coordinator_id,
                latency_per_cost=self.latency_per_cost,
                registry=self.registry,
            )
        with maybe_timer(self.registry, "distributed.run_seconds"):
            protocol.start()
            # Each round is O(n^2) events; budget generously then verify below.
            simulator.run(
                max_events=self.max_rounds * self.problem.n * self.problem.n * 4
            )

        allocation = np.array([node.share for node in nodes])
        converged = all(node.converged for node in nodes) and not any(
            node.stopped_by_limit for node in nodes
        )
        if self.registry is not None:
            protocol.stats.publish_to(self.registry)
            self.registry.gauge_set("distributed.rounds", protocol.rounds_completed)
            self.registry.gauge_set("distributed.virtual_time", simulator.now)
            self.registry.gauge_set("distributed.converged", float(converged))
            self.registry.gauge_set(
                "distributed.final_cost", self.problem.cost(allocation)
            )
        return DistributedRunResult(
            allocation=allocation,
            cost=self.problem.cost(allocation),
            iterations=protocol.rounds_completed,
            converged=converged,
            virtual_time=simulator.now,
            stats=protocol.stats,
            protocol=self.protocol_name,
        )

    def __repr__(self) -> str:
        return (
            f"DistributedFapRuntime(problem={self.problem.name!r}, "
            f"protocol={self.protocol_name!r}, alpha={self.alpha:g})"
        )
