"""A minimal discrete-event simulation engine.

An event calendar (binary heap) of ``(time, sequence, callback)`` entries.
The sequence number breaks ties deterministically in scheduling order, so
runs are exactly reproducible — a property the protocol-equivalence tests
(distributed run == centralized math) depend on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ConfigurationError

EventCallback = Callable[[], None]


class Simulator:
    """Event-calendar simulator with a virtual clock."""

    def __init__(self):
        self._queue: List[Tuple[float, int, EventCallback]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: EventCallback) -> None:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Execute the next event; False when the calendar is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        self._processed += 1
        callback()
        return True

    def run(self, *, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Drain the calendar, optionally stopping at virtual time ``until``.

        ``max_events`` guards against runaway self-scheduling loops.
        """
        executed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            if executed >= max_events:
                raise ConfigurationError(
                    f"simulation exceeded {max_events} events; likely a scheduling loop"
                )
            self.step()
            executed += 1

    def pending(self) -> int:
        """Events still on the calendar."""
        return len(self._queue)
