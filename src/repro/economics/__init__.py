"""Microeconomic resource-allocation framework (§2 of the paper).

Mathematical economics offers two broad families of decentralized
allocation mechanisms for pure exchange economies:

* **resource-directed** (Heal [15], [18]; Ho–Servi–Suri [20]): agents
  report marginal utilities, and the allocation itself moves toward agents
  with above-average marginals.  Feasible at every step, monotone in social
  utility — this is the family the paper's FAP algorithm belongs to and
  :class:`~repro.economics.resource_directed.ResourceDirectedPlanner` is
  the generic engine;
* **price-directed** (Walrasian tâtonnement [3], [22]): a price adjusts
  until demand equals supply.  Feasible *only at convergence* and not
  monotone — implemented in
  :class:`~repro.economics.price_directed.PriceDirectedPlanner` as the
  §2 comparison baseline.

The generic planners work over :class:`~repro.economics.agents.Agent`
objects with scalar concave utilities; the FAP core in :mod:`repro.core`
is an independent vectorized implementation, and the test suite verifies
the two produce identical allocations on the paper's model.
"""

from repro.economics.agents import Agent, CallableAgent, QuadraticAgent
from repro.economics.lemma import heal_lemma_identity, heal_lemma_lhs
from repro.economics.pareto import is_pareto_optimal
from repro.economics.price_directed import PriceDirectedPlanner, TatonnementResult
from repro.economics.production import (
    CobbDouglasSector,
    ProductionPlanner,
    ProductionPlanResult,
    Sector,
)
from repro.economics.resource_directed import PlannerResult, ResourceDirectedPlanner

__all__ = [
    "Agent",
    "CallableAgent",
    "CobbDouglasSector",
    "PlannerResult",
    "PriceDirectedPlanner",
    "ProductionPlanResult",
    "ProductionPlanner",
    "QuadraticAgent",
    "ResourceDirectedPlanner",
    "Sector",
    "TatonnementResult",
    "heal_lemma_identity",
    "heal_lemma_lhs",
    "is_pareto_optimal",
]
