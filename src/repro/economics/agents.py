"""Economic agents with scalar utilities over a single resource.

An :class:`Agent` owns a utility function ``u(x)`` of its resource share
``x`` and reports marginal utility ``u'(x)`` — the only information the
resource-directed mechanism ever asks of it (informational decentralization
is the whole point of the §2 framework).
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.utils.validation import check_nonnegative


class Agent(abc.ABC):
    """An economic agent consuming a share ``x >= 0`` of one resource."""

    def __init__(self, name: str = ""):
        self.name = name or f"{type(self).__name__}@{id(self):x}"

    @abc.abstractmethod
    def utility(self, x: float) -> float:
        """Utility of holding ``x`` units of the resource."""

    @abc.abstractmethod
    def marginal_utility(self, x: float) -> float:
        """``du/dx`` evaluated at ``x``."""

    def second_derivative(self, x: float, *, h: float = 1e-6) -> float:
        """``d2u/dx2`` — central finite difference unless overridden."""
        x = check_nonnegative(x, "x")
        lo = max(x - h, 0.0)
        hi = x + h
        return (self.marginal_utility(hi) - self.marginal_utility(lo)) / (hi - lo)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class CallableAgent(Agent):
    """An agent defined by plain callables.

    Parameters
    ----------
    utility_fn:
        ``u(x)``.
    marginal_fn:
        ``u'(x)``; when omitted, a central finite difference of
        ``utility_fn`` is used.
    """

    def __init__(
        self,
        utility_fn: Callable[[float], float],
        marginal_fn: Optional[Callable[[float], float]] = None,
        name: str = "",
    ):
        super().__init__(name)
        self._utility_fn = utility_fn
        self._marginal_fn = marginal_fn

    def utility(self, x: float) -> float:
        return float(self._utility_fn(x))

    def marginal_utility(self, x: float) -> float:
        if self._marginal_fn is not None:
            return float(self._marginal_fn(x))
        h = 1e-6
        lo = max(x - h, 0.0)
        hi = x + h
        return (self._utility_fn(hi) - self._utility_fn(lo)) / (hi - lo)


class QuadraticAgent(Agent):
    """``u(x) = a x - b x^2 / 2`` — strictly concave for ``b > 0``.

    The closed-form optimum of an economy of quadratic agents is linear
    algebra, making this class the reference fixture for planner tests.
    """

    def __init__(self, a: float, b: float, name: str = ""):
        super().__init__(name)
        if b <= 0:
            raise ValueError(f"b must be positive for strict concavity, got {b}")
        self.a = float(a)
        self.b = float(b)

    def utility(self, x: float) -> float:
        return self.a * x - 0.5 * self.b * x * x

    def marginal_utility(self, x: float) -> float:
        return self.a - self.b * x

    def second_derivative(self, x: float, *, h: float = 1e-6) -> float:
        return -self.b
