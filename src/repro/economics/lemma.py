"""Heal's Lemma 1 (paper appendix).

For any real numbers ``a_1 .. a_n`` with mean ``avg``:

    sum_i a_i (a_i - avg)  ==  sum_i (a_i - avg)^2  >=  0,

with equality iff all ``a_i`` are equal.  The lemma is the engine of the
monotonicity proof: with ``a_i = dU/dx_i`` the left side is (1/alpha times)
the first-order utility change of one algorithm step, so every step helps
unless all marginals already agree.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def heal_lemma_lhs(values: Iterable[float]) -> float:
    """Left-hand side ``sum_i a_i (a_i - mean)``."""
    a = np.asarray(list(values), dtype=float)
    if a.size == 0:
        return 0.0
    return float(np.sum(a * (a - a.mean())))


def heal_lemma_identity(values: Iterable[float]) -> tuple[float, float]:
    """Return ``(lhs, rhs)`` of Lemma 1; they are equal analytically.

    ``rhs = sum_i (a_i - mean)^2`` is manifestly non-negative and zero only
    when all values coincide.
    """
    a = np.asarray(list(values), dtype=float)
    if a.size == 0:
        return 0.0, 0.0
    avg = a.mean()
    lhs = float(np.sum(a * (a - avg)))
    rhs = float(np.sum((a - avg) ** 2))
    return lhs, rhs
