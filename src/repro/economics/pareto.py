"""Pareto-optimality checking.

§2 of the paper observes that price-directed mechanisms converge to
*Pareto-optimal* allocations — no reallocation can raise one agent's
utility without lowering another's — and that this is weaker than social
(sum-of-utilities) optimality.  For a single divisible resource and smooth
utilities the useful first-order characterization is:

* an interior Pareto-optimal allocation has all *positive-share* agents'
  marginal utilities equal in sign pattern that admits no improving
  transfer; for strictly concave, strictly increasing utilities this means
  equal marginals (which is then also socially optimal).

The checker below works directly from the definition: it searches pairwise
transfers of mass ``delta`` for one that makes a strict Pareto improvement.
Exhaustive over pairs and exact in the small-``delta`` limit for smooth
utilities — adequate as an executable definition for tests and examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.economics.agents import Agent


def is_pareto_optimal(
    agents: Sequence[Agent],
    allocation: Sequence[float],
    *,
    delta: float = 1e-4,
    tol: float = 1e-9,
) -> bool:
    """True if no pairwise transfer of ``delta`` strictly improves someone
    while hurting no one.

    Parameters
    ----------
    agents, allocation:
        The economy and the candidate allocation (same length).
    delta:
        Transfer size to probe with.  Donors must hold at least ``delta``.
    tol:
        Strictness margin: an improvement must exceed ``tol`` and a loss
        must exceed ``tol`` to count.
    """
    x = np.asarray(allocation, dtype=float)
    if x.size != len(agents):
        raise ValueError(f"{x.size} shares for {len(agents)} agents")
    base = [agent.utility(float(xi)) for agent, xi in zip(agents, x)]
    n = x.size
    for donor in range(n):
        if x[donor] < delta:
            continue
        u_donor_after = agents[donor].utility(float(x[donor] - delta))
        donor_loss = base[donor] - u_donor_after
        for receiver in range(n):
            if receiver == donor:
                continue
            u_recv_after = agents[receiver].utility(float(x[receiver] + delta))
            receiver_gain = u_recv_after - base[receiver]
            # A Pareto improvement: someone strictly gains, nobody loses.
            if receiver_gain > tol and donor_loss < -tol:
                return False  # both gained
            if receiver_gain > tol and abs(donor_loss) <= tol:
                return False  # receiver gained, donor indifferent
            if donor_loss < -tol and receiver_gain >= -tol:
                return False  # donor gained, receiver indifferent or better
    return True
