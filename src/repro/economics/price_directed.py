"""Price-directed allocation: Walrasian tâtonnement (§2 baseline).

A price ``p`` is announced; each agent demands the share maximizing its
*individual* surplus ``u_i(x) - p x`` (so ``u_i'(x) = p`` at an interior
demand); the price then rises when total demand exceeds supply and falls
otherwise, until the market clears.

The paper lists the drawbacks this baseline exists to demonstrate:

* allocations are infeasible until convergence (demand != supply);
* social utility is not monotone along the price path;
* each agent solves a local optimization per round;
* convergence yields Pareto optimality, a weaker notion than the social
  optimum (although for the separable concave utilities used here the two
  coincide at the market-clearing point).

The comparison benchmark (``benchmarks/bench_baselines.py``) measures both
mechanisms on identical economies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.economics.agents import Agent
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.utils.validation import check_positive


@dataclass
class TatonnementResult:
    """Outcome of a price-adjustment run."""

    allocation: np.ndarray
    price: float
    iterations: int
    converged: bool
    #: |total demand - supply| after each price update.
    excess_history: List[float] = field(default_factory=list)
    #: Social utility of each (generally infeasible) demand profile.
    utility_history: List[float] = field(default_factory=list)


def _demand(agent: Agent, price: float, x_max: float, *, tol: float = 1e-12) -> float:
    """Agent's optimal share in ``[0, x_max]`` at ``price`` by bisection.

    For a concave ``u``, surplus ``u(x) - p x`` is maximized where
    ``u'(x) = p`` (clamped at the box bounds).  ``u'`` is non-increasing,
    so bisection on ``u'(x) - p`` is exact.
    """
    lo, hi = 0.0, x_max
    if agent.marginal_utility(lo) - price <= 0:
        return lo
    if agent.marginal_utility(hi) - price >= 0:
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if agent.marginal_utility(mid) - price > 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


class PriceDirectedPlanner:
    """Walrasian tâtonnement over agents with concave utilities.

    Parameters
    ----------
    agents, supply:
        The economy, as for the resource-directed planner.
    gamma:
        Price-adjustment gain: ``p += gamma * (demand - supply)``.
    demand_cap:
        Upper bound on any single agent's demand; defaults to ``supply``
        (no agent can usefully demand more than everything).
    epsilon:
        Market-clearing tolerance on ``|demand - supply|``.
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        supply: float = 1.0,
        *,
        gamma: float = 0.5,
        demand_cap: float | None = None,
        epsilon: float = 1e-6,
    ):
        if len(agents) < 2:
            raise ConfigurationError("an economy needs at least two agents")
        self.agents = list(agents)
        self.supply = check_positive(supply, "supply")
        self.gamma = check_positive(gamma, "gamma")
        self.demand_cap = (
            check_positive(demand_cap, "demand_cap") if demand_cap is not None else supply
        )
        self.epsilon = check_positive(epsilon, "epsilon")

    def demands(self, price: float) -> np.ndarray:
        """Each agent's individually optimal demand at ``price``."""
        return np.array([_demand(a, price, self.demand_cap) for a in self.agents])

    def social_utility(self, allocation: np.ndarray) -> float:
        return float(
            sum(agent.utility(float(x)) for agent, x in zip(self.agents, allocation))
        )

    def run(
        self,
        initial_price: float = 0.0,
        *,
        max_iterations: int = 10_000,
        raise_on_failure: bool = False,
    ) -> TatonnementResult:
        """Adjust the price until the market clears (or the budget runs out)."""
        price = float(initial_price)
        excess_history: List[float] = []
        utility_history: List[float] = []
        demand = self.demands(price)
        for iteration in range(max_iterations):
            excess = float(demand.sum() - self.supply)
            excess_history.append(abs(excess))
            utility_history.append(self.social_utility(demand))
            if abs(excess) < self.epsilon:
                return TatonnementResult(
                    allocation=demand,
                    price=price,
                    iterations=iteration,
                    converged=True,
                    excess_history=excess_history,
                    utility_history=utility_history,
                )
            price += self.gamma * excess
            demand = self.demands(price)
        if raise_on_failure:
            raise ConvergenceError(
                f"tatonnement did not clear the market in {max_iterations} iterations",
                iterations=max_iterations,
            )
        return TatonnementResult(
            allocation=demand,
            price=price,
            iterations=max_iterations,
            converged=False,
            excess_history=excess_history,
            utility_history=utility_history,
        )
