"""Heal's production-economy planner — the general model of [15], [18].

§5.1: "Heal's work provides a simple, decentralized procedure by which
resources may be optimally shared among agents in an economy in which
resources are both produced and consumed; our present problem ... is
therefore a simplification of the more general economic planning problem."

This module implements that general model for one scarce input:

* ``m`` sectors; sector ``j`` turns an input share ``r_j`` into output
  ``y_j = f_j(r_j)`` (``f_j`` concave, increasing);
* society values the output bundle through a concave social welfare
  ``U(y_1, ..., y_m)``;
* the planner iterates on the *input* allocation with Heal's rule applied
  to the composite marginals

      M_j = dU/dy_j * f_j'(r_j),
      dr_j = alpha * (M_j - avg_k M_k),

  which is exactly the §5.2 step with the chain rule inside.  Feasibility
  (``sum r = supply``) and monotonicity of ``U`` follow from the same
  Lemma-1 argument, and at a fixed point the composite marginals agree —
  the first-order optimality condition of the planning problem.

The FAP algorithm is the special case of identity production
(``f_j(r) = r``) and additive welfare, which the tests assert explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


class Sector:
    """One production sector: input share -> output quantity."""

    def __init__(
        self,
        production_fn: Callable[[float], float],
        marginal_fn: Optional[Callable[[float], float]] = None,
        name: str = "",
    ):
        self._fn = production_fn
        self._marginal = marginal_fn
        self.name = name or f"sector@{id(self):x}"

    def output(self, r: float) -> float:
        """``y = f(r)``."""
        return float(self._fn(r))

    def marginal_product(self, r: float) -> float:
        """``f'(r)`` (finite difference when not supplied)."""
        if self._marginal is not None:
            return float(self._marginal(r))
        h = 1e-6
        lo = max(r - h, 0.0)
        return (self._fn(r + h) - self._fn(lo)) / (r + h - lo)


class CobbDouglasSector(Sector):
    """``f(r) = scale * r^exponent`` with ``0 < exponent <= 1`` (concave)."""

    def __init__(self, scale: float = 1.0, exponent: float = 0.5, name: str = ""):
        if not 0 < exponent <= 1:
            raise ConfigurationError(
                f"exponent must be in (0, 1] for concavity, got {exponent}"
            )
        scale = check_positive(scale, "scale")
        super().__init__(
            lambda r: scale * max(r, 0.0) ** exponent,
            lambda r: scale * exponent * max(r, 1e-12) ** (exponent - 1.0),
            name=name,
        )
        self.scale = scale
        self.exponent = exponent


@dataclass
class ProductionPlanResult:
    """Outcome of a production-planning run."""

    inputs: np.ndarray
    outputs: np.ndarray
    welfare: float
    iterations: int
    converged: bool
    welfare_history: List[float] = field(default_factory=list)


class ProductionPlanner:
    """Heal's planning procedure for a one-input production economy.

    Parameters
    ----------
    sectors:
        The production sectors.
    welfare_fn:
        Social welfare ``U(y_1, ..., y_m)`` of the output bundle.
    welfare_gradient:
        ``dU/dy`` as a callable returning a vector; finite differences
        when omitted.
    supply:
        Total input available.
    alpha, epsilon:
        Stepsize and the marginal-agreement stopping tolerance.
    """

    def __init__(
        self,
        sectors: Sequence[Sector],
        welfare_fn: Callable[[np.ndarray], float],
        welfare_gradient: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        *,
        supply: float = 1.0,
        alpha: float = 0.05,
        epsilon: float = 1e-6,
    ):
        if len(sectors) < 2:
            raise ConfigurationError("a planning economy needs at least two sectors")
        self.sectors = list(sectors)
        self.welfare_fn = welfare_fn
        self.welfare_gradient = welfare_gradient
        self.supply = check_positive(supply, "supply")
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")

    # -- pieces -------------------------------------------------------------

    def outputs(self, inputs: np.ndarray) -> np.ndarray:
        return np.array(
            [s.output(float(r)) for s, r in zip(self.sectors, inputs)]
        )

    def welfare(self, inputs: np.ndarray) -> float:
        return float(self.welfare_fn(self.outputs(inputs)))

    def _du_dy(self, outputs: np.ndarray) -> np.ndarray:
        if self.welfare_gradient is not None:
            return np.asarray(self.welfare_gradient(outputs), dtype=float)
        h = 1e-6
        base = float(self.welfare_fn(outputs))
        grad = np.empty(outputs.size)
        for j in range(outputs.size):
            bumped = outputs.copy()
            bumped[j] += h
            grad[j] = (float(self.welfare_fn(bumped)) - base) / h
        return grad

    def composite_marginals(self, inputs: np.ndarray) -> np.ndarray:
        """``M_j = dU/dy_j * f_j'(r_j)`` — what each sector reports."""
        y = self.outputs(inputs)
        du = self._du_dy(y)
        fp = np.array(
            [s.marginal_product(float(r)) for s, r in zip(self.sectors, inputs)]
        )
        return du * fp

    def step(self, inputs: np.ndarray) -> np.ndarray:
        """One Heal step on the input allocation (scaled at the boundary)."""
        m = self.composite_marginals(inputs)
        dr = self.alpha * (m - m.mean())
        if np.any(inputs + dr < 0):
            shrinking = dr < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(
                    shrinking, inputs / np.maximum(-dr, 1e-300), np.inf
                )
            dr = dr * float(min(1.0, np.min(factors)))
        return np.maximum(inputs + dr, 0.0)

    # -- driver --------------------------------------------------------------

    def run(
        self,
        initial_inputs: Optional[Sequence[float]] = None,
        *,
        max_iterations: int = 100_000,
        raise_on_failure: bool = False,
    ) -> ProductionPlanResult:
        """Plan from ``initial_inputs`` (default: equal split)."""
        m = len(self.sectors)
        if initial_inputs is None:
            r = np.full(m, self.supply / m)
        else:
            r = np.asarray(initial_inputs, dtype=float).copy()
            if r.size != m or abs(r.sum() - self.supply) > 1e-9 or r.min() < -1e-12:
                raise ConfigurationError(
                    f"initial inputs must be a feasible split of {self.supply:g} "
                    f"over {m} sectors"
                )
        history = [self.welfare(r)]
        iteration = 0
        while iteration < max_iterations:
            marginals = self.composite_marginals(r)
            movable = (r > 1e-12) | (marginals > marginals.mean())
            if spread(marginals[movable]) < self.epsilon:
                return ProductionPlanResult(
                    inputs=r,
                    outputs=self.outputs(r),
                    welfare=history[-1],
                    iterations=iteration,
                    converged=True,
                    welfare_history=history,
                )
            iteration += 1
            r = self.step(r)
            history.append(self.welfare(r))
        if raise_on_failure:
            raise ConvergenceError(
                f"production planner: no convergence in {max_iterations} iterations",
                iterations=max_iterations,
            )
        return ProductionPlanResult(
            inputs=r,
            outputs=self.outputs(r),
            welfare=history[-1],
            iterations=iteration,
            converged=False,
            welfare_history=history,
        )
