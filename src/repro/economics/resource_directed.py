"""The generic resource-directed planner (Heal's "planning without prices").

One resource of fixed total supply is shared by ``n`` agents.  Each
iteration:

1. every agent reports its marginal utility at its current share
   (a *local* computation followed by one broadcast — the procedure is
   informationally decentralized);
2. the allocation moves toward above-average marginals:
   ``dx_i = alpha * (u_i'(x_i) - avg_j u_j'(x_j))``.

Because the deviations from the average sum to zero, feasibility
``sum x_i = supply`` is an exact invariant (Theorem 1), and by Lemma 1 the
first-order social-utility change ``sum_i u_i' dx_i = alpha * sum_i
(u_i' - avg)^2`` is strictly positive away from convergence (Theorem 2).

This module is the *generic* engine over :class:`~repro.economics.agents.Agent`
objects; :mod:`repro.core.algorithm` is the vectorized FAP specialization.
The two are cross-checked in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.economics.agents import Agent
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


@dataclass
class PlannerResult:
    """Outcome of a resource-directed planning run."""

    allocation: np.ndarray
    iterations: int
    converged: bool
    #: Social utility after each iteration (index 0 = initial allocation).
    utility_history: List[float] = field(default_factory=list)
    #: Max-min marginal-utility spread after each iteration.
    spread_history: List[float] = field(default_factory=list)


class ResourceDirectedPlanner:
    """Iterative reallocation toward above-average marginal utility.

    Parameters
    ----------
    agents:
        The participating agents.
    supply:
        Total amount of the resource (1.0 for a single file copy).
    alpha:
        Stepsize.  The FAP layer provides principled policies; the generic
        planner keeps a plain scalar.
    epsilon:
        Stop when all marginal utilities agree within ``epsilon``.
    enforce_nonnegative:
        Shrink any step that would drive a share negative so the binding
        agent lands exactly at zero (the step keeps its direction, hence
        feasibility and monotonicity are retained).
    """

    def __init__(
        self,
        agents: Sequence[Agent],
        supply: float = 1.0,
        *,
        alpha: float = 0.1,
        epsilon: float = 1e-6,
        enforce_nonnegative: bool = True,
    ):
        if len(agents) < 2:
            raise ConfigurationError("planning needs at least two agents")
        self.agents = list(agents)
        self.supply = check_positive(supply, "supply")
        self.alpha = check_positive(alpha, "alpha")
        self.epsilon = check_positive(epsilon, "epsilon")
        self.enforce_nonnegative = enforce_nonnegative

    # -- pieces (exposed for tests and for the distributed runtime) --------

    def marginals(self, allocation: np.ndarray) -> np.ndarray:
        """Every agent's reported marginal utility at ``allocation``."""
        return np.array(
            [agent.marginal_utility(float(x)) for agent, x in zip(self.agents, allocation)]
        )

    def social_utility(self, allocation: np.ndarray) -> float:
        """Sum of individual utilities (the planner's objective)."""
        return float(
            sum(agent.utility(float(x)) for agent, x in zip(self.agents, allocation))
        )

    def step(self, allocation: np.ndarray) -> np.ndarray:
        """One reallocation step from ``allocation`` (returns a new vector).

        Boundary handling as in the FAP engine's ``scaled-step`` policy:
        zero-share agents whose step is outbound are frozen (KKT lets them
        sit at zero with a below-average marginal), then the step over the
        movable set is shrunk so the worst donor lands exactly at zero.
        """
        new_x, _ = self.step_with_mask(allocation)
        return new_x

    def step_with_mask(self, allocation: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One step plus the movable-agent mask it used (the convergence
        statistic, like the FAP engine's active set, is the marginal
        spread over this mask)."""
        x = np.asarray(allocation, dtype=float)
        mu = self.marginals(x)
        mask = np.ones(x.size, dtype=bool)
        if not self.enforce_nonnegative:
            return x + self.alpha * (mu - mu.mean()), mask
        dx = np.zeros_like(x)
        for _ in range(x.size):
            dx[:] = 0.0
            movable = mu[mask]
            if movable.size:
                dx[mask] = self.alpha * (movable - movable.mean())
            pinned = mask & (x <= 1e-12) & (dx < 0)
            if not np.any(pinned):
                break
            mask &= ~pinned
        if np.any(x + dx < 0):
            shrinking = dx < 0
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
            dx = dx * min(1.0, float(np.min(factors)))
        return np.maximum(x + dx, 0.0), mask

    # -- driver -------------------------------------------------------------

    def run(
        self,
        initial_allocation: Sequence[float],
        *,
        max_iterations: int = 10_000,
        raise_on_failure: bool = False,
    ) -> PlannerResult:
        """Iterate from ``initial_allocation`` until the marginals agree.

        The initial allocation must be feasible (sum to ``supply``); the
        paper stresses this is the *only* requirement on it.
        """
        x = np.asarray(initial_allocation, dtype=float)
        if x.size != len(self.agents):
            raise ConfigurationError(
                f"initial allocation has {x.size} entries for {len(self.agents)} agents"
            )
        if abs(x.sum() - self.supply) > 1e-9:
            raise ConfigurationError(
                f"initial allocation sums to {x.sum():g}, expected {self.supply:g}"
            )
        def movable_spread(x_now: np.ndarray) -> float:
            _, mask = self.step_with_mask(x_now)
            return spread(self.marginals(x_now)[mask])

        utility_history = [self.social_utility(x)]
        spread_history = [movable_spread(x)]
        for iteration in range(max_iterations):
            if spread_history[-1] < self.epsilon:
                return PlannerResult(
                    allocation=x,
                    iterations=iteration,
                    converged=True,
                    utility_history=utility_history,
                    spread_history=spread_history,
                )
            x = self.step(x)
            utility_history.append(self.social_utility(x))
            spread_history.append(movable_spread(x))
        if raise_on_failure:
            raise ConvergenceError(
                f"planner did not converge in {max_iterations} iterations",
                iterations=max_iterations,
            )
        return PlannerResult(
            allocation=x,
            iterations=max_iterations,
            converged=False,
            utility_history=utility_history,
            spread_history=spread_history,
        )
