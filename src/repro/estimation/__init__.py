"""Derivative and parameter estimation from observed traffic (§8).

The conclusions note that an adaptive deployment "would crucially depend on
the ability of all nodes to accurately estimate the values for changing
system parameters i.e. compute the partial derivatives required by the
algorithm", pointing at perturbation analysis [34].  This package makes
that loop concrete:

* :mod:`finite_difference` — generic numeric marginals (validates every
  analytic gradient in the test suite);
* :mod:`perturbation` — estimating a node's service rate, arrival rate and
  delay derivative from its own observed traffic, including a
  common-random-numbers sample-path estimator;
* :mod:`adaptive` — the full §8 scenario: re-estimate, re-optimize,
  re-allocate as the workload drifts.
"""

from repro.estimation.adaptive import AdaptiveAllocationLoop, AdaptiveEpoch
from repro.estimation.finite_difference import (
    finite_difference_gradient,
    finite_difference_hessian_diag,
)
from repro.estimation.perturbation import (
    NodeObservation,
    crn_delay_derivative,
    estimate_marginal_cost,
    estimate_node_parameters,
)

__all__ = [
    "AdaptiveAllocationLoop",
    "AdaptiveEpoch",
    "NodeObservation",
    "crn_delay_derivative",
    "estimate_marginal_cost",
    "estimate_node_parameters",
    "finite_difference_gradient",
    "finite_difference_hessian_diag",
]
