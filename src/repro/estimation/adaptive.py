"""The adaptive reallocation loop (§8).

"The possibility also exists of using the algorithm to adaptively change
the file allocation as the nodal file access characteristics change
dynamically."  The loop below runs that scenario:

per epoch —
1. the true workload (per-node access rates) drifts;
2. each node *estimates* its parameters from an observation window of the
   true workload (noisy);
3. the algorithm runs a bounded number of iterations against the
   *estimated* problem, starting from the current allocation (monotonicity
   makes partial runs safe — every intermediate allocation is feasible and
   better than the last, §5.3);
4. the new allocation is adopted and scored against the *true* workload.

The accompanying example and tests show the adaptive allocation tracks the
drifting optimum and stays well below the cost of the frozen allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.algorithm import DecentralizedAllocator
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.utils.seeding import SeedLike, rng_from_seed
from repro.utils.validation import check_positive

#: Maps epoch index -> the epoch's true per-node access rates.
WorkloadDrift = Callable[[int], np.ndarray]


@dataclass
class AdaptiveEpoch:
    """Record of one adapt-reallocate epoch."""

    epoch: int
    true_rates: np.ndarray
    estimated_rates: np.ndarray
    allocation: np.ndarray
    #: Cost of the adapted allocation under the true workload.
    adapted_cost: float
    #: Cost the *initial* (never-adapted) allocation would pay now.
    frozen_cost: float
    #: Cost of the true optimum for this epoch's workload.
    optimal_cost: float
    iterations: int


class AdaptiveAllocationLoop:
    """Track a drifting workload with bounded re-optimization per epoch.

    Parameters
    ----------
    cost_matrix:
        Pairwise access costs (fixed; only rates drift).
    drift:
        Callable giving each epoch's true per-node rates.
    mu, k:
        Service rate(s) and the delay weight.
    iterations_per_epoch:
        Algorithm iterations run per epoch ("run occasionally at night").
    estimation_window:
        Virtual observation time for the per-epoch rate estimates; longer
        windows mean less estimation noise.
    alpha:
        Stepsize for the within-epoch runs.
    """

    def __init__(
        self,
        cost_matrix,
        drift: WorkloadDrift,
        *,
        mu,
        k: float = 1.0,
        iterations_per_epoch: int = 5,
        estimation_window: float = 500.0,
        alpha: float = 0.3,
        seed: SeedLike = None,
    ):
        self.cost_matrix = np.asarray(cost_matrix, dtype=float)
        self.drift = drift
        self.mu = mu
        self.k = check_positive(k, "k")
        if iterations_per_epoch < 1:
            raise ConfigurationError("iterations_per_epoch must be >= 1")
        self.iterations_per_epoch = int(iterations_per_epoch)
        self.estimation_window = check_positive(estimation_window, "estimation_window")
        self.alpha = check_positive(alpha, "alpha")
        self._rng = rng_from_seed(seed)

    def _estimate_rates(self, true_rates: np.ndarray) -> np.ndarray:
        """Poisson-count estimates over the observation window."""
        counts = self._rng.poisson(true_rates * self.estimation_window)
        estimates = counts / self.estimation_window
        # A node that saw no accesses still gets a small floor so the
        # estimated problem remains well-posed.
        floor = max(1.0 / self.estimation_window, 1e-6)
        return np.maximum(estimates, floor)

    def _problem(self, rates: np.ndarray, name: str) -> FileAllocationProblem:
        return FileAllocationProblem(
            self.cost_matrix, rates, k=self.k, mu=self.mu, name=name
        )

    def run(
        self,
        epochs: int,
        initial_allocation: Sequence[float],
        *,
        epsilon: float = 1e-4,
    ) -> List[AdaptiveEpoch]:
        """Run ``epochs`` adapt-reallocate rounds; returns per-epoch records."""
        from repro.core.kkt import optimal_allocation

        x = np.asarray(initial_allocation, dtype=float).copy()
        frozen = x.copy()
        history: List[AdaptiveEpoch] = []
        for epoch in range(epochs):
            true_rates = np.asarray(self.drift(epoch), dtype=float)
            estimated = self._estimate_rates(true_rates)
            est_problem = self._problem(estimated, f"epoch-{epoch}-estimated")
            allocator = DecentralizedAllocator(
                est_problem,
                alpha=self.alpha,
                epsilon=epsilon,
                max_iterations=self.iterations_per_epoch,
            )
            result = allocator.run(x / x.sum())
            x = result.allocation
            true_problem = self._problem(true_rates, f"epoch-{epoch}-true")
            history.append(
                AdaptiveEpoch(
                    epoch=epoch,
                    true_rates=true_rates,
                    estimated_rates=estimated,
                    allocation=x.copy(),
                    adapted_cost=true_problem.cost(x),
                    frozen_cost=true_problem.cost(frozen),
                    optimal_cost=true_problem.cost(optimal_allocation(true_problem)),
                    iterations=result.iterations,
                )
            )
        return history
