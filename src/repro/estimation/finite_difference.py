"""Numeric differentiation of allocation cost functions.

Used two ways: as the validation oracle for every analytic gradient and
Hessian in the library, and as the fallback marginal computation for cost
models without closed forms (the multi-copy ring uses its own variant that
respects the non-negativity boundary).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def finite_difference_gradient(
    fn: Callable[[np.ndarray], float],
    x: Sequence[float],
    *,
    h: float = 1e-6,
    nonnegative: bool = True,
) -> np.ndarray:
    """Central-difference partials of ``fn`` at ``x``.

    With ``nonnegative`` set, coordinates within ``h`` of zero use a
    forward difference so evaluation points stay in the domain.
    """
    base = np.asarray(x, dtype=float)
    grad = np.empty(base.size)
    for i in range(base.size):
        hi = base.copy()
        hi[i] += h
        if nonnegative and base[i] < h:
            grad[i] = (fn(hi) - fn(base)) / h
        else:
            lo = base.copy()
            lo[i] -= h
            grad[i] = (fn(hi) - fn(lo)) / (2.0 * h)
    return grad


def finite_difference_hessian_diag(
    fn: Callable[[np.ndarray], float],
    x: Sequence[float],
    *,
    h: float = 1e-5,
    nonnegative: bool = True,
) -> np.ndarray:
    """Central second differences ``(f(x+h) - 2 f(x) + f(x-h)) / h^2``.

    Coordinates too close to zero use a forward stencil
    ``(f(x+2h) - 2 f(x+h) + f(x)) / h^2``.
    """
    base = np.asarray(x, dtype=float)
    out = np.empty(base.size)
    f0 = fn(base)
    for i in range(base.size):
        if nonnegative and base[i] < h:
            p1 = base.copy()
            p1[i] += h
            p2 = base.copy()
            p2[i] += 2 * h
            out[i] = (fn(p2) - 2.0 * fn(p1) + f0) / (h * h)
        else:
            hi = base.copy()
            hi[i] += h
            lo = base.copy()
            lo[i] -= h
            out[i] = (fn(hi) - 2.0 * f0 + fn(lo)) / (h * h)
    return out
