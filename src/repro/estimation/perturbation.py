"""Estimating the algorithm's inputs from a node's own observations.

In a live system a node does not *know* ``mu``, ``lambda`` or even its own
effective arrival rate — it observes arrivals and service completions.
The §5.2 marginal ``dU/dx_i = -(C_i + k (T + x lambda T'))`` then has to be
built from estimates.  Two estimators are provided:

* :func:`estimate_node_parameters` — moment estimates of the arrival and
  service rates from an observation window (counts and busy time), plugged
  into the analytic M/M/1 derivative.  Consistent, and what a pragmatic
  deployment would use;
* :func:`crn_delay_derivative` — a sample-path (perturbation-analysis
  flavoured) estimator of ``dW/da``: two queue simulations at ``a`` and
  ``a + h`` driven by *common random numbers*, differenced.  CRN cancels
  most of the sampling noise, the property that makes PA-style estimation
  practical; the tests verify it converges to the analytic value.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.exceptions import ConfigurationError
from repro.queueing.service import ExponentialService
from repro.utils.seeding import SeedLike, rng_from_seed
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NodeObservation:
    """What one node can measure about itself over a window."""

    window: float
    arrivals: int
    completions: int
    busy_time: float

    @property
    def arrival_rate(self) -> float:
        """Moment estimate of the local arrival rate ``lambda x_i``."""
        return self.arrivals / self.window

    @property
    def service_rate(self) -> float:
        """Moment estimate of ``mu`` (completions per unit busy time)."""
        if self.busy_time <= 0:
            raise ConfigurationError("no busy time observed; cannot estimate mu")
        return self.completions / self.busy_time


def observe_node(
    arrival_rate: float,
    mu: float,
    *,
    window: float = 1_000.0,
    seed: SeedLike = None,
) -> NodeObservation:
    """Generate an observation window for an M/M/1 node (test/demo helper)."""
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    mu = check_positive(mu, "mu")
    rng = rng_from_seed(seed)
    t = 0.0
    arrivals = 0
    completions = 0
    busy = 0.0
    server_free_at = 0.0
    while True:
        t += rng.exponential(1.0 / arrival_rate)
        if t > window:
            break
        arrivals += 1
        start = max(t, server_free_at)
        service = rng.exponential(1.0 / mu)
        finish = start + service
        if finish <= window:
            completions += 1
            busy += service
        else:
            busy += max(0.0, window - start)
        server_free_at = finish
    return NodeObservation(window=window, arrivals=arrivals, completions=completions, busy_time=busy)


def estimate_marginal_cost(
    observation: NodeObservation,
    *,
    access_cost: float,
    k: float,
    share: float,
    total_rate: float,
) -> float:
    """Marginal cost ``dC/dx_i`` from observed parameters.

    Plugs the estimated ``mu`` into the M/M/1 closed form
    ``C_i + k mu / (mu - lambda x_i)^2`` with the *estimated* local arrival
    rate standing in for ``lambda x_i``.
    """
    mu_hat = observation.service_rate
    a_hat = observation.arrival_rate
    if a_hat >= mu_hat:
        raise ConfigurationError(
            f"estimated arrival rate {a_hat:g} >= estimated service rate {mu_hat:g}"
        )
    return access_cost + k * mu_hat / (mu_hat - a_hat) ** 2


def crn_delay_derivative(
    arrival_rate: float,
    mu: float,
    *,
    h: float = 0.01,
    customers: int = 200_000,
    seed: SeedLike = 0,
) -> float:
    """Common-random-numbers estimate of ``dW/da`` for an M/M/1 queue.

    Both runs reuse the same exponential(1) variates for inter-arrival gaps
    (scaled by each run's rate) and services, so the difference
    ``(W(a+h) - W(a)) / h`` estimates the derivative with far lower
    variance than independent runs.
    """
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    mu = check_positive(mu, "mu")
    h = check_positive(h, "h")
    if arrival_rate + h >= mu:
        raise ConfigurationError("a + h must stay below mu")
    rng = rng_from_seed(seed)
    unit_gaps = rng.exponential(1.0, size=customers)
    services = ExponentialService(mu).sample(rng, size=customers)

    def mean_sojourn(a: float) -> float:
        gaps = unit_gaps / a
        w = 0.0
        total = 0.0
        for idx in range(customers):
            total += w + services[idx]
            if idx + 1 < customers:
                w = max(0.0, w + services[idx] - gaps[idx + 1])
        return total / customers

    return (mean_sojourn(arrival_rate + h) - mean_sojourn(arrival_rate)) / h


def estimate_node_parameters(observation: NodeObservation) -> tuple[float, float]:
    """``(arrival_rate_hat, mu_hat)`` from one observation window."""
    return observation.arrival_rate, observation.service_rate
