"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A model, algorithm, or experiment was configured inconsistently.

    Examples: a negative access rate, a topology with no nodes, a stepsize
    policy asked for parameters it does not understand.
    """


class InfeasibleAllocationError(ReproError):
    """An allocation vector violates the problem's feasibility constraints.

    Feasibility for the single-copy problem means ``sum(x) == m`` (with
    ``m = 1`` copy) and ``x >= 0`` elementwise.
    """


class StabilityError(ReproError):
    """A queueing model was evaluated in an unstable (or undefined) regime.

    For the M/M/1 delay ``1 / (mu - lam)`` this means ``lam >= mu``; the
    paper assumes ``mu > lambda`` precisely to keep the partial derivatives
    finite.
    """


class ConvergenceError(ReproError):
    """An iterative procedure failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None):
        super().__init__(message)
        self.iterations = iterations


class TopologyError(ReproError):
    """A graph/topology operation failed (disconnected graph, bad node id...)."""


class ProtocolError(ReproError):
    """The distributed message protocol was violated (unexpected message,
    double registration, message to an unknown node, ...)."""


class StorageError(ReproError):
    """A record-store operation failed (unknown record, bad fragment bounds)."""


class LockError(StorageError):
    """A lock could not be acquired or was released by a non-owner."""


class DeadlockError(LockError):
    """A deadlock was detected among transactions waiting for locks."""
