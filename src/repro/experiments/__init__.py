"""Experiment harness: one entry point per figure in the paper's evaluation.

Figures 3-6 (§6, single copy) and figures 8-9 (§7.3, multi-copy ring) are
the paper's complete quantitative evaluation (figures 1, 2, 7 and 10 are
diagrams).  Each ``figureN`` function reproduces the corresponding
experiment and returns a structured result carrying both our measurements
and the paper's reported anchors, which the benchmark suite prints side by
side and EXPERIMENTS.md records.
"""

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.figures import (
    Figure3Result,
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Figure8Result,
    Figure9Result,
    figure3,
    figure4,
    figure5,
    figure6,
    figure8,
    figure9,
)
from repro.experiments.sweeps import SweepResult, parameter_sweep, sweep_parallel

__all__ = [
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Figure6Result",
    "Figure8Result",
    "Figure9Result",
    "SweepResult",
    "ascii_plot",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "parameter_sweep",
    "sweep_parallel",
]
