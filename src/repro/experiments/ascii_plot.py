"""Terminal line plots for convergence profiles.

Good enough to eyeball a figure-3 style cost-vs-iteration profile in a
benchmark log without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def ascii_plot(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 18,
    title: str = "",
) -> str:
    """Render one or more y-series (x = index) as a character plot.

    Each series gets a marker character in label order (``*+ox#@``...).
    """
    markers = "*+ox#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if all_y.size == 0:
        return "(empty plot)"
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    max_len = max(len(v) for v in series.values())

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (label, values) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        values = np.asarray(values, dtype=float)
        for i, y in enumerate(values):
            col = 0 if max_len <= 1 else int(round(i * (width - 1) / (max_len - 1)))
            row = int(round((y_max - y) * (height - 1) / (y_max - y_min)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4g} +" + "-" * width)
    lines.append(" " * 12 + f"0{'iteration'.center(width - 10)}{max_len - 1}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
