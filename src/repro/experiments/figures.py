"""Reproduction of every figure in the paper's evaluation (§6 and §7.3).

Shared setup for figures 3-5 (§6): a four-node ring with unit link costs,
``mu = 1.5``, ``k = 1``, total access rate ``lambda = 1`` split evenly, and
``epsilon = 0.001``.  Figure 6 uses unit-cost complete graphs, 4 <= N <= 20.
Figures 8-9 use the four-node virtual rings of §7.3 with m = 2 copies.

Each function returns a dataclass holding our measurements next to the
paper's reported anchors; ``rows()`` renders the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.convergence import sweep_alpha_iterations
from repro.analysis.oscillation import OscillationMetrics, oscillation_metrics
from repro.baselines.integral import best_integral_allocation
from repro.core.algorithm import DecentralizedAllocator
from repro.core.initials import paper_skewed_allocation
from repro.core.kkt import optimal_allocation
from repro.core.model import FileAllocationProblem
from repro.multicopy.algorithm import MultiCopyAllocator
from repro.multicopy.fixtures import paper_figure8_rings
from repro.network.builders import complete_graph

#: §6 parameters shared by figures 3, 4 and 5.
PAPER_EPSILON = 1e-3
PAPER_ALPHAS_FIG3 = (0.67, 0.3, 0.19, 0.08)
#: The iteration counts the paper reports for those alphas.
PAPER_FIG3_ITERATIONS = {0.67: 4, 0.3: 10, 0.19: 20, 0.08: 51}
#: The paper's quoted figure-4 cost reduction ("significant (25%)").
PAPER_FIG4_REDUCTION = 0.25


def _paper_problem() -> FileAllocationProblem:
    return FileAllocationProblem.paper_network()


# ---------------------------------------------------------------------------
# Figure 3: convergence profiles for several alphas
# ---------------------------------------------------------------------------


@dataclass
class Figure3Result:
    """Cost-vs-iteration profiles per alpha plus iteration counts."""

    profiles: Dict[float, np.ndarray]
    iterations: Dict[float, int]
    final_allocations: Dict[float, np.ndarray]
    monotone: Dict[float, bool]
    rapid_phase: Dict[float, int]
    paper_iterations: Dict[float, int] = field(
        default_factory=lambda: dict(PAPER_FIG3_ITERATIONS)
    )

    def rows(self) -> List[List[object]]:
        out = []
        for alpha in sorted(self.profiles, reverse=True):
            out.append(
                [
                    alpha,
                    self.paper_iterations.get(alpha, "-"),
                    self.iterations[alpha],
                    self.rapid_phase[alpha],
                    "yes" if self.monotone[alpha] else "NO",
                    float(self.profiles[alpha][-1]),
                ]
            )
        return out

    HEADERS = ["alpha", "paper iters", "measured iters", "rapid phase", "monotone", "final cost"]


def figure3(
    alphas: Sequence[float] = PAPER_ALPHAS_FIG3,
    *,
    epsilon: float = PAPER_EPSILON,
) -> Figure3Result:
    """Convergence profiles on the paper ring from x0 = (0.8, 0.1, 0.1, 0)."""
    problem = _paper_problem()
    x0 = paper_skewed_allocation(problem.n)
    profiles: Dict[float, np.ndarray] = {}
    iterations: Dict[float, int] = {}
    finals: Dict[float, np.ndarray] = {}
    monotone: Dict[float, bool] = {}
    rapid: Dict[float, int] = {}
    for alpha in alphas:
        result = DecentralizedAllocator(problem, alpha=alpha, epsilon=epsilon).run(x0)
        profiles[alpha] = result.trace.costs()
        iterations[alpha] = result.iterations
        finals[alpha] = result.allocation
        monotone[alpha] = result.trace.is_monotone()
        rapid[alpha] = result.trace.rapid_phase_length()
    return Figure3Result(
        profiles=profiles,
        iterations=iterations,
        final_allocations=finals,
        monotone=monotone,
        rapid_phase=rapid,
    )


# ---------------------------------------------------------------------------
# Figure 4: fragmentation vs the best integral allocation
# ---------------------------------------------------------------------------


@dataclass
class Figure4Result:
    """Starting from the whole file at one node."""

    profile: np.ndarray
    integral_cost: float
    final_cost: float
    optimal_cost: float
    reduction: float
    final_allocation: np.ndarray
    paper_reduction: float = PAPER_FIG4_REDUCTION

    def rows(self) -> List[List[object]]:
        return [
            ["best integral cost", self.integral_cost],
            ["fragmented optimum", self.optimal_cost],
            ["measured final cost", self.final_cost],
            ["measured reduction", f"{self.reduction:.1%}"],
            ["paper reduction", f"{self.paper_reduction:.0%}"],
        ]

    HEADERS = ["quantity", "value"]


def figure4(*, alpha: float = 0.3, epsilon: float = PAPER_EPSILON) -> Figure4Result:
    """Run from the optimal integral allocation (0, 0, 0, 1)."""
    problem = _paper_problem()
    integral_x, integral_cost = best_integral_allocation(problem)
    result = DecentralizedAllocator(problem, alpha=alpha, epsilon=epsilon).run(integral_x)
    optimal_cost = problem.cost(optimal_allocation(problem))
    return Figure4Result(
        profile=result.trace.costs(),
        integral_cost=integral_cost,
        final_cost=result.cost,
        optimal_cost=optimal_cost,
        reduction=(integral_cost - result.cost) / integral_cost,
        final_allocation=result.allocation,
    )


# ---------------------------------------------------------------------------
# Figure 5: iterations to convergence vs alpha
# ---------------------------------------------------------------------------


@dataclass
class Figure5Result:
    """The alpha sweep: convergence time blows up as alpha -> 0 and there is
    a wide plateau of near-optimal alphas."""

    counts: Dict[float, int]
    best_alpha: float
    max_iterations: int

    def rows(self) -> List[List[object]]:
        return [
            [alpha, count if count < self.max_iterations else f">={self.max_iterations}"]
            for alpha, count in sorted(self.counts.items())
        ]

    HEADERS = ["alpha", "iterations"]

    def plateau_width(self, *, slack: float = 2.0) -> float:
        """Width (in alpha) of the region within ``slack`` x the best count —
        quantifies the paper's 'relatively large range of alpha values'."""
        best = self.counts[self.best_alpha]
        good = [a for a, c in self.counts.items() if c <= slack * best]
        return max(good) - min(good) if good else 0.0


def figure5(
    alphas: Optional[Sequence[float]] = None,
    *,
    epsilon: float = PAPER_EPSILON,
    max_iterations: int = 3_000,
    engine: str = "serial",
) -> Figure5Result:
    """Sweep alpha on the paper ring from the skewed start.

    ``engine="batched"`` runs the whole alpha grid as one lockstep
    :class:`~repro.parallel.BatchedAllocator` batch — identical counts,
    one vectorized pass.
    """
    if alphas is None:
        alphas = np.round(np.linspace(0.02, 0.9, 23), 3)
    problem = _paper_problem()
    x0 = paper_skewed_allocation(problem.n)
    counts, best_alpha = sweep_alpha_iterations(
        problem, x0, alphas, epsilon=epsilon, max_iterations=max_iterations, engine=engine
    )
    return Figure5Result(counts=counts, best_alpha=best_alpha, max_iterations=max_iterations)


# ---------------------------------------------------------------------------
# Figure 6: iterations (at the best alpha) vs network size
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    """Scaling with N on unit-cost complete graphs."""

    iterations_by_n: Dict[int, int]
    best_alpha_by_n: Dict[int, float]
    optimum_is_uniform: Dict[int, bool]

    def rows(self) -> List[List[object]]:
        return [
            [n, self.best_alpha_by_n[n], self.iterations_by_n[n],
             "yes" if self.optimum_is_uniform[n] else "NO"]
            for n in sorted(self.iterations_by_n)
        ]

    HEADERS = ["N", "best alpha", "iterations", "optimum = 1/N"]

    def is_flat(self, *, factor: float = 3.0) -> bool:
        """The paper's claim: iteration counts do not grow significantly
        with N (max within ``factor`` of min)."""
        counts = list(self.iterations_by_n.values())
        return max(counts) <= factor * max(1, min(counts))


def figure6(
    sizes: Sequence[int] = tuple(range(4, 21)),
    *,
    epsilon: float = PAPER_EPSILON,
    alpha_grid: Optional[Sequence[float]] = None,
    max_iterations: int = 3_000,
    engine: str = "serial",
) -> Figure6Result:
    """For each N: unit-cost complete graph, skewed start, best alpha.

    ``engine="batched"`` batches each N's alpha grid into one lockstep
    run (rows across N differ in size, so N itself stays a loop).
    """
    if alpha_grid is None:
        alpha_grid = np.round(np.linspace(0.05, 0.95, 19), 3)
    iterations_by_n: Dict[int, int] = {}
    best_alpha_by_n: Dict[int, float] = {}
    uniform_ok: Dict[int, bool] = {}
    for n in sizes:
        rates = np.full(n, 1.0 / n)
        problem = FileAllocationProblem.from_topology(
            complete_graph(n), rates, k=1.0, mu=1.5
        )
        x0 = paper_skewed_allocation(n)
        counts, best_alpha = sweep_alpha_iterations(
            problem, x0, alpha_grid, epsilon=epsilon, max_iterations=max_iterations,
            engine=engine,
        )
        best_alpha_by_n[n] = best_alpha
        iterations_by_n[n] = counts[best_alpha]
        final = DecentralizedAllocator(problem, alpha=best_alpha, epsilon=epsilon).run(x0)
        uniform_ok[n] = bool(np.allclose(final.allocation, 1.0 / n, atol=5e-3))
    return Figure6Result(
        iterations_by_n=iterations_by_n,
        best_alpha_by_n=best_alpha_by_n,
        optimum_is_uniform=uniform_ok,
    )


# ---------------------------------------------------------------------------
# Figure 8: multi-copy convergence profiles (comm- vs delay-dominated)
# ---------------------------------------------------------------------------


@dataclass
class Figure8Result:
    """Two rings, m=2: the comm-dominated one oscillates more."""

    comm_profile: np.ndarray
    delay_profile: np.ndarray
    comm_metrics: OscillationMetrics
    delay_metrics: OscillationMetrics
    comm_best_cost: float
    delay_best_cost: float

    def rows(self) -> List[List[object]]:
        return [
            ["comm-dominated (4,1,1,1)", self.comm_metrics.increases,
             self.comm_metrics.trailing_amplitude, self.comm_best_cost],
            ["delay-dominated (1,1,1,1)", self.delay_metrics.increases,
             self.delay_metrics.trailing_amplitude, self.delay_best_cost],
        ]

    HEADERS = ["ring", "cost increases", "trailing amplitude", "best cost"]

    @property
    def comm_oscillates_more(self) -> bool:
        """The paper's figure-8 observation."""
        return (
            self.comm_metrics.trailing_amplitude
            >= self.delay_metrics.trailing_amplitude
        )


def figure8(
    *,
    alpha: float = 0.1,
    iterations: int = 150,
    mu: float = 6.0,
) -> Figure8Result:
    """Fixed-alpha profiles on the two §7.3 rings (no decay: we want to
    *see* the oscillation, as the paper's figure does)."""
    comm, delay = paper_figure8_rings(mu=mu)
    x0 = np.array([1.2, 0.3, 0.3, 0.2])
    results = []
    for prob in (comm, delay):
        alloc = MultiCopyAllocator(
            prob,
            alpha=alpha,
            decay=0.999,  # effectively no decay within the horizon
            patience=10_000,
            cost_tolerance=1e-12,
            stall_window=10_000,
            max_iterations=iterations,
        )
        results.append(alloc.run(x0))
    comm_r, delay_r = results
    return Figure8Result(
        comm_profile=np.asarray(comm_r.cost_history),
        delay_profile=np.asarray(delay_r.cost_history),
        comm_metrics=oscillation_metrics(comm_r.cost_history),
        delay_metrics=oscillation_metrics(delay_r.cost_history),
        comm_best_cost=comm_r.cost,
        delay_best_cost=delay_r.cost,
    )


# ---------------------------------------------------------------------------
# Figure 9: decreasing alpha shrinks the oscillation
# ---------------------------------------------------------------------------


@dataclass
class Figure9Result:
    """Same ring, two alphas; plus the decay schedule's result."""

    profiles: Dict[float, np.ndarray]
    amplitudes: Dict[float, float]
    decayed_profile: np.ndarray
    decayed_final_cost: float

    def rows(self) -> List[List[object]]:
        out = [
            [f"alpha={alpha:g} (fixed)", self.amplitudes[alpha]]
            for alpha in sorted(self.profiles, reverse=True)
        ]
        out.append(["alpha decayed (§7.3 schedule)", float(self.decayed_final_cost)])
        return out

    HEADERS = ["configuration", "trailing amplitude / final cost"]

    @property
    def smaller_alpha_oscillates_less(self) -> bool:
        alphas = sorted(self.profiles)
        return self.amplitudes[alphas[0]] <= self.amplitudes[alphas[-1]] + 1e-12


def figure9(
    alphas: Sequence[float] = (0.1, 0.05),
    *,
    iterations: int = 150,
    mu: float = 6.0,
) -> Figure9Result:
    """Fixed-alpha oscillation amplitudes on the comm-dominated ring, plus
    one run with the §7.3 decay schedule enabled."""
    comm, _ = paper_figure8_rings(mu=mu)
    x0 = np.array([1.2, 0.3, 0.3, 0.2])
    profiles: Dict[float, np.ndarray] = {}
    amplitudes: Dict[float, float] = {}
    for alpha in alphas:
        result = MultiCopyAllocator(
            comm,
            alpha=alpha,
            decay=0.999,
            patience=10_000,
            cost_tolerance=1e-12,
            stall_window=10_000,
            max_iterations=iterations,
        ).run(x0)
        profiles[alpha] = np.asarray(result.cost_history)
        amplitudes[alpha] = oscillation_metrics(result.cost_history).trailing_amplitude
    decayed = MultiCopyAllocator(
        comm, alpha=max(alphas), decay=0.5, patience=5, max_iterations=iterations * 3
    ).run(x0)
    return Figure9Result(
        profiles=profiles,
        amplitudes=amplitudes,
        decayed_profile=np.asarray(decayed.cost_history),
        decayed_final_cost=decayed.cost,
    )
