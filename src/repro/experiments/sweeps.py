"""Generic parameter sweeps.

Beyond the paper's own figures, the benchmark suite sweeps ``k`` (the §8
"rationale for choosing k" question), ``mu``/``lambda`` load ratios, and
network families.  :func:`parameter_sweep` is the shared engine: build a
problem per grid point, solve it, collect whatever the caller measures.

Both execution paths run the *same* per-task runner
(:func:`repro.parallel.executor.solve_grid_point`):

* :func:`parameter_sweep` — serial, in-process; accepts lambdas/closures;
* :func:`repro.parallel.sweep_parallel` — the process-pool counterpart
  (re-exported here) for multi-core machines; requires picklable
  callables and adds deterministic per-task seeding, chunking, bounded
  retry, and registry aggregation.

Results round-trip through JSON (:meth:`SweepResult.to_json` /
:meth:`SweepResult.from_json`) so the ``repro-fap sweep`` CLI can persist
them and benchmarks can diff runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.obs.registry import MetricsRegistry
from repro.parallel.executor import SweepExecutor, make_tasks, sweep_parallel

__all__ = ["SweepResult", "parameter_sweep", "sweep_parallel"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (common in measurements) to plain JSON."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


@dataclass
class SweepResult:
    """Rows of (parameter value, measurements) from one sweep."""

    parameter: str
    values: List[Any] = field(default_factory=list)
    measurements: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, key: str) -> List[Any]:
        """One measurement across all grid points."""
        return [m[key] for m in self.measurements]

    def rows(self) -> List[List[Any]]:
        if not self.measurements:
            return []
        keys = sorted(self.measurements[0])
        return [
            [value] + [m[k] for k in keys]
            for value, m in zip(self.values, self.measurements)
        ]

    def headers(self) -> List[str]:
        if not self.measurements:
            return [self.parameter]
        return [self.parameter] + sorted(self.measurements[0])

    # -- persistence -----------------------------------------------------------

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """Serialize as a JSON document (numpy scalars/arrays coerced).

        The inverse of :meth:`from_json`; what ``repro-fap sweep --out``
        writes and the benchmark suite diffs between runs.
        """
        payload = {
            "parameter": self.parameter,
            "values": [_jsonable(v) for v in self.values],
            "measurements": [
                {k: _jsonable(v) for k, v in m.items()} for m in self.measurements
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Rebuild a :class:`SweepResult` from :meth:`to_json` output."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or "parameter" not in payload:
            raise ValueError("not a serialized SweepResult document")
        return cls(
            parameter=str(payload["parameter"]),
            values=list(payload.get("values", [])),
            measurements=[dict(m) for m in payload.get("measurements", [])],
        )


def parameter_sweep(
    parameter: str,
    values: Iterable[Any],
    problem_factory: Callable[[Any], FileAllocationProblem],
    *,
    measure: Callable[..., Dict[str, Any]],
    initial_allocation=None,
    alpha: Optional[float] = 0.3,
    epsilon: float = 1e-4,
    max_iterations: int = 10_000,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
    warm_start: bool = False,
    engine: str = "reference",
) -> SweepResult:
    """Solve the problem at each grid point and collect measurements.

    Serial and in-process — lambdas and closures are fine.  For multi-core
    execution of the same grid see :func:`repro.parallel.sweep_parallel`,
    which returns identical measurements.

    Parameters
    ----------
    parameter, values:
        Name and grid of the swept quantity.
    problem_factory:
        Maps a grid value to a problem instance.  A factory accepting an
        ``rng`` keyword receives a deterministic per-task generator
        derived from ``seed`` and the grid index.
    measure:
        Maps ``(problem, result)`` to a dict of measurement columns.
    registry:
        Optional :class:`MetricsRegistry`; per-task solver metrics are
        aggregated into it, same as the pooled path.
    warm_start:
        Solve the grid in sorted-value order, seeding each point from its
        neighbor's converged allocation (continuation).  Nearby grid
        points have nearby optima, so each solve starts close and the
        total iteration count drops sharply on dense grids.  Measurement
        order, per-task seeds, and each point's converged solution (to
        within ``epsilon``) are unchanged; iteration counts are not.
    engine:
        Solver loop per grid point — ``"reference"`` or the fused
        ``"fast"`` path (see
        :meth:`~repro.core.algorithm.DecentralizedAllocator.run`).
    """
    values = list(values)
    # retries=0: a serial sweep's failures are deterministic — surface the
    # original exception immediately rather than re-running the grid point.
    executor = SweepExecutor(max_workers=0, retries=0, registry=registry)
    measurements = executor.run(
        make_tasks(values, seed=seed),
        problem_factory,
        measure,
        warm_start=warm_start,
        initial_allocation=initial_allocation,
        alpha=alpha,
        epsilon=epsilon,
        max_iterations=max_iterations,
        engine=engine,
    )
    return SweepResult(parameter=parameter, values=values, measurements=measurements)
