"""Generic parameter sweeps.

Beyond the paper's own figures, the benchmark suite sweeps ``k`` (the §8
"rationale for choosing k" question), ``mu``/``lambda`` load ratios, and
network families.  :func:`parameter_sweep` is the shared engine: build a
problem per grid point, solve it, collect whatever the caller measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List

from repro.core.algorithm import AllocationResult, DecentralizedAllocator
from repro.core.model import FileAllocationProblem


@dataclass
class SweepResult:
    """Rows of (parameter value, measurements) from one sweep."""

    parameter: str
    values: List[Any] = field(default_factory=list)
    measurements: List[Dict[str, Any]] = field(default_factory=list)

    def column(self, key: str) -> List[Any]:
        """One measurement across all grid points."""
        return [m[key] for m in self.measurements]

    def rows(self) -> List[List[Any]]:
        if not self.measurements:
            return []
        keys = sorted(self.measurements[0])
        return [
            [value] + [m[k] for k in keys]
            for value, m in zip(self.values, self.measurements)
        ]

    def headers(self) -> List[str]:
        if not self.measurements:
            return [self.parameter]
        return [self.parameter] + sorted(self.measurements[0])


def parameter_sweep(
    parameter: str,
    values: Iterable[Any],
    problem_factory: Callable[[Any], FileAllocationProblem],
    *,
    measure: Callable[[FileAllocationProblem, AllocationResult], Dict[str, Any]],
    initial_allocation=None,
    alpha: float = 0.3,
    epsilon: float = 1e-4,
    max_iterations: int = 10_000,
) -> SweepResult:
    """Solve the problem at each grid point and collect measurements.

    Parameters
    ----------
    parameter, values:
        Name and grid of the swept quantity.
    problem_factory:
        Maps a grid value to a problem instance.
    measure:
        Maps ``(problem, result)`` to a dict of measurement columns.
    """
    sweep = SweepResult(parameter=parameter)
    for value in values:
        problem = problem_factory(value)
        allocator = DecentralizedAllocator(
            problem, alpha=alpha, epsilon=epsilon, max_iterations=max_iterations
        )
        result = allocator.run(initial_allocation)
        sweep.values.append(value)
        sweep.measurements.append(measure(problem, result))
    return sweep
