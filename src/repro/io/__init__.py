"""Serialization: persist problems, allocations, and run results as JSON.

A deployment that runs the algorithm "occasionally at night" (§8) needs to
persist instances and results between sessions; these helpers give every
core object a stable, versioned JSON form.
"""

from repro.io.serialization import (
    multifile_problem_from_dict,
    multifile_problem_to_dict,
    allocation_result_to_dict,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    trace_to_dict,
)

__all__ = [
    "allocation_result_to_dict",
    "load_problem",
    "multifile_problem_from_dict",
    "multifile_problem_to_dict",
    "problem_from_dict",
    "problem_to_dict",
    "save_problem",
    "trace_to_dict",
]
