"""JSON (de)serialization for problems, traces, and results.

The schema is versioned (``"schema": "repro/fap-problem@1"``) so future
format changes can stay backward compatible.  Delay models are encoded by
type name and parameters; the supported set covers every model shipped in
:mod:`repro.queueing` (custom duck-typed models would need their own
encoder and are rejected with a clear error rather than pickled).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.algorithm import AllocationResult
from repro.core.model import FileAllocationProblem
from repro.core.trace import Trace
from repro.exceptions import ConfigurationError
from repro.queueing import (
    MD1Delay,
    MG1Delay,
    MM1Delay,
    MMcDelay,
    QuadraticOverloadDelay,
)

PROBLEM_SCHEMA = "repro/fap-problem@1"


def _encode_delay_model(model: object) -> Dict[str, Any]:
    if isinstance(model, QuadraticOverloadDelay):
        return {
            "type": "overload",
            "base": _encode_delay_model(model.base),
            "switch_utilization": model.switch_utilization,
        }
    if isinstance(model, MMcDelay):
        return {"type": "mmc", "mu": model.per_server_mu, "servers": model.servers}
    if isinstance(model, MD1Delay):
        return {"type": "md1", "mu": model.mu}
    if isinstance(model, MG1Delay):
        return {"type": "mg1", "mu": model.mu, "scv": model.scv}
    if isinstance(model, MM1Delay):
        return {"type": "mm1", "mu": model.mu}
    raise ConfigurationError(
        f"cannot serialize delay model of type {type(model).__name__}; "
        "supported: MM1Delay, MG1Delay, MD1Delay, MMcDelay, QuadraticOverloadDelay"
    )


def _decode_delay_model(data: Dict[str, Any]) -> object:
    kind = data.get("type")
    if kind == "mm1":
        return MM1Delay(data["mu"])
    if kind == "mg1":
        return MG1Delay(data["mu"], scv=data["scv"])
    if kind == "md1":
        return MD1Delay(data["mu"])
    if kind == "mmc":
        return MMcDelay(data["mu"], servers=data["servers"])
    if kind == "overload":
        return QuadraticOverloadDelay(
            _decode_delay_model(data["base"]),
            switch_utilization=data["switch_utilization"],
        )
    raise ConfigurationError(f"unknown delay model type {kind!r}")


def problem_to_dict(problem: FileAllocationProblem) -> Dict[str, Any]:
    """Encode a problem instance as a JSON-compatible dict.

    The originating topology, when present, is stored as its edge list so
    the round trip preserves routing-dependent features (the distributed
    runtime, failure re-optimization).
    """
    data: Dict[str, Any] = {
        "schema": PROBLEM_SCHEMA,
        "name": problem.name,
        "cost_matrix": problem.cost_matrix.tolist(),
        "access_rates": problem.access_rates.tolist(),
        "k": problem.k,
        "delay_models": [_encode_delay_model(m) for m in problem.delay_models],
    }
    if problem.topology is not None:
        data["topology"] = {
            "n": problem.topology.n,
            "name": problem.topology.name,
            "edges": [[u, v, c] for u, v, c in problem.topology.edges()],
        }
    return data


def problem_from_dict(data: Dict[str, Any]) -> FileAllocationProblem:
    """Rebuild a problem from :func:`problem_to_dict` output."""
    if data.get("schema") != PROBLEM_SCHEMA:
        raise ConfigurationError(
            f"unsupported schema {data.get('schema')!r}; expected {PROBLEM_SCHEMA}"
        )
    problem = FileAllocationProblem(
        np.asarray(data["cost_matrix"], dtype=float),
        np.asarray(data["access_rates"], dtype=float),
        k=float(data["k"]),
        delay_models=[_decode_delay_model(m) for m in data["delay_models"]],
        name=data.get("name", ""),
    )
    topo_data = data.get("topology")
    if topo_data is not None:
        from repro.network.topology import Topology

        topology = Topology(int(topo_data["n"]), name=topo_data.get("name", ""))
        for u, v, c in topo_data["edges"]:
            topology.add_edge(int(u), int(v), float(c))
        problem.topology = topology
    return problem


def save_problem(problem: FileAllocationProblem, path: Union[str, Path]) -> None:
    """Write a problem instance to a JSON file."""
    Path(path).write_text(json.dumps(problem_to_dict(problem), indent=2))


def load_problem(path: Union[str, Path]) -> FileAllocationProblem:
    """Read a problem instance from a JSON file."""
    return problem_from_dict(json.loads(Path(path).read_text()))


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Encode a trace (allocations, costs, spreads, alphas) for storage."""
    return {
        "schema": "repro/trace@1",
        "records": [
            {
                "iteration": r.iteration,
                "allocation": r.allocation.tolist(),
                "cost": r.cost,
                "gradient_spread": r.gradient_spread,
                "alpha": None if np.isnan(r.alpha) else r.alpha,
                "active_count": r.active_count,
            }
            for r in trace.records
        ],
    }


def allocation_result_to_dict(result: AllocationResult) -> Dict[str, Any]:
    """Encode a run result, trace included."""
    return {
        "schema": "repro/result@1",
        "allocation": result.allocation.tolist(),
        "cost": result.cost,
        "utility": result.utility,
        "iterations": result.iterations,
        "converged": result.converged,
        "trace": trace_to_dict(result.trace),
    }


MULTIFILE_SCHEMA = "repro/multifap-problem@1"


def multifile_problem_to_dict(problem) -> Dict[str, Any]:
    """Encode a :class:`~repro.core.multifile.MultiFileProblem`."""
    return {
        "schema": MULTIFILE_SCHEMA,
        "name": problem.name,
        "cost_matrix": problem.cost_matrix.tolist(),
        "access_rates": problem.access_rates.tolist(),
        "k": problem.k,
        "delay_models": [_encode_delay_model(m) for m in problem.delay_models],
    }


def multifile_problem_from_dict(data: Dict[str, Any]):
    """Rebuild a multi-file problem from its dict form."""
    from repro.core.multifile import MultiFileProblem

    if data.get("schema") != MULTIFILE_SCHEMA:
        raise ConfigurationError(
            f"unsupported schema {data.get('schema')!r}; expected {MULTIFILE_SCHEMA}"
        )
    return MultiFileProblem(
        np.asarray(data["cost_matrix"], dtype=float),
        np.asarray(data["access_rates"], dtype=float),
        k=float(data["k"]),
        delay_models=[_decode_delay_model(m) for m in data["delay_models"]],
        name=data.get("name", ""),
    )
