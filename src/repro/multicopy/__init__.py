"""Multiple copies of a file on a virtual ring (§7).

``m`` copies of the file are laid out contiguously ("end to end") around a
unidirectional virtual ring, so the file is contiguous as seen from any
node: walking clockwise from itself, a node assembles one complete copy by
taking each successive node's fragment until a full file has accumulated.
The resulting cost function is *discontinuous* in the allocation — link
costs pop in and out as fragments move — which is what makes this the
paper's hard case: gradient steps oscillate, and §7.3's alpha-decay
schedule plus cost-delta stopping is the remedy.

Modules: :mod:`layout` (who accesses whom, record intervals),
:mod:`cost` (the §7.2 cost model, including the paper's worked example),
:mod:`algorithm` (the oscillation-aware allocator),
:mod:`rounding` (§7.2's post-run cap at one whole copy per node).
"""

from repro.multicopy.algorithm import MultiCopyAllocator, MultiCopyResult
from repro.multicopy.copy_count import CopyCountEntry, CopyCountResult, optimal_copy_count
from repro.multicopy.cost import MultiCopyRingProblem
from repro.multicopy.embedding import (
    best_virtual_ring,
    nearest_neighbor_order,
    ring_circumference,
    two_opt_improve,
)
from repro.multicopy.fixtures import paper_figure8_rings, paper_worked_example
from repro.multicopy.layout import access_fractions, node_intervals
from repro.multicopy.readwrite import (
    ReadWriteRingProblem,
    optimal_copy_count_with_writes,
)
from repro.multicopy.rounding import cap_at_whole_copy

__all__ = [
    "MultiCopyAllocator",
    "MultiCopyResult",
    "CopyCountEntry",
    "CopyCountResult",
    "MultiCopyRingProblem",
    "ReadWriteRingProblem",
    "access_fractions",
    "best_virtual_ring",
    "cap_at_whole_copy",
    "nearest_neighbor_order",
    "node_intervals",
    "optimal_copy_count",
    "optimal_copy_count_with_writes",
    "paper_figure8_rings",
    "ring_circumference",
    "paper_worked_example",
    "two_opt_improve",
]
