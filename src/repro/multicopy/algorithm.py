"""The oscillation-aware multi-copy allocator (§7.3).

The same marginal-utility reallocation as §5.2 — with the constraint
``sum x = m`` instead of 1 — but the discontinuous ring cost makes a fixed
stepsize oscillate around the optimum, so:

* alpha follows the §7.3 decay schedule (cut after sustained
  non-improvement, i.e. observed oscillation);
* termination combines the cost-delta rule with a lowest-observed-cost
  window for the "pathological" communication-dominated rings;
* the *best allocation seen* is returned (the §7.3 fallback "halting when
  the cost is at the lowest observed point"), not the last iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.active_set import ScaledStep
from repro.core.stepsize import DecayOnOscillation
from repro.exceptions import ConfigurationError, StabilityError
from repro.multicopy.cost import MultiCopyRingProblem
from repro.obs.registry import MetricsRegistry
from repro.utils.numeric import spread
from repro.utils.validation import check_positive


@dataclass
class MultiCopyResult:
    """Outcome of a multi-copy allocation run."""

    #: The lowest-cost allocation observed during the run.
    allocation: np.ndarray
    cost: float
    #: The final iterate (may be worse than ``allocation`` when oscillating).
    last_allocation: np.ndarray
    last_cost: float
    iterations: int
    converged: bool
    cost_history: List[float] = field(default_factory=list)
    alpha_history: List[float] = field(default_factory=list)

    def oscillated(self, *, tol: float = 1e-12) -> bool:
        """True if the cost ever increased (monotonicity broke, §7.3)."""
        c = np.asarray(self.cost_history)
        return bool(np.any(np.diff(c) > tol))


class MultiCopyAllocator:
    """§5.2 reallocation over the discontinuous §7.2 ring cost.

    Parameters
    ----------
    problem:
        The :class:`~repro.multicopy.cost.MultiCopyRingProblem`.
    alpha:
        Initial stepsize (decayed on oscillation per §7.3).
    decay, patience:
        Alpha is multiplied by ``decay`` after ``patience`` consecutive
        non-improving iterations.
    epsilon:
        Gradient-spread tolerance — reaching it means genuine smooth-region
        convergence; oscillating runs stop on ``cost_tolerance`` instead.
    cost_tolerance:
        §7.3's halting rule: stop when successive costs differ by less
        than this.
    stall_window:
        Fallback: stop after this many iterations without a new best cost.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the
        stepper tallies iterations, α-decay events, oscillations
        (non-improving steps), and overload rejections.  Observational
        only — trajectories are identical with or without it.
    """

    def __init__(
        self,
        problem: MultiCopyRingProblem,
        *,
        alpha: float = 0.1,
        decay: float = 0.5,
        patience: int = 5,
        epsilon: float = 1e-3,
        cost_tolerance: float = 1e-7,
        stall_window: int = 50,
        max_iterations: int = 5_000,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.problem = problem
        self.alpha0 = check_positive(alpha, "alpha")
        self.decay = decay
        self.patience = patience
        self.epsilon = check_positive(epsilon, "epsilon")
        self.cost_tolerance = check_positive(cost_tolerance, "cost_tolerance")
        if stall_window < 1:
            raise ConfigurationError("stall_window must be >= 1")
        self.stall_window = int(stall_window)
        self.max_iterations = int(max_iterations)
        self.registry = registry
        self._policy = ScaledStep()

    def make_stepper(self) -> "MultiCopyStepper":
        """A fresh deterministic per-iteration engine with this
        allocator's configuration.

        The stepper is also what each simulated node replicates in the
        distributed runtime: identical configuration + identical inputs
        give identical state evolution at every node.
        """
        return MultiCopyStepper(self)

    def run(self, initial_allocation: Sequence[float]) -> MultiCopyResult:
        """Iterate from a feasible start (``sum x = m``)."""
        x = self.problem.check_feasible(initial_allocation).copy()
        stepper = self.make_stepper()
        stepper.observe_initial(x)
        while not stepper.finished:
            x = stepper.advance(x)
        return stepper.result()

    def __repr__(self) -> str:
        return f"MultiCopyAllocator(problem={self.problem.name!r}, alpha={self.alpha0:g})"


class MultiCopyStepper:
    """The §7.3 per-iteration state machine, extracted for reuse.

    Owns everything that evolves across iterations — the alpha-decay
    schedule, the best-seen allocation, the cost history, and the stopping
    logic — and exposes one deterministic transition,
    :meth:`advance`.  Both the centralized
    :meth:`MultiCopyAllocator.run` loop and each node of the distributed
    multi-copy runtime drive an instance of this class, which is what makes
    their trajectories provably identical.
    """

    def __init__(self, config: MultiCopyAllocator):
        self.config = config
        self.problem = config.problem
        self.registry = config.registry
        self._schedule = DecayOnOscillation(
            config.alpha0, decay=config.decay, patience=config.patience
        )
        self._policy = ScaledStep()
        self.iteration = 0
        self.finished = False
        self.converged = False
        self.cost_history: List[float] = []
        self.alpha_history: List[float] = []
        self._best_x: Optional[np.ndarray] = None
        self._best_cost = np.inf
        self._since_best = 0
        self._last_x: Optional[np.ndarray] = None
        self._last_cost = np.inf

    def observe_initial(self, x: np.ndarray) -> None:
        """Record the starting allocation (call once before advancing)."""
        cost = self.problem.cost(x)
        self.cost_history.append(cost)
        self._best_x, self._best_cost = np.asarray(x, float).copy(), cost
        self._last_x, self._last_cost = np.asarray(x, float).copy(), cost

    def advance(self, x: np.ndarray) -> np.ndarray:
        """One §7.3 iteration from ``x``; returns the next allocation.

        Sets :attr:`finished` when a stopping rule fires; afterwards
        :meth:`advance` must not be called again.
        """
        if self.finished:
            raise ConfigurationError("stepper already finished")
        x = np.asarray(x, dtype=float)
        self.iteration += 1
        if self.iteration > self.config.max_iterations:
            self.iteration = self.config.max_iterations
            self.finished = True
            return x
        g = self.problem.utility_gradient(x)
        if spread(g) < self.config.epsilon:
            self.converged = True
            self.finished = True
            self.iteration -= 1
            return x
        alpha = self._schedule.alpha(self.iteration, x, g, self.problem)
        self.alpha_history.append(alpha)
        reg = self.registry
        dx, _ = self._policy.apply(x, g, alpha)
        trial = np.maximum(x + dx, 0.0)
        try:
            trial_cost = self.problem.cost(trial)
        except StabilityError:
            # Overloaded trial: treat like an oscillation — decay and hold.
            self._schedule.notify_cost(self.iteration, np.inf)
            if reg is not None:
                reg.counter_inc("multicopy.overload_rejections")
                if self._schedule.current_alpha < alpha:
                    reg.counter_inc("multicopy.alpha_decays")
            return x
        prev_cost = self._last_cost
        self._last_x, self._last_cost = trial.copy(), trial_cost
        self.cost_history.append(trial_cost)
        self._schedule.notify_cost(self.iteration, trial_cost)
        if reg is not None:
            reg.counter_inc("multicopy.iterations")
            reg.observe("multicopy.alpha", alpha)
            if self._schedule.current_alpha < alpha:
                reg.counter_inc("multicopy.alpha_decays")
                reg.event(
                    "alpha_decay",
                    i=self.iteration,
                    alpha_from=alpha,
                    alpha_to=self._schedule.current_alpha,
                )
            if trial_cost > prev_cost + 1e-15:
                reg.counter_inc("multicopy.oscillations")
            reg.event(
                "multicopy_iteration", i=self.iteration, cost=trial_cost, alpha=alpha
            )
        if trial_cost < self._best_cost - 1e-15:
            self._best_x, self._best_cost = trial.copy(), trial_cost
            self._since_best = 0
        else:
            self._since_best += 1
        if abs(trial_cost - prev_cost) < self.config.cost_tolerance and self.iteration > 2:
            self.converged = True
            self.finished = True
        elif self._since_best >= self.config.stall_window:
            self.finished = True
        return trial

    def result(self) -> MultiCopyResult:
        """The accumulated outcome (valid once :attr:`finished`)."""
        assert self._best_x is not None and self._last_x is not None
        if self.registry is not None:
            self.registry.gauge_set("multicopy.best_cost", self._best_cost)
            self.registry.gauge_set("multicopy.final_cost", self._last_cost)
            self.registry.gauge_set("multicopy.converged", float(self.converged))
        return MultiCopyResult(
            allocation=self._best_x,
            cost=self._best_cost,
            last_allocation=self._last_x,
            last_cost=self._last_cost,
            iterations=self.iteration,
            converged=self.converged,
            cost_history=self.cost_history,
            alpha_history=self.alpha_history,
        )
