"""Choosing the number of copies (§8.2 future work).

"The most salient issue is: how many copies are optimal for the system?
i.e. what is the best value of m?  ...  the cost of storage and copy
maintenance will affect the optimal number of copies."

This module answers the question the way the paper frames it: sweep ``m``,
optimize the allocation for each ``m`` with the §7 allocator, and add a
storage/maintenance charge per copy.  More copies cut communication (reads
come from nearer fragments) and delay (traffic spreads over more queues),
with diminishing returns against the linear storage charge — the sweep
exposes the resulting interior optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.multicopy.algorithm import MultiCopyAllocator
from repro.multicopy.cost import MultiCopyRingProblem
from repro.network.virtual_ring import VirtualRing
from repro.utils.validation import check_nonnegative


@dataclass(frozen=True)
class CopyCountEntry:
    """Outcome for one candidate copy count."""

    copies: int
    access_cost: float
    storage_cost: float
    total_cost: float
    allocation: np.ndarray
    converged: bool


@dataclass
class CopyCountResult:
    """The full sweep plus the winner."""

    entries: List[CopyCountEntry]
    best: CopyCountEntry

    def rows(self) -> List[List[object]]:
        return [
            [
                e.copies,
                f"{e.access_cost:.4f}",
                f"{e.storage_cost:.4f}",
                f"{e.total_cost:.4f}",
                "*" if e.copies == self.best.copies else "",
            ]
            for e in self.entries
        ]

    HEADERS = ["m", "access cost", "storage cost", "total", "best"]


def optimal_copy_count(
    ring: VirtualRing,
    access_rates: Sequence[float],
    *,
    mu,
    k: float = 1.0,
    storage_cost_per_copy: float = 0.5,
    max_copies: Optional[int] = None,
    alpha: float = 0.05,
    iterations: int = 400,
) -> CopyCountResult:
    """Sweep ``m = 1 .. max_copies`` and pick the total-cost minimizer.

    Parameters
    ----------
    ring, access_rates, mu, k:
        The §7 model inputs.
    storage_cost_per_copy:
        The per-copy storage/maintenance charge the paper says must enter
        the trade-off.
    max_copies:
        Upper end of the sweep (default: the node count — beyond that, a
        capped allocation cannot even hold the copies).
    alpha, iterations:
        Budget for each per-``m`` optimization (the §7.3 decay schedule is
        used, and the best-seen allocation is scored).
    """
    rates = np.asarray(access_rates, dtype=float)
    storage_cost_per_copy = check_nonnegative(
        storage_cost_per_copy, "storage_cost_per_copy"
    )
    n = ring.n
    cap = n if max_copies is None else int(max_copies)
    if not 1 <= cap <= n:
        raise ConfigurationError(
            f"max_copies must be in [1, {n}] for an {n}-node ring, got {cap}"
        )

    entries: List[CopyCountEntry] = []
    for m in range(1, cap + 1):
        problem = MultiCopyRingProblem(
            ring, rates, copies=m, k=k, mu=mu, name=f"copy-sweep-m{m}"
        )
        # Even start: every node holds m/n of the mass.
        x0 = np.full(n, m / n)
        result = MultiCopyAllocator(
            problem, alpha=alpha, max_iterations=iterations
        ).run(x0)
        access = result.cost
        storage = storage_cost_per_copy * m
        entries.append(
            CopyCountEntry(
                copies=m,
                access_cost=access,
                storage_cost=storage,
                total_cost=access + storage,
                allocation=result.allocation,
                converged=result.converged,
            )
        )
    best = min(entries, key=lambda e: e.total_cost)
    return CopyCountResult(entries=entries, best=best)
