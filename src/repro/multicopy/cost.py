"""The §7.2 multi-copy ring cost model.

With access matrix ``a[j, i]`` from the clockwise-assembly protocol
(:func:`~repro.multicopy.layout.access_fractions`):

* node ``i`` receives access traffic ``Lambda_i = sum_j lambda_j a[j, i]``
  (the paper's worked example: 0.1 + 0.3 + 0.7 + 0.8 + 0.8 = 2.7);
* the communication cost charged to node ``i`` is
  ``sum_j lambda_j a[j, i] d(j, i)`` with ``d`` the clockwise ring distance
  (the worked example: 11*0.1 + 7*0.3 + 5*0.7 + 2*0.8 + 0*0.8 = 8.3);
* the delay cost is ``k * Lambda_i * T_i(Lambda_i)`` — the "same M/M/1
  formulation described earlier" applied to the aggregated traffic.

The total ``C(x) = sum_i [comm_i + k Lambda_i T_i(Lambda_i)]`` is
*piecewise* smooth: as the allocation shifts, readers' walks gain or lose
whole ring links and the partial derivatives jump — the discontinuities
§7.2 identifies as "the crux of the difficulty".  Gradients are therefore
computed by feasible finite differences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError, InfeasibleAllocationError
from repro.multicopy.layout import access_fractions
from repro.network.virtual_ring import VirtualRing
from repro.queueing.mm1 import MM1Delay
from repro.utils.validation import check_positive


class MultiCopyRingProblem:
    """``m`` copies of one file on a unidirectional virtual ring.

    Parameters
    ----------
    ring:
        The :class:`~repro.network.virtual_ring.VirtualRing`.
    access_rates:
        Per-node access generation rates ``lambda_j``.
    copies:
        Number of copies ``m >= 1``; the feasible set is
        ``sum x = m, x >= 0`` (a node *may* exceed one whole copy during
        optimization — §7.2 explains why that is deliberate; cap it
        afterwards with :func:`~repro.multicopy.rounding.cap_at_whole_copy`).
    k, mu, delay_models:
        As in the single-copy model.  Note a node can attract up to the
        *total* network rate here, so stability needs
        ``mu > sum_j lambda_j`` (or an overload-capable delay model).
    """

    def __init__(
        self,
        ring: VirtualRing,
        access_rates: Sequence[float],
        *,
        copies: int = 2,
        k: float = 1.0,
        mu: Union[float, Sequence[float], None] = None,
        delay_models: Optional[Sequence[object]] = None,
        name: str = "",
    ):
        self.ring = ring
        n = ring.n
        rates = np.asarray(access_rates, dtype=float)
        if rates.shape != (n,):
            raise ConfigurationError(f"need {n} access rates, got shape {rates.shape}")
        if np.any(rates < 0) or rates.sum() <= 0:
            raise ConfigurationError("access rates must be non-negative, positive total")
        if int(copies) != copies or copies < 1:
            raise ConfigurationError(f"copies must be a positive integer, got {copies!r}")
        self.n = n
        self.access_rates = rates
        self.total_rate = float(rates.sum())
        self.copies = int(copies)
        self.k = check_positive(k, "k")
        self.name = name or f"multicopy-ring-{n}-m{copies}"
        self.distance = ring.distance_matrix()

        if delay_models is not None:
            models = list(delay_models)
            if len(models) != n:
                raise ConfigurationError(f"need {n} delay models, got {len(models)}")
        else:
            if mu is None:
                raise ConfigurationError("provide either mu or delay_models")
            mus = np.broadcast_to(np.asarray(mu, dtype=float), (n,)).copy()
            for i, m_i in enumerate(mus):
                check_positive(float(m_i), f"mu[{i}]")
            models = [MM1Delay(float(m_i)) for m_i in mus]
        self.delay_models: List[object] = models

    # -- feasibility --------------------------------------------------------

    def check_feasible(self, x, *, atol: float = 1e-8) -> np.ndarray:
        """``x >= 0`` and ``sum x == m``."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.n,):
            raise InfeasibleAllocationError(
                f"allocation shape {arr.shape}, expected ({self.n},)"
            )
        if np.any(arr < -atol):
            raise InfeasibleAllocationError(f"negative fractions: min={arr.min()}")
        if abs(arr.sum() - self.copies) > atol:
            raise InfeasibleAllocationError(
                f"allocation sums to {arr.sum()!r}, expected m={self.copies}"
            )
        return arr

    # -- evaluation -------------------------------------------------------------

    def access_matrix(self, x) -> np.ndarray:
        """``a[j, i]`` under the clockwise-assembly protocol."""
        return access_fractions(self.ring, np.asarray(x, dtype=float))

    def node_arrivals(self, x) -> np.ndarray:
        """``Lambda_i = sum_j lambda_j a[j, i]``."""
        return self.access_rates @ self.access_matrix(x)

    def communication_cost_per_node(self, x) -> np.ndarray:
        """``comm_i = sum_j lambda_j a[j, i] d(j, i)`` (the 8.3 of §7.2)."""
        a = self.access_matrix(x)
        return np.einsum("j,ji,ji->i", self.access_rates, a, self.distance)

    def cost(self, x) -> float:
        """Total system cost: communication plus queueing delay."""
        a = self.access_matrix(x)
        arrivals = self.access_rates @ a
        comm = float(np.einsum("j,ji,ji->", self.access_rates, a, self.distance))
        delay = 0.0
        for model, lam_i in zip(self.delay_models, arrivals):
            if lam_i > 0:
                delay += lam_i * model.sojourn_time(float(lam_i))
        return comm + self.k * delay

    def utility(self, x) -> float:
        return -self.cost(x)

    def cost_gradient(self, x, *, h: float = 1e-6) -> np.ndarray:
        """Finite-difference partials ``dC/dx_i``.

        Central differences where both perturbations stay non-negative,
        one-sided at the ``x_i = 0`` boundary.  Near a layout discontinuity
        the value reflects the local piece's slope (or the jump, when the
        stencil straddles it) — the behaviour driving §7.3's oscillations.
        """
        base = np.asarray(x, dtype=float)
        grad = np.empty(self.n)
        for i in range(self.n):
            hi = base.copy()
            hi[i] += h
            if base[i] >= h:
                lo = base.copy()
                lo[i] -= h
                grad[i] = (self.cost(hi) - self.cost(lo)) / (2.0 * h)
            else:
                grad[i] = (self.cost(hi) - self.cost(base)) / h
        return grad

    def utility_gradient(self, x, *, h: float = 1e-6) -> np.ndarray:
        return -self.cost_gradient(x, h=h)

    def __repr__(self) -> str:
        return (
            f"MultiCopyRingProblem(name={self.name!r}, n={self.n}, "
            f"m={self.copies}, k={self.k:g})"
        )
