"""Choosing the virtual-ring ordering for an arbitrary network (§7.2/§8.2).

A virtual ring "is constructed from an arbitrary network by imposing an
ordering on the nodes"; the paper leaves open which ordering to impose and
notes the restriction "may be construed as too severe" (§8.2).  The
natural objective is the ring's circumference — the sum of successor-hop
costs, each hop being a least-cost route in the underlying network —
because every §7 access walks clockwise: a shorter lap means cheaper
assembly for every reader.  Minimizing the circumference over orderings is
exactly the traveling-salesman problem on the shortest-path metric, so we
provide the standard heuristics:

* :func:`nearest_neighbor_order` — greedy construction;
* :func:`two_opt_improve` — local search by segment reversal;
* :func:`best_virtual_ring` — nearest-neighbor from every start, then
  2-opt, returning the cheapest embedding.

On a physical ring the natural order is recovered exactly (tested), and
the benchmark shows a good embedding materially cuts the optimized §7
cost on irregular networks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import TopologyError
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.network.topology import Topology
from repro.network.virtual_ring import VirtualRing


def ring_circumference(distances: np.ndarray, order: Sequence[int]) -> float:
    """Total lap cost of visiting ``order`` cyclically under a metric."""
    order = list(order)
    return float(
        sum(distances[order[i], order[(i + 1) % len(order)]] for i in range(len(order)))
    )


def nearest_neighbor_order(distances: np.ndarray, start: int = 0) -> List[int]:
    """Greedy tour: repeatedly hop to the nearest unvisited node."""
    n = distances.shape[0]
    if not 0 <= start < n:
        raise TopologyError(f"start node {start} out of range")
    unvisited = set(range(n))
    order = [start]
    unvisited.discard(start)
    while unvisited:
        here = order[-1]
        nxt = min(unvisited, key=lambda v: (distances[here, v], v))
        order.append(nxt)
        unvisited.discard(nxt)
    return order


def two_opt_improve(
    distances: np.ndarray, order: Sequence[int], *, max_passes: int = 50
) -> List[int]:
    """2-opt local search: reverse segments while that shortens the lap.

    Terminates at a local optimum of the reversal neighbourhood (or after
    ``max_passes`` full sweeps).
    """
    order = list(order)
    n = len(order)
    for _ in range(max_passes):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n if i > 0 else n - 1):
                a, b = order[i], order[(i + 1) % n]
                c, d = order[j], order[(j + 1) % n]
                delta = (
                    distances[a, c] + distances[b, d]
                    - distances[a, b] - distances[c, d]
                )
                if delta < -1e-12:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return order


def best_virtual_ring(
    topology: Topology,
    *,
    starts: Optional[Sequence[int]] = None,
    two_opt: bool = True,
) -> VirtualRing:
    """The cheapest virtual-ring embedding the heuristics can find.

    Runs nearest-neighbor from each start (default: every node), optionally
    polishes with 2-opt, and embeds the winner with
    :meth:`~repro.network.virtual_ring.VirtualRing.from_topology`.
    """
    if topology.n < 3:
        raise TopologyError("a virtual ring needs at least 3 nodes")
    distances = all_pairs_shortest_paths(topology)
    candidates = range(topology.n) if starts is None else starts
    best_order: Optional[List[int]] = None
    best_cost = np.inf
    for start in candidates:
        order = nearest_neighbor_order(distances, start)
        if two_opt:
            order = two_opt_improve(distances, order)
        cost = ring_circumference(distances, order)
        if cost < best_cost:
            best_cost = cost
            best_order = order
    assert best_order is not None
    return VirtualRing.from_topology(topology, best_order)
