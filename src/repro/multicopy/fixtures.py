"""Paper-defined multi-copy configurations.

The §7.2 worked example is the only fully quantified multi-copy instance in
the paper (figure 7's ring with the cost arithmetic
``11*0.1 + 7*0.3 + 5*0.7 + 2*0.8 + 0*0.8 = 8.3`` and arrival rate 2.7 at
node 4), so it doubles as the fidelity anchor for the whole §7
implementation.  The hop costs and allocation below are reverse-engineered
from that arithmetic:

* clockwise distances to node 4: ``d(3,4)=2, d(2,4)=5, d(1,4)=7, d(7,4)=11``
  give hop costs ``1->2: 2, 2->3: 3, 3->4: 2, 7->1: 4`` (the unconstrained
  hops 4->5, 5->6, 6->7 are taken as 1);
* the amounts read from node 4 (0.8 by nodes 3 and 4 itself, 0.7 by 2,
  0.3 by 1, 0.1 by 7) pin ``x = (0.4, 0.1, 0.2, 0.8, ...)`` with the
  remaining 0.5 of the two copies split over nodes 5-7 (any split with
  ``x_5 + x_6 + x_7 = 0.5`` reproduces the example; we use 0.2/0.1/0.2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.multicopy.cost import MultiCopyRingProblem
from repro.network.virtual_ring import VirtualRing

#: Hop costs, position p -> p+1, for the figure-7 seven-node ring.
WORKED_EXAMPLE_HOP_COSTS = (2.0, 3.0, 2.0, 1.0, 1.0, 1.0, 4.0)

#: The allocation of the worked example (two copies, nodes 1..7 -> 0..6).
WORKED_EXAMPLE_ALLOCATION = (0.4, 0.1, 0.2, 0.8, 0.2, 0.1, 0.2)

#: Node "4" of the paper's 1-based prose is index 3.
WORKED_EXAMPLE_TARGET_NODE = 3

#: The two §7.2 arithmetic anchors.
WORKED_EXAMPLE_COMM_COST = 8.3
WORKED_EXAMPLE_ARRIVAL = 2.7


def paper_worked_example(
    *, mu: float = 8.0, k: float = 1.0
) -> Tuple[MultiCopyRingProblem, np.ndarray]:
    """The §7.2 worked-example instance: ``(problem, allocation)``.

    ``mu`` defaults high enough to keep node 4 stable under its 2.7
    arrival rate with margin (the paper leaves it unspecified).
    """
    ring = VirtualRing(WORKED_EXAMPLE_HOP_COSTS)
    problem = MultiCopyRingProblem(
        ring,
        np.ones(ring.n),
        copies=2,
        k=k,
        mu=mu,
        name="paper-worked-example",
    )
    return problem, np.asarray(WORKED_EXAMPLE_ALLOCATION, dtype=float)


def paper_figure8_rings(*, mu: float = 6.0, k: float = 1.0, copies: int = 2):
    """The two §7.3 four-node rings: link costs (4,1,1,1) vs (1,1,1,1).

    Returns ``(comm_dominated, delay_dominated)`` problems.  With unit link
    costs the delay term dominates; with the 4-cost link, communication
    dominates and the §7.3 oscillation appears.  The paper leaves ``mu``
    and the per-node rates unspecified; we use unit rates and an ``mu``
    comfortably above the total rate of 4.
    """
    rates = np.ones(4)
    comm = MultiCopyRingProblem(
        VirtualRing((4.0, 1.0, 1.0, 1.0)),
        rates,
        copies=copies,
        k=k,
        mu=mu,
        name="fig8-comm-dominated",
    )
    delay = MultiCopyRingProblem(
        VirtualRing((1.0, 1.0, 1.0, 1.0)),
        rates,
        copies=copies,
        k=k,
        mu=mu,
        name="fig8-delay-dominated",
    )
    return comm, delay
