"""Contiguous copy layout on the ring: who accesses whom, and which records
live where.

The §7.2 protocol: copies are placed end to end clockwise, so "the file is
contiguous at any node ... node 1 sees the file starting at itself and
extending up to node 4".  Operationally, node ``j`` satisfies its accesses
by walking clockwise from itself, taking each node's fragment until one
complete copy (a total fraction of 1) has been assembled — its own fragment
first, at zero communication cost.

:func:`access_fractions` computes the resulting access matrix
``a[j, i]`` = fraction of the file node ``j`` reads from node ``i`` (also
the probability one of ``j``'s accesses is directed at ``i``).  The paper's
worked example (communication cost 8.3, arrival rate 2.7 at node 4 of the
figure-7 ring) is reproduced from this matrix in the test suite.

:func:`node_intervals` gives the record-space view: the cyclic interval of
the unit file each ring position holds, from which the walking rule's
correctness (every walk collects exactly the missing records) is a provable
— and property-tested — consequence.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import InfeasibleAllocationError
from repro.network.virtual_ring import VirtualRing


def access_fractions(ring: VirtualRing, allocation, *, slack: float = 1e-4) -> np.ndarray:
    """The access matrix ``a[j, i]`` under the clockwise-assembly protocol.

    Parameters
    ----------
    ring:
        The virtual ring (defines the clockwise order).
    allocation:
        Per-node file fractions ``x`` with ``sum(x) = m >= 1``.  A node
        holding more than a whole copy serves at most 1 to any reader
        (the reader stops once its copy is complete).
    slack:
        Tolerated assembly deficit: total mass as low as ``1 - slack`` is
        accepted (readers then collect ``sum(x)`` instead of exactly 1).
        Needed because the finite-difference gradient of the §7 cost
        probes points a stencil-width off the ``sum(x) = m`` surface.

    Returns
    -------
    ``(n, n)`` array with ``sum_i a[j, i] == min(1, sum(x))`` per reader.
    """
    x = np.asarray(allocation, dtype=float)
    n = ring.n
    if x.shape != (n,):
        raise InfeasibleAllocationError(f"allocation shape {x.shape}, expected ({n},)")
    if np.any(x < -1e-12):
        raise InfeasibleAllocationError(f"negative fractions: min={x.min()}")
    if x.sum() < 1.0 - slack:
        raise InfeasibleAllocationError(
            f"total file mass {x.sum():g} < 1: no complete copy exists on the ring"
        )
    a = np.zeros((n, n))
    for j in range(n):
        need = 1.0
        for i in ring.forward_sequence(j):
            take = min(max(x[i], 0.0), need)
            a[j, i] = take
            need -= take
            if need <= 1e-15:
                break
    return a


def node_intervals(ring: VirtualRing, allocation) -> List[List[Tuple[float, float]]]:
    """Record-space intervals per node under the end-to-end layout.

    The unit file is wrapped ``m`` times around the ring: walking clockwise
    from ring position 0, each node receives the next ``x_i`` of record
    space, modulo 1.  Returns, for each *node id*, a list of
    ``[start, end)`` intervals in ``[0, 1)`` (a fragment that crosses the
    1.0 boundary is split in two; a node holding a whole copy or more gets
    ``[(0.0, 1.0)]``).
    """
    x = np.asarray(allocation, dtype=float)
    n = ring.n
    if x.shape != (n,):
        raise InfeasibleAllocationError(f"allocation shape {x.shape}, expected ({n},)")
    intervals: List[List[Tuple[float, float]]] = [[] for _ in range(n)]
    offset = 0.0
    for node in ring.forward_sequence(ring.order[0]):
        frac = float(max(x[node], 0.0))
        if frac <= 0.0:
            continue
        if frac >= 1.0:
            intervals[node] = [(0.0, 1.0)]
        else:
            start = offset % 1.0
            end = start + frac
            if end <= 1.0:
                intervals[node].append((start, end))
            else:
                intervals[node].append((start, 1.0))
                intervals[node].append((0.0, end - 1.0))
        offset += frac
    return intervals


def coverage_from(ring: VirtualRing, allocation, reader: int) -> float:
    """Total unique record mass the reader's clockwise walk collects —
    equals 1 whenever a complete copy exists (test helper)."""
    a = access_fractions(ring, allocation)
    return float(a[reader].sum())
