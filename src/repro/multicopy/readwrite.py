"""Reads vs writes under replication (§8.2 future work).

"Since there are copies of files we may wish to include consistency and
concurrency control costs and distinguish between reads and writes."

With ``m`` contiguous copies on the ring, a *read* is served by the first
copy assembled clockwise (the §7.2 protocol), but a *write* must reach
**every** replica of the addressed record to keep the copies consistent
(write-all).  With uniform record addressing, the expected write cost from
node ``j`` is the record-average of the summed distances to all holders:

    W_j = ∫₀¹ Σ_{h ∈ holders(p)} d(j, h) dp
        = Σ_i |records held by i| · d(j, i)  =  Σ_i min(x_i, 1) · d(j, i)

(the end-to-end layout gives node ``i`` measure ``min(x_i, 1)`` of record
space across all copies — a node holding more than one whole copy stores
each record at most once).  Write traffic also multiplies queueing load:
every write from anyone lands on *every* replica holder.

:class:`ReadWriteRingProblem` mixes the two at a write fraction ``w``:

    C(x) = (1 - w)·C_read(x) + w·C_write(x)

and exposes the classic replication tension, quantified by the tests and
``bench_copy_count``-style sweeps: more copies make reads cheaper but
writes dearer, so the optimal copy count *decreases* with the write
fraction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.multicopy.cost import MultiCopyRingProblem
from repro.utils.validation import check_in_range


class ReadWriteRingProblem(MultiCopyRingProblem):
    """§7 ring replication with a read/write traffic mix.

    Parameters
    ----------
    ring, access_rates, copies, k, mu, delay_models:
        As for :class:`~repro.multicopy.cost.MultiCopyRingProblem`.
        ``access_rates`` are total (read + write) rates per node.
    write_fraction:
        Fraction ``w`` of each node's accesses that are writes
        (``w = 0`` recovers the read-only §7 model exactly).
    """

    def __init__(
        self,
        ring,
        access_rates,
        *,
        copies: int = 2,
        k: float = 1.0,
        mu=None,
        delay_models: Optional[Sequence[object]] = None,
        write_fraction: float = 0.0,
        name: str = "",
    ):
        super().__init__(
            ring,
            access_rates,
            copies=copies,
            k=k,
            mu=mu,
            delay_models=delay_models,
            name=name or f"rw-ring-m{copies}",
        )
        self.write_fraction = check_in_range(
            write_fraction, "write_fraction", 0.0, 1.0
        )

    # -- write-side quantities ---------------------------------------------

    def replica_measure(self, x) -> np.ndarray:
        """Record-space measure each node stores: ``min(x_i, 1)``."""
        arr = np.asarray(x, dtype=float)
        return np.minimum(np.maximum(arr, 0.0), 1.0)

    def write_comm_cost(self, x) -> float:
        """Expected write shipping cost per unit time.

        ``sum_j lambda_j^w sum_i min(x_i, 1) d(j, i)`` — every write must
        reach every node holding a replica of the addressed record.
        """
        measure = self.replica_measure(x)
        write_rates = self.write_fraction * self.access_rates
        return float(write_rates @ self.distance @ measure)

    def write_arrivals(self, x) -> np.ndarray:
        """Write traffic landing on each node: all writes hit every
        replica it stores."""
        total_write_rate = self.write_fraction * self.total_rate
        return total_write_rate * self.replica_measure(x)

    # -- combined cost ---------------------------------------------------------

    def node_arrivals(self, x) -> np.ndarray:
        """Reads via the §7.2 walk (at the read share of traffic) plus
        write-all replication traffic."""
        read_share = 1.0 - self.write_fraction
        read_arrivals = read_share * (self.access_rates @ self.access_matrix(x))
        return read_arrivals + self.write_arrivals(x)

    def cost(self, x) -> float:
        read_share = 1.0 - self.write_fraction
        a = self.access_matrix(x)
        read_comm = read_share * float(
            np.einsum("j,ji,ji->", self.access_rates, a, self.distance)
        )
        arrivals = self.node_arrivals(x)
        delay = 0.0
        for model, lam_i in zip(self.delay_models, arrivals):
            if lam_i > 0:
                delay += lam_i * model.sojourn_time(float(lam_i))
        return read_comm + self.write_comm_cost(x) + self.k * delay

    def __repr__(self) -> str:
        return (
            f"ReadWriteRingProblem(name={self.name!r}, n={self.n}, "
            f"m={self.copies}, w={self.write_fraction:g})"
        )


def optimal_copy_count_with_writes(
    ring,
    access_rates,
    *,
    mu,
    k: float = 1.0,
    write_fraction: float = 0.0,
    storage_cost_per_copy: float = 0.0,
    max_copies: Optional[int] = None,
    alpha: float = 0.05,
    iterations: int = 300,
):
    """The §8.2 copy-count sweep under a read/write mix.

    Same contract as :func:`~repro.multicopy.copy_count.optimal_copy_count`
    but each candidate ``m`` is evaluated under write-all replication —
    the sweep that shows the optimal ``m`` shrinking as ``write_fraction``
    grows.
    """
    from repro.multicopy.algorithm import MultiCopyAllocator
    from repro.multicopy.copy_count import CopyCountEntry, CopyCountResult

    rates = np.asarray(access_rates, dtype=float)
    n = ring.n
    cap = n if max_copies is None else int(max_copies)
    if not 1 <= cap <= n:
        raise ConfigurationError(f"max_copies must be in [1, {n}], got {cap}")

    entries = []
    for m in range(1, cap + 1):
        problem = ReadWriteRingProblem(
            ring,
            rates,
            copies=m,
            k=k,
            mu=mu,
            write_fraction=write_fraction,
            name=f"rw-sweep-m{m}",
        )
        x0 = np.full(n, m / n)
        result = MultiCopyAllocator(
            problem, alpha=alpha, max_iterations=iterations
        ).run(x0)
        storage = storage_cost_per_copy * m
        entries.append(
            CopyCountEntry(
                copies=m,
                access_cost=result.cost,
                storage_cost=storage,
                total_cost=result.cost + storage,
                allocation=result.allocation,
                converged=result.converged,
            )
        )
    best = min(entries, key=lambda e: e.total_cost)
    return CopyCountResult(entries=entries, best=best)
