"""Post-optimization capping at one whole copy per node (§7.2).

The reallocation algorithm "simply reallocates the resources within the
system and has no control on the amount of resource", so a node can end up
holding more than a whole file (e.g. 1.7 copies at the one fast-service
node).  Such an allocation "is no better than an allocation of 1.0", and
the paper prescribes fixing it *after* the algorithm has run, "when the
system is about to actually distribute the files".
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InfeasibleAllocationError


def cap_at_whole_copy(allocation, *, max_rounds: int = 100) -> np.ndarray:
    """Clamp every share to at most 1.0, redistributing the excess.

    Excess mass is handed to uncapped nodes proportionally to their current
    shares (nodes already near a whole copy may themselves cap, hence the
    rounds).  Total mass, and therefore the number of copies, is preserved.

    Raises :class:`~repro.exceptions.InfeasibleAllocationError` when the
    number of copies exceeds the number of nodes (no capped allocation can
    exist).
    """
    x = np.asarray(allocation, dtype=float).copy()
    if np.any(x < -1e-12):
        raise InfeasibleAllocationError(f"negative fractions: min={x.min()}")
    total = x.sum()
    if total > x.size + 1e-9:
        raise InfeasibleAllocationError(
            f"{total:g} copies over {x.size} nodes cannot be capped at 1 each"
        )
    for _ in range(max_rounds):
        over = x > 1.0
        if not np.any(over):
            return x
        excess = float((x[over] - 1.0).sum())
        x[over] = 1.0
        under = x < 1.0
        weights = x[under]
        if weights.sum() <= 0:
            # All remaining capacity is in zero-share nodes: spread evenly
            # over their available headroom.
            headroom = 1.0 - x[under]
            x[under] += excess * headroom / headroom.sum()
        else:
            x[under] += excess * weights / weights.sum()
    # Remaining overshoot is round-off level by now.
    return np.minimum(x, 1.0)
