"""repro.net — the sharded socket transport over the allocation service.

PR 4 made allocation a *service* (:mod:`repro.service`: micro-batching,
solution cache, admission control), but only in-process or over
stdin/stdout — one client owned the cache and batcher.  This subsystem
puts that service behind a TCP front end and scales it across worker
processes without giving up what makes the service fast:

* :class:`NetServer` — one :mod:`selectors` event-loop thread owns every
  socket; each connection speaks the **binary codec**
  (:mod:`repro.net.binary`: struct-packed headers, raw float64 bodies)
  or the **JSON codec** (length-prefixed frames, the exact
  ``repro-fap serve`` wire format) — sniffed from the first bytes, so
  both kinds share one listener.  Requests route through a
  :class:`ShardRouter` into *bounded* shard queues dispatched to worker
  processes, each running its own
  :class:`~repro.service.AllocationService` + cache; a full queue
  answers with a structured ``overloaded`` rejection;
* :class:`ShardRouter` — partitions by the problem's structural
  fingerprint, so repeats hit the cache that stored them and same-shape
  requests micro-batch together (``policy="random"`` is the
  locality-free baseline the benchmarks compare against);
* :class:`NetClient` — connection pooling, request pipelining
  (:meth:`~NetClient.request_many`: many frames in flight per
  connection, responses matched by request id), per-request deadlines,
  one bounded retry budget, optional shared-secret HMAC authentication;
  typed and dict-shaped surfaces mirroring
  :class:`~repro.service.ServiceClient`;
* :class:`GossipAgent` (:mod:`repro.net.gossip`) — with ``--peers``,
  servers form a static mesh and epidemically replicate their
  :class:`LookasideTier` donor records: rumor pushes spread fresh
  converged solutions in one round, periodic digest/pull anti-entropy
  repairs whatever rumors missed, all under a bytes/second budget.
  Records carry TTL, origin server id and a per-key epoch
  (newest-epoch-wins), so one server's convergence becomes every
  server's warm start.

Robustness is part of the contract: SIGTERM drains gracefully
(in-flight work finishes; queued work gets structured ``shutting_down``
rejections), a crashed worker is respawned with in-band
``worker_restarted`` errors for exactly the requests it took down, and
the ``stats`` control verb merges every worker's ``service.*`` metrics
with the server's ``net.*`` family.

Quick start::

    from repro.net import NetServer, NetClient

    with NetServer(port=0, workers=2) as server:
        host, port = server.address
        with NetClient(host, port) as client:
            client.solve_payload({
                "id": "r1",
                "problem": {"topology": "ring", "nodes": 4, "mu": 1.5},
                "alpha": 0.3,
            })                      # same dict repro-fap serve would print
            client.stats()          # merged service.* + net.* metrics

``repro-fap net-serve`` / ``repro-fap net-solve`` are the CLI faces;
docs/COOKBOOK.md ("Serving over the network") and docs/PERFORMANCE.md
(measured scaling and shard-affinity numbers) cover operation.
"""

from repro.net.binary import (
    BINARY_MAGIC,
    BINARY_VERSION,
    BinaryFrameError,
    BinaryFrameReader,
    decode_binary_frames,
    encode_binary_frame,
    send_binary_frame,
)
from repro.net.client import (
    CLIENT_CODECS,
    NetAuthError,
    NetClient,
    NetConnectionError,
    NetError,
    NetTimeout,
)
from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    decode_frames,
    encode_frame,
    send_frame,
)
from repro.net.gossip import GOSSIP_OPS, GossipAgent
from repro.net.lookaside import (
    LookasideTier,
    donor_record,
    params_from_payload,
    wire_record,
)
from repro.net.peers import PeerState, parse_peers
from repro.net.router import ShardRouter, shard_of_key
from repro.net.server import (
    REJECT_OVERLOADED,
    REJECT_SHUTTING_DOWN,
    SERVER_CODECS,
    NetServer,
)
from repro.net.worker import WorkerConfig, WorkerCrashed, WorkerHandle, worker_main

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryFrameError",
    "BinaryFrameReader",
    "CLIENT_CODECS",
    "FrameError",
    "FrameReader",
    "GOSSIP_OPS",
    "GossipAgent",
    "LookasideTier",
    "MAX_FRAME_BYTES",
    "NetAuthError",
    "NetClient",
    "NetConnectionError",
    "NetError",
    "NetServer",
    "NetTimeout",
    "PeerState",
    "REJECT_OVERLOADED",
    "REJECT_SHUTTING_DOWN",
    "SERVER_CODECS",
    "ShardRouter",
    "WorkerConfig",
    "WorkerCrashed",
    "WorkerHandle",
    "decode_binary_frames",
    "decode_frames",
    "donor_record",
    "encode_binary_frame",
    "encode_frame",
    "params_from_payload",
    "parse_peers",
    "send_binary_frame",
    "send_frame",
    "shard_of_key",
    "wire_record",
    "worker_main",
]
