"""The binary wire codec: struct-packed frames, ``np.frombuffer`` bodies.

The JSON framing (:mod:`repro.net.framing`) spends most of a request's
wall clock turning float64 arrays into decimal strings and back.  This
module is the same frame stream with that cost removed:

* every frame starts with a **struct-packed header** —
  ``magic (4s) | version (B) | kind (B) | flags (H) | request id (Q) |
  body length (I)`` in little-endian byte order — so a reader always
  knows where the next frame begins without scanning for a delimiter;
* the **request id** is a transport-level correlation number: a
  pipelining client stamps each outgoing frame and matches responses by
  the echoed id, so many frames can be in flight per connection and the
  server may answer out of order (shards finish when they finish);
* solve requests and completed solves travel as **packed bodies**: the
  scalar fields in one struct, the float64 arrays (cost matrix, access
  rates, service rates, starting/served allocation) as raw little-endian
  bytes decoded with ``np.frombuffer`` — no per-element Python objects
  on the hot path;
* everything else (control verbs, hellos, errors, rejections, payloads
  with fields the packed layout does not know) rides as
  :data:`KIND_JSON` — a JSON body inside a binary frame — so the binary
  connection can carry *any* dict the JSON protocol can;
* the gossip mesh (:mod:`repro.net.gossip`) reuses the same 20-byte
  header: :data:`KIND_GOSSIP_DIGEST` and :data:`KIND_GOSSIP_PULL` carry
  compact JSON control bodies, while :data:`KIND_GOSSIP_RECORDS` packs
  batches of lookaside donor records — raw float64 parameter and
  allocation vectors — the same way solve bodies pack their arrays.

The first bytes on a connection negotiate the protocol: binary frames
open with :data:`BINARY_MAGIC` (never an ASCII digit), JSON frames open
with a decimal length line, and :class:`~repro.net.server.NetServer`
sniffs which one it is per connection — old JSON clients keep working
against a binary-capable server.

Parity is the contract, exactly as for the JSON codec: packing a request
and unpacking it yields a payload whose :func:`~repro.service.codec.parse_request`
result fingerprints identically to the original's, and an unpacked
response dict equals the dict the JSON path would have produced
(float64 survives both codecs bit-for-bit).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.framing import MAX_FRAME_BYTES, FrameError

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "BinaryFrameError",
    "BinaryFrameReader",
    "decode_binary_frames",
    "encode_binary_frame",
    "send_binary_frame",
]

#: First four bytes of every binary frame.  The leading byte (0xFA) can
#: never begin a JSON frame (those start with an ASCII digit), which is
#: what lets one listener serve both protocols.
BINARY_MAGIC = b"\xfaFAP"

#: Wire protocol version; bumped on any incompatible layout change.
BINARY_VERSION = 1

#: Body is UTF-8 JSON (control verbs, errors, unpackable payloads).
KIND_JSON = 0
#: Body is a packed solve request (scalars + raw float64 arrays).
KIND_SOLVE = 1
#: Body is a packed completed solve (scalars + raw float64 allocation).
KIND_RESULT = 2
#: Body is a JSON gossip digest (per-bucket tier fingerprints).
KIND_GOSSIP_DIGEST = 3
#: Body is a JSON gossip pull (per-bucket epoch vectors).
KIND_GOSSIP_PULL = 4
#: Body is a packed batch of lookaside donor records (raw float64
#: parameter/allocation vectors — the bulk bytes of the gossip mesh).
KIND_GOSSIP_RECORDS = 5

_HEADER = struct.Struct("<4sBBHQI")
HEADER_BYTES = _HEADER.size

# Packed solve request: alpha, epsilon, k, timeout_s (NaN = unset),
# max_iterations, n, priority, flags, id/name/start-name byte lengths.
_SOLVE_FRONT = struct.Struct("<ddddqiiHHHH")
_SOLVE_MU_SCALAR = 0x1  # mu is one float broadcast to every node
_SOLVE_MU_NONE = 0x2  # problem spec carried no mu at all
_SOLVE_START_VECTOR = 0x4  # start is an n-vector (else a named start)

# Packed completed solve: cost, latency_s, iterations, batch_size,
# flags (converged + cache disposition), id byte length; the allocation
# is the rest of the body.
_RESULT_FRONT = struct.Struct("<ddqiHH")
_RESULT_CONVERGED = 0x1
_CACHE_CODES = {"miss": 0, "hit": 1, "warm": 2}
_CACHE_NAMES = {code: name for name, code in _CACHE_CODES.items()}

_RECV_CHUNK = 262144

# Packed gossip-record batch: server-id byte length + record count, then
# per record a front struct — epoch, remaining ttl (NaN = none),
# iterations, n, key/origin byte lengths — followed by the key and origin
# strings and the raw float64 params (2n+1) and allocation (n) vectors.
_GOSSIP_BATCH_FRONT = struct.Struct("<HI")
_GOSSIP_RECORD_FRONT = struct.Struct("<qdqiHH")
_GOSSIP_OP_KINDS = {
    "gossip_digest": KIND_GOSSIP_DIGEST,
    "gossip_pull": KIND_GOSSIP_PULL,
}

_PACKED_REQUEST_KEYS = {
    "id", "problem", "alpha", "epsilon", "max_iterations", "start",
    "timeout_s", "priority",
}
_PACKED_PROBLEM_KEYS = {"cost_matrix", "access_rates", "mu", "k", "name"}
_PACKED_RESPONSE_KEYS = {
    "id", "status", "allocation", "cost", "iterations", "converged",
    "cache", "batch_size", "latency_s",
}


class BinaryFrameError(FrameError):
    """The byte stream violated the binary framing protocol (bad magic,
    unknown version or kind, oversized or truncated body, corrupt packed
    layout)."""


def _f64(values) -> np.ndarray:
    # No ascontiguousarray: it would promote 0-d scalars to 1-d (breaking
    # the scalar-mu layout flag), and ``tobytes()`` emits C-order bytes
    # whatever the source layout.
    return np.asarray(values, dtype=np.float64)


def _pack_solve_body(payload: Dict) -> Optional[bytes]:
    """The packed body for a solve-request payload, or ``None`` when the
    payload has fields the packed layout cannot carry (it then travels
    as :data:`KIND_JSON` instead — nothing is ever dropped)."""
    if not _PACKED_REQUEST_KEYS.issuperset(payload):
        return None
    problem = payload.get("problem")
    if not isinstance(problem, dict) or not _PACKED_PROBLEM_KEYS.issuperset(problem):
        return None
    if "cost_matrix" not in problem or "access_rates" not in problem:
        return None
    try:
        cost = _f64(problem["cost_matrix"])
        rates = _f64(problem["access_rates"])
    except (TypeError, ValueError):
        return None
    n = rates.size
    if cost.shape != (n, n) or rates.ndim != 1:
        return None

    flags = 0
    mu = problem.get("mu")
    if mu is None:
        flags |= _SOLVE_MU_NONE
        mu_arr = np.empty(0, dtype=np.float64)
    else:
        try:
            mu_arr = _f64(mu)
        except (TypeError, ValueError):
            return None
        if mu_arr.ndim == 0:
            flags |= _SOLVE_MU_SCALAR
            mu_arr = mu_arr.reshape(1)
        elif mu_arr.shape != (n,):
            return None

    start = payload.get("start", "uniform")
    start_name = b""
    if isinstance(start, str):
        start_arr = np.empty(0, dtype=np.float64)
        start_name = start.encode("utf-8")
    else:
        try:
            start_arr = _f64(start)
        except (TypeError, ValueError):
            return None
        if start_arr.shape != (n,):
            return None
        flags |= _SOLVE_START_VECTOR

    timeout = payload.get("timeout_s")
    id_bytes = str(payload.get("id", "")).encode("utf-8")
    name_bytes = str(problem.get("name", "")).encode("utf-8")
    if max(len(id_bytes), len(name_bytes), len(start_name)) > 0xFFFF:
        return None
    try:
        front = _SOLVE_FRONT.pack(
            float(payload.get("alpha", 0.3)),
            float(payload.get("epsilon", 1e-3)),
            float(problem.get("k", 1.0)),
            float("nan") if timeout is None else float(timeout),
            int(payload.get("max_iterations", 10_000)),
            n,
            int(payload.get("priority", 0)),
            flags,
            len(id_bytes),
            len(name_bytes),
            len(start_name),
        )
    except (TypeError, ValueError, struct.error):
        return None
    return b"".join(
        (
            front,
            id_bytes,
            name_bytes,
            start_name,
            cost.tobytes(),
            rates.tobytes(),
            mu_arr.tobytes(),
            start_arr.tobytes(),
        )
    )


def _unpack_solve_body(body: bytes) -> Dict:
    """The packed solve body back into a wire-payload dict.

    Array fields come back as ``np.frombuffer`` views over ``body`` —
    zero copies on the hot path; ``body`` must therefore be an immutable
    ``bytes`` snapshot (the readers below guarantee it).
    """
    if len(body) < _SOLVE_FRONT.size:
        raise BinaryFrameError(
            f"solve body of {len(body)} bytes is shorter than its header"
        )
    (
        alpha, epsilon, k, timeout, max_iterations, n, priority, flags,
        id_len, name_len, start_len,
    ) = _SOLVE_FRONT.unpack_from(body)
    if n < 0:
        raise BinaryFrameError(f"solve body declares negative node count {n}")
    pos = _SOLVE_FRONT.size
    strings = []
    for length in (id_len, name_len, start_len):
        strings.append(body[pos : pos + length])
        pos += length
    id_bytes, name_bytes, start_name = strings

    mu_count = 0 if flags & _SOLVE_MU_NONE else (1 if flags & _SOLVE_MU_SCALAR else n)
    start_count = n if flags & _SOLVE_START_VECTOR else 0
    want = pos + 8 * (n * n + n + mu_count + start_count)
    if len(body) != want:
        raise BinaryFrameError(
            f"solve body is {len(body)} bytes, layout requires {want}"
        )

    def take(count: int) -> np.ndarray:
        nonlocal pos
        arr = np.frombuffer(body, dtype=np.float64, count=count, offset=pos)
        pos += 8 * count
        return arr

    cost = take(n * n).reshape(n, n)
    rates = take(n)
    mu_arr = take(mu_count)
    start_arr = take(start_count)

    problem: Dict = {
        "cost_matrix": cost,
        "access_rates": rates,
        "k": k,
        "name": name_bytes.decode("utf-8"),
    }
    if not flags & _SOLVE_MU_NONE:
        problem["mu"] = float(mu_arr[0]) if flags & _SOLVE_MU_SCALAR else mu_arr
    payload: Dict = {
        "id": id_bytes.decode("utf-8"),
        "problem": problem,
        "alpha": alpha,
        "epsilon": epsilon,
        "max_iterations": max_iterations,
        "start": start_arr if flags & _SOLVE_START_VECTOR
        else start_name.decode("utf-8"),
        "priority": priority,
    }
    if not np.isnan(timeout):
        payload["timeout_s"] = timeout
    return payload


def _pack_result_body(payload: Dict) -> Optional[bytes]:
    """The packed body for a completed-solve response, or ``None`` for
    shapes the layout cannot carry (rejections, errors, extra fields)."""
    if payload.get("status") != "ok":
        return None
    if not _PACKED_RESPONSE_KEYS.issuperset(payload):
        return None
    cache = _CACHE_CODES.get(payload.get("cache", "miss"))
    if cache is None:
        return None
    try:
        allocation = _f64(payload["allocation"])
    except (KeyError, TypeError, ValueError):
        return None
    if allocation.ndim != 1:
        return None
    id_bytes = str(payload.get("id", "")).encode("utf-8")
    if len(id_bytes) > 0xFFFF:
        return None
    flags = cache << 1
    if payload.get("converged"):
        flags |= _RESULT_CONVERGED
    try:
        front = _RESULT_FRONT.pack(
            float(payload["cost"]),
            float(payload.get("latency_s", 0.0)),
            int(payload["iterations"]),
            int(payload.get("batch_size", 0)),
            flags,
            len(id_bytes),
        )
    except (KeyError, TypeError, ValueError, struct.error):
        return None
    return front + id_bytes + allocation.tobytes()


def _unpack_result_body(body: bytes) -> Dict:
    """The packed result body back into the exact dict the JSON codec
    would have delivered (``allocation`` as a list of Python floats)."""
    if len(body) < _RESULT_FRONT.size:
        raise BinaryFrameError(
            f"result body of {len(body)} bytes is shorter than its header"
        )
    cost, latency, iterations, batch_size, flags, id_len = _RESULT_FRONT.unpack_from(
        body
    )
    pos = _RESULT_FRONT.size
    id_bytes = body[pos : pos + id_len]
    pos += id_len
    if (len(body) - pos) % 8:
        raise BinaryFrameError("result allocation is not a whole float64 array")
    allocation = np.frombuffer(body, dtype=np.float64, offset=pos)
    cache = _CACHE_NAMES.get(flags >> 1)
    if cache is None:
        raise BinaryFrameError(f"result carries unknown cache code {flags >> 1}")
    return {
        "id": id_bytes.decode("utf-8"),
        "status": "ok",
        "allocation": allocation.tolist(),
        "cost": cost,
        "iterations": iterations,
        "converged": bool(flags & _RESULT_CONVERGED),
        "cache": cache,
        "batch_size": batch_size,
        "latency_s": latency,
    }


def _pack_gossip_records_body(payload: Dict) -> bytes:
    """The packed body of a ``gossip_records`` batch.  Unlike the solve
    and result layouts there is no JSON fallback — records carry ndarray
    fields JSON cannot represent — so a malformed record raises."""
    records = payload.get("records", [])
    server = str(payload.get("server", "")).encode("utf-8")
    if len(server) > 0xFFFF:
        raise BinaryFrameError("gossip server id exceeds 65535 bytes")
    parts = [_GOSSIP_BATCH_FRONT.pack(len(server), len(records)), server]
    for record in records:
        try:
            key = str(record["key"]).encode("utf-8")
            origin = str(record.get("origin", "")).encode("utf-8")
            n = int(record["n"])
            params = _f64(record["params"]).ravel()
            allocation = _f64(record["allocation"]).ravel()
            ttl = record.get("ttl_s")
            front = _GOSSIP_RECORD_FRONT.pack(
                int(record.get("epoch", 0)),
                float("nan") if ttl is None else float(ttl),
                int(record.get("iterations", 0)),
                n,
                len(key),
                len(origin),
            )
        except (KeyError, TypeError, ValueError, struct.error) as exc:
            raise BinaryFrameError(f"unpackable gossip record: {exc}") from None
        if params.size != 2 * n + 1 or allocation.size != n:
            raise BinaryFrameError(
                f"gossip record for n={n} carries {params.size} params and "
                f"{allocation.size} allocation entries"
            )
        parts += [front, key, origin, params.tobytes(), allocation.tobytes()]
    return b"".join(parts)


def _unpack_gossip_records_body(body: bytes) -> Dict:
    """The packed batch back into ``{"op": "gossip_records", ...}`` with
    ``np.frombuffer`` views for the float64 vectors."""
    if len(body) < _GOSSIP_BATCH_FRONT.size:
        raise BinaryFrameError(
            f"gossip batch of {len(body)} bytes is shorter than its header"
        )
    server_len, count = _GOSSIP_BATCH_FRONT.unpack_from(body)
    pos = _GOSSIP_BATCH_FRONT.size
    server = body[pos : pos + server_len].decode("utf-8")
    pos += server_len
    records = []
    for _ in range(count):
        if len(body) - pos < _GOSSIP_RECORD_FRONT.size:
            raise BinaryFrameError("gossip batch truncated mid-record")
        epoch, ttl, iterations, n, key_len, origin_len = (
            _GOSSIP_RECORD_FRONT.unpack_from(body, pos)
        )
        if n < 0:
            raise BinaryFrameError(f"gossip record declares negative size {n}")
        pos += _GOSSIP_RECORD_FRONT.size
        key = body[pos : pos + key_len].decode("utf-8")
        pos += key_len
        origin = body[pos : pos + origin_len].decode("utf-8")
        pos += origin_len
        want = 8 * (3 * n + 1)
        if len(body) - pos < want:
            raise BinaryFrameError(
                f"gossip record for n={n} is missing its float64 vectors"
            )
        params = np.frombuffer(body, dtype=np.float64, count=2 * n + 1, offset=pos)
        pos += 8 * (2 * n + 1)
        allocation = np.frombuffer(body, dtype=np.float64, count=n, offset=pos)
        pos += 8 * n
        records.append({
            "key": key,
            "n": n,
            "params": params,
            "allocation": allocation,
            "iterations": iterations,
            "origin": origin,
            "epoch": epoch,
            "ttl_s": None if np.isnan(ttl) else ttl,
        })
    if pos != len(body):
        raise BinaryFrameError(
            f"gossip batch has {len(body) - pos} trailing bytes"
        )
    return {"op": "gossip_records", "server": server, "records": records}


def encode_binary_frame(payload: Dict, request_id: int = 0) -> bytes:
    """One payload dict as a binary frame stamped with ``request_id``.

    Solve requests and completed solves take the packed layouts; every
    other dict (and any payload the packed layouts cannot represent)
    travels as a JSON body inside the binary frame.
    """
    kind = KIND_JSON
    body: Optional[bytes] = None
    op = payload.get("op")
    if op == "gossip_records":
        kind = KIND_GOSSIP_RECORDS
        body = _pack_gossip_records_body(payload)
    elif op in _GOSSIP_OP_KINDS:
        kind = _GOSSIP_OP_KINDS[op]
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    elif "problem" in payload:
        body = _pack_solve_body(payload)
        if body is not None:
            kind = KIND_SOLVE
    elif payload.get("status") == "ok" and "allocation" in payload:
        body = _pack_result_body(payload)
        if body is not None:
            kind = KIND_RESULT
    if body is None:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise BinaryFrameError(
            f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    header = _HEADER.pack(
        BINARY_MAGIC, BINARY_VERSION, kind, 0, request_id & 0xFFFFFFFFFFFFFFFF,
        len(body),
    )
    return header + body


def _decode_body(kind: int, body: bytes) -> Dict:
    if kind == KIND_SOLVE:
        return _unpack_solve_body(body)
    if kind == KIND_RESULT:
        return _unpack_result_body(body)
    if kind == KIND_GOSSIP_RECORDS:
        return _unpack_gossip_records_body(body)
    if kind in (KIND_JSON, KIND_GOSSIP_DIGEST, KIND_GOSSIP_PULL):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BinaryFrameError(f"frame body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise BinaryFrameError(
                f"frame body must be a JSON object, got {type(payload).__name__}"
            )
        return payload
    raise BinaryFrameError(f"unknown frame kind {kind}")


def _parse_header(buffer, pos: int) -> Optional[Tuple[int, int, int]]:
    """``(kind, request_id, body_length)`` once the header is complete,
    ``None`` while more bytes are needed.  Raises on a corrupt header."""
    if len(buffer) - pos < HEADER_BYTES:
        return None
    magic, version, kind, _flags, request_id, length = _HEADER.unpack_from(
        buffer, pos
    )
    if magic != BINARY_MAGIC:
        raise BinaryFrameError(f"bad frame magic {bytes(magic)!r}")
    if version != BINARY_VERSION:
        raise BinaryFrameError(
            f"unsupported protocol version {version} (this side speaks "
            f"{BINARY_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise BinaryFrameError(
            f"declared frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return kind, request_id, length


def decode_binary_frames(buffer: bytes) -> Tuple[List[Tuple[Dict, int]], bytes]:
    """Every complete ``(payload, request_id)`` in ``buffer`` plus the
    unconsumed remainder.  The pure-bytes counterpart of
    :func:`repro.net.framing.decode_frames`."""
    frames: List[Tuple[Dict, int]] = []
    pos = 0
    while True:
        parsed = _parse_header(buffer, pos)
        if parsed is None:
            return frames, bytes(buffer[pos:])
        kind, request_id, length = parsed
        start = pos + HEADER_BYTES
        if len(buffer) < start + length:
            return frames, bytes(buffer[pos:])
        body = bytes(buffer[start : start + length])
        pos = start + length
        frames.append((_decode_body(kind, body), request_id))


def send_binary_frame(sock: socket.socket, payload: Dict, request_id: int = 0) -> int:
    """Encode and send one binary frame; returns the bytes put on the wire."""
    data = encode_binary_frame(payload, request_id)
    sock.sendall(data)
    return len(data)


class BinaryFrameReader:
    """Buffered binary-frame reader over one socket.

    :meth:`read` returns the next ``(payload, request_id)`` pair, or
    ``None`` on a clean EOF at a frame boundary.  The receive buffer is
    a ``bytearray`` consumed by offset — O(bytes), not O(frames²),
    under pipelining.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = bytearray()
        self._pos = 0
        #: Total bytes consumed off the socket (for ``net.bytes_in``).
        self.bytes_read = 0

    def read(self) -> Optional[Tuple[Dict, int]]:
        while True:
            parsed = _parse_header(self._buffer, self._pos)
            if parsed is not None:
                kind, request_id, length = parsed
                start = self._pos + HEADER_BYTES
                if len(self._buffer) >= start + length:
                    body = bytes(self._buffer[start : start + length])
                    self._pos = start + length
                    if self._pos == len(self._buffer):
                        self._buffer.clear()
                        self._pos = 0
                    return _decode_body(kind, body), request_id
            if self._pos > _RECV_CHUNK:
                del self._buffer[: self._pos]
                self._pos = 0
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                if len(self._buffer) - self._pos:
                    raise BinaryFrameError(
                        "connection closed mid-frame "
                        f"({len(self._buffer) - self._pos} buffered bytes)"
                    )
                return None
            self.bytes_read += len(chunk)
            self._buffer += chunk
