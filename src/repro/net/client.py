"""The network client: pooled connections, deadlines, bounded retries.

:class:`NetClient` is the caller's side of :class:`~repro.net.server.NetServer`:

* a **connection pool** (``pool_size`` sockets, created lazily) so
  concurrent threads share transport without a handshake per request;
* a **codec** per client — ``"binary"`` (default; struct-packed frames,
  raw float64 bodies, see :mod:`repro.net.binary`) or ``"json"`` (the
  length-prefixed frames every pre-binary server speaks).  The server
  sniffs which one a connection uses from its first bytes, so no
  negotiation round-trip is spent when no secret is configured;
* **request pipelining** (:meth:`request_many` / :meth:`solve_payloads`):
  many frames in flight on one connection, binary responses matched by
  the echoed transport request id, JSON responses by payload ``id`` —
  the difference between paying one round-trip per request and one per
  burst;
* a **per-request deadline** (``timeout_s``, overridable per call) that
  caps connect + handshake + send + receive together — a hung server
  surfaces as :class:`NetTimeout`, never a hung caller;
* **bounded retry with backoff**: transient transport failures (connect
  refusals, resets, mid-request disconnects) and — with
  ``retry_restarts=True`` — in-band ``worker_restarted`` errors draw
  from *one* shared budget of ``retries`` re-sends per request (a solve
  is a pure function of its request, so re-sending is safe).  A restart
  answer that arrives with the budget already spent is returned
  structurally, exactly like ``retry_restarts=False`` surfaces it;
* optional **shared-secret authentication** (``secret=...``): each new
  connection runs the HMAC challenge/response handshake (``hello`` →
  nonce → ``HMAC-SHA256(secret, nonce)``) before carrying requests;
  bad credentials raise :class:`NetAuthError`.

Two surfaces, mirroring :class:`~repro.service.ServiceClient`: typed
(:meth:`solve` with :class:`~repro.service.SolveRequest` in and
:class:`~repro.service.SolveResponse` out) and dict-shaped
(:meth:`solve_payload`, the exact wire format).  Plus the control verbs:
:meth:`stats` and :meth:`ping`.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.net.binary import BinaryFrameReader, encode_binary_frame
from repro.net.framing import FrameError, FrameReader, encode_frame
from repro.net.worker import ERROR_WORKER_RESTARTED
from repro.service.codec import request_to_payload, response_from_dict
from repro.service.types import SolveRequest, SolveResponse

__all__ = [
    "CLIENT_CODECS",
    "NetAuthError",
    "NetClient",
    "NetConnectionError",
    "NetError",
    "NetTimeout",
]

#: Accepted values for :class:`NetClient`'s ``codec`` parameter.
CLIENT_CODECS = ("binary", "json")


class NetError(ReproError):
    """Base class for network-client failures."""


class NetConnectionError(NetError):
    """Could not reach (or keep) a server connection within the retry budget."""


class NetTimeout(NetError):
    """The per-request deadline expired before a response arrived."""


class NetAuthError(NetError):
    """The server refused this client's shared-secret handshake."""


class _Conn:
    """One pooled socket plus its frame reader and correlation counter."""

    def __init__(self, sock: socket.socket, codec: str):
        self.sock = sock
        self.codec = codec
        self._binary = codec == "binary"
        self._reader = BinaryFrameReader(sock) if self._binary else FrameReader(sock)
        self._next_id = 0

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def encode(self, payload: Dict, corr_id: int) -> bytes:
        if self._binary:
            return encode_binary_frame(payload, corr_id)
        return encode_frame(payload)

    def send(self, payload: Dict) -> int:
        """Send one frame; returns the correlation id it was stamped with
        (always 0 on the JSON codec, which correlates by payload id)."""
        corr_id = self.next_id() if self._binary else 0
        self.sock.sendall(self.encode(payload, corr_id))
        return corr_id

    def read(self) -> Optional[Tuple[Dict, int]]:
        """Next ``(payload, corr_id)``, or ``None`` on clean EOF."""
        if self._binary:
            return self._reader.read()
        payload = self._reader.read()
        return None if payload is None else (payload, 0)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class NetClient:
    """Client for the sharded allocation server.

    Parameters
    ----------
    host, port:
        Server address, as returned by :attr:`NetServer.address`.
    pool_size:
        Maximum concurrently open connections; callers beyond it wait
        for a free one (deadline still applies).
    timeout_s:
        Default per-request deadline (connect + handshake + send +
        receive).
    retries:
        Re-send budget per request, shared by transport failures and —
        with ``retry_restarts`` — in-band ``worker_restarted`` errors
        (0 disables).
    backoff_s:
        Initial backoff before a retry; doubles per attempt.
    retry_restarts:
        Also retry requests answered with an in-band
        ``worker_restarted`` error (default ``False``: surface them).
    codec:
        ``"binary"`` (default) or ``"json"``.  Any server since the
        binary wire speaks both; pass ``"json"`` for pre-binary servers
        or wire-level debugging.
    secret:
        Shared secret for servers started with one; each new connection
        authenticates via HMAC challenge/response before use.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        retry_restarts: bool = False,
        codec: str = "binary",
        secret: Optional[str] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if pool_size < 1:
            raise NetError("pool_size must be >= 1")
        if codec not in CLIENT_CODECS:
            raise NetError(
                f"unknown codec {codec!r} (expected one of {CLIENT_CODECS})"
            )
        self.host = host
        self.port = int(port)
        self.pool_size = int(pool_size)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.retry_restarts = bool(retry_restarts)
        self.codec = codec
        self._secret = secret.encode("utf-8") if isinstance(secret, str) else secret
        self._clock = clock
        self._sleep = sleep
        self._idle: List[_Conn] = []
        self._open_count = 0
        self._pending_reconnects = 0
        self._cond = threading.Condition()
        self._closed = False
        self._ids = itertools.count(1)
        #: Client-side operation tallies — the "retry counts" half of the
        #: transport's observability; the server's half is ``stats()``.
        #: ``connects`` counts first connections, ``reconnects`` only the
        #: replacements for connections that failed or were discarded.
        self.metrics: Dict[str, int] = {
            "requests": 0,
            "retries": 0,
            "connects": 0,
            "reconnects": 0,
            "timeouts": 0,
            "restarts_retried": 0,
        }

    # -- pool ------------------------------------------------------------------

    def _acquire(self, deadline: float) -> _Conn:
        with self._cond:
            while True:
                if self._closed:
                    raise NetError("client is closed")
                if self._idle:
                    return self._idle.pop()
                if self._open_count < self.pool_size:
                    self._open_count += 1
                    break  # create outside the lock
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise NetTimeout(
                        f"no free connection within the deadline "
                        f"(pool_size={self.pool_size})"
                    )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=max(0.001, deadline - self._clock())
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except BaseException:
            with self._cond:
                self._open_count -= 1
                self._cond.notify()
            raise
        with self._cond:
            # A connection replacing one that was discarded is a
            # reconnect; anything else is the pool filling up.
            if self._pending_reconnects > 0:
                self._pending_reconnects -= 1
                self.metrics["reconnects"] += 1
            else:
                self.metrics["connects"] += 1
        conn = _Conn(sock, self.codec)
        if self._secret is not None:
            try:
                self._handshake(conn, deadline)
            except socket.timeout:
                self._discard(conn)
                raise NetTimeout(
                    f"no handshake response from {self.host}:{self.port} "
                    f"within the deadline"
                ) from None
            except BaseException:
                self._discard(conn)
                raise
        return conn

    def _handshake(self, conn: _Conn, deadline: float) -> None:
        """HMAC challenge/response on a fresh connection."""
        reply = self._roundtrip(conn, {"op": "hello"}, deadline)
        if reply.get("status") == "challenge":
            nonce = str(reply.get("nonce", ""))
            try:
                mac = hmac.new(
                    self._secret, bytes.fromhex(nonce), hashlib.sha256
                ).hexdigest()
            except ValueError:
                raise NetAuthError(
                    f"server sent a malformed auth nonce {nonce!r}"
                ) from None
            reply = self._roundtrip(conn, {"op": "auth", "mac": mac}, deadline)
        if reply.get("status") != "ok":
            raise NetAuthError(
                f"handshake with {self.host}:{self.port} failed: "
                f"{reply.get('reason') or reply.get('detail', reply)}"
            )

    def _roundtrip(self, conn: _Conn, payload: Dict, deadline: float) -> Dict:
        conn.sock.settimeout(max(0.001, deadline - self._clock()))
        conn.send(payload)
        conn.sock.settimeout(max(0.001, deadline - self._clock()))
        got = conn.read()
        if got is None:
            raise NetConnectionError(
                f"{self.host}:{self.port} closed the connection mid-handshake"
            )
        return got[0]

    def _release(self, conn: _Conn) -> None:
        with self._cond:
            if self._closed:
                self._open_count -= 1
                conn.close()
                return
            self._idle.append(conn)
            self._cond.notify()

    def _discard(self, conn: _Conn) -> None:
        conn.close()
        with self._cond:
            self._open_count -= 1
            self._pending_reconnects += 1
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._open_count -= len(idle)
            self._cond.notify_all()
        for conn in idle:
            conn.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request loop ------------------------------------------------------

    def request(self, payload: Dict, *, timeout_s: Optional[float] = None) -> Dict:
        """One frame out, one frame back, with deadline and retry policy.

        Returns the response dict exactly as the server sent it (solves,
        structured rejections, and in-band errors alike).  Raises
        :class:`NetTimeout` past the deadline and
        :class:`NetConnectionError` once the retry budget is spent.
        Transport failures and (with ``retry_restarts``) in-band
        ``worker_restarted`` errors spend the *same* budget: ``retries``
        re-sends total, however the failures interleave.
        """
        deadline = self._clock() + (
            self.timeout_s if timeout_s is None else float(timeout_s)
        )
        self.metrics["requests"] += 1
        attempt = 0
        while True:
            try:
                response = self._attempt(payload, deadline)
            except NetTimeout:
                self.metrics["timeouts"] += 1
                raise
            except (OSError, FrameError, NetConnectionError) as exc:
                attempt += 1
                if attempt > self.retries:
                    raise NetConnectionError(
                        f"request failed after {attempt} attempt(s) against "
                        f"{self.host}:{self.port}: {type(exc).__name__}: {exc}"
                    ) from None
                self._backoff(attempt, deadline)
                continue
            if (
                self.retry_restarts
                and response.get("reason") == ERROR_WORKER_RESTARTED
            ):
                attempt += 1
                if attempt > self.retries:
                    return response  # budget spent: surface it structurally
                self.metrics["restarts_retried"] += 1
                self._backoff(attempt, deadline)
                continue
            return response

    def _attempt(self, payload: Dict, deadline: float) -> Dict:
        conn = self._acquire(deadline)
        try:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise socket.timeout("deadline already expired")
            conn.sock.settimeout(remaining)
            conn.send(payload)
            conn.sock.settimeout(max(0.001, deadline - self._clock()))
            got = conn.read()
        except socket.timeout:
            # The response may still arrive later; this socket is now
            # out of sync with the request stream, so drop it.
            self._discard(conn)
            raise NetTimeout(
                f"no response from {self.host}:{self.port} within the deadline"
            ) from None
        except BaseException:
            self._discard(conn)
            raise
        if got is None:
            self._discard(conn)
            raise NetConnectionError(
                f"{self.host}:{self.port} closed the connection mid-request"
            )
        self._release(conn)
        return got[0]

    def _backoff(self, attempt: int, deadline: float) -> None:
        self.metrics["retries"] += 1
        pause = self.backoff_s * (2 ** (attempt - 1))
        if self._clock() + pause >= deadline:
            raise NetTimeout("deadline would expire during retry backoff")
        self._sleep(pause)

    # -- pipelining ------------------------------------------------------------

    def request_many(
        self, payloads: Sequence[Dict], *, timeout_s: Optional[float] = None
    ) -> List[Dict]:
        """Pipelined solves: every frame sent before the first response
        is read, all on one pooled connection.

        Responses come back **in input order** regardless of the order
        the server finished them — binary frames are matched by the
        echoed transport request id, JSON frames by payload ``id``
        (payloads missing one are stamped with a client-assigned id
        before sending; the returned dicts carry whatever id went out on
        the wire).  No retry policy applies — a transport failure
        mid-burst raises, because the burst's position in the stream is
        ambiguous.  One deadline covers the whole burst.
        """
        if not payloads:
            return []
        deadline = self._clock() + (
            self.timeout_s if timeout_s is None else float(timeout_s)
        )
        self.metrics["requests"] += len(payloads)
        try:
            conn = self._acquire(deadline)
        except NetTimeout:
            self.metrics["timeouts"] += 1
            raise
        results: List[Optional[Dict]] = [None] * len(payloads)
        try:
            if conn.codec == "binary":
                self._pipeline_binary(conn, payloads, results, deadline)
            else:
                self._pipeline_json(conn, payloads, results, deadline)
        except socket.timeout:
            self._discard(conn)
            self.metrics["timeouts"] += 1
            raise NetTimeout(
                f"pipelined burst to {self.host}:{self.port} missed its deadline "
                f"({sum(r is not None for r in results)}/{len(payloads)} answered)"
            ) from None
        except BaseException:
            self._discard(conn)
            raise
        self._release(conn)
        return results  # type: ignore[return-value]

    def _pipeline_binary(self, conn, payloads, results, deadline) -> None:
        index_of: Dict[int, int] = {}
        out = bytearray()
        for i, payload in enumerate(payloads):
            corr_id = conn.next_id()
            index_of[corr_id] = i
            out += conn.encode(payload, corr_id)
        conn.sock.settimeout(max(0.001, deadline - self._clock()))
        conn.sock.sendall(out)
        for _ in range(len(payloads)):
            conn.sock.settimeout(max(0.001, deadline - self._clock()))
            got = conn.read()
            if got is None:
                raise NetConnectionError(
                    f"{self.host}:{self.port} closed the connection mid-burst"
                )
            response, corr_id = got
            i = index_of.pop(corr_id, None)
            if i is None:
                raise NetConnectionError(
                    f"{self.host}:{self.port} answered unknown request id {corr_id}"
                )
            results[i] = response

    def _pipeline_json(self, conn, payloads, results, deadline) -> None:
        index_of: Dict[str, deque] = {}
        out = bytearray()
        for i, payload in enumerate(payloads):
            request_id = payload.get("id")
            if request_id is None:
                request_id = f"cli-{next(self._ids)}"
                payload = {**payload, "id": request_id}
            index_of.setdefault(str(request_id), deque()).append(i)
            out += conn.encode(payload, 0)
        conn.sock.settimeout(max(0.001, deadline - self._clock()))
        conn.sock.sendall(out)
        for _ in range(len(payloads)):
            conn.sock.settimeout(max(0.001, deadline - self._clock()))
            got = conn.read()
            if got is None:
                raise NetConnectionError(
                    f"{self.host}:{self.port} closed the connection mid-burst"
                )
            response = got[0]
            queue = index_of.get(str(response.get("id", "")))
            if not queue:
                raise NetConnectionError(
                    f"{self.host}:{self.port} answered unknown request id "
                    f"{response.get('id')!r}"
                )
            results[queue.popleft()] = response

    # -- surfaces --------------------------------------------------------------

    def solve_payload(self, payload: Dict, *, timeout_s: Optional[float] = None) -> Dict:
        """One wire-format request dict in, one response dict out."""
        return self.request(payload, timeout_s=timeout_s)

    def solve_payloads(
        self, payloads: Sequence[Dict], *, timeout_s: Optional[float] = None
    ) -> List[Dict]:
        """Pipelined wire-format solves (see :meth:`request_many`)."""
        return self.request_many(payloads, timeout_s=timeout_s)

    def solve(
        self, request: SolveRequest, *, timeout_s: Optional[float] = None
    ) -> SolveResponse:
        """Typed solve: serialize, send, and parse back.  In-band errors
        (``status: "error"``, e.g. ``worker_restarted``) raise
        :class:`NetError`; structured *rejections* return normally, like
        the in-process client."""
        payload = request_to_payload(request)
        response = self.request(payload, timeout_s=timeout_s)
        if response.get("status") == "error":
            raise NetError(
                f"request {request.request_id!r} failed: "
                f"{response.get('reason') or response.get('detail', 'unknown error')}"
            )
        return response_from_dict(response)

    def solve_many(
        self, requests: Sequence[SolveRequest], *, timeout_s: Optional[float] = None
    ) -> List[SolveResponse]:
        """Pipelined typed solves (one burst, one shared deadline).
        In-band errors raise, as in :meth:`solve`."""
        payloads = [request_to_payload(r) for r in requests]
        out: List[SolveResponse] = []
        for request, response in zip(
            requests, self.request_many(payloads, timeout_s=timeout_s)
        ):
            if response.get("status") == "error":
                raise NetError(
                    f"request {request.request_id!r} failed: "
                    f"{response.get('reason') or response.get('detail', 'unknown error')}"
                )
            out.append(response_from_dict(response))
        return out

    def stats(self, *, timeout_s: Optional[float] = None) -> Dict:
        """The server's merged ``service.*`` + ``net.*`` snapshot."""
        response = self.request({"op": "stats"}, timeout_s=timeout_s)
        if response.get("status") != "ok":
            raise NetError(f"stats verb failed: {response.get('detail', response)}")
        return response["stats"]

    def ping(self, *, timeout_s: Optional[float] = None) -> bool:
        """Liveness check; ``True`` when the server answers."""
        response = self.request({"op": "ping"}, timeout_s=timeout_s)
        return response.get("status") == "ok"

    def __repr__(self) -> str:
        return (
            f"NetClient({self.host}:{self.port}, codec={self.codec!r}, "
            f"pool={self.pool_size}, timeout_s={self.timeout_s:g}, "
            f"retries={self.retries})"
        )
