"""The network client: pooled connections, deadlines, bounded retries.

:class:`NetClient` is the caller's side of :class:`~repro.net.server.NetServer`:

* a **connection pool** (``pool_size`` sockets, created lazily) so
  concurrent threads share transport without a handshake per request;
* a **per-request deadline** (``timeout_s``, overridable per call) that
  caps connect + send + receive together — a hung server surfaces as
  :class:`NetTimeout`, never a hung caller;
* **bounded retry with backoff** against *transient transport* failures:
  connect refusals, resets, and mid-request disconnects are retried up
  to ``retries`` times on a fresh connection with exponential backoff
  (a solve is a pure function of its request, so re-sending is safe).
  In-band ``worker_restarted`` errors — a request lost with a crashed
  worker — are surfaced structurally by default, and retried
  transparently only when ``retry_restarts=True``.

Two surfaces, mirroring :class:`~repro.service.ServiceClient`: typed
(:meth:`solve` with :class:`~repro.service.SolveRequest` in and
:class:`~repro.service.SolveResponse` out) and dict-shaped
(:meth:`solve_payload`, the exact wire format).  Plus the control verbs:
:meth:`stats` and :meth:`ping`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError
from repro.net.framing import FrameError, FrameReader, send_frame
from repro.net.worker import ERROR_WORKER_RESTARTED
from repro.service.codec import request_to_payload, response_from_dict
from repro.service.types import SolveRequest, SolveResponse

__all__ = ["NetClient", "NetError", "NetConnectionError", "NetTimeout"]


class NetError(ReproError):
    """Base class for network-client failures."""


class NetConnectionError(NetError):
    """Could not reach (or keep) a server connection within the retry budget."""


class NetTimeout(NetError):
    """The per-request deadline expired before a response arrived."""


class _Conn:
    """One pooled socket plus its frame reader."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.reader = FrameReader(sock)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class NetClient:
    """Client for the sharded allocation server.

    Parameters
    ----------
    host, port:
        Server address, as returned by :attr:`NetServer.address`.
    pool_size:
        Maximum concurrently open connections; callers beyond it wait
        for a free one (deadline still applies).
    timeout_s:
        Default per-request deadline (connect + send + receive).
    retries:
        Transport-failure retry budget per request (0 disables).
    backoff_s:
        Initial backoff before a retry; doubles per attempt.
    retry_restarts:
        Also retry requests answered with an in-band
        ``worker_restarted`` error (default ``False``: surface them).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 2,
        timeout_s: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        retry_restarts: bool = False,
        clock=time.monotonic,
        sleep=time.sleep,
    ):
        if pool_size < 1:
            raise NetError("pool_size must be >= 1")
        self.host = host
        self.port = int(port)
        self.pool_size = int(pool_size)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.retry_restarts = bool(retry_restarts)
        self._clock = clock
        self._sleep = sleep
        self._idle: List[_Conn] = []
        self._open_count = 0
        self._cond = threading.Condition()
        self._closed = False
        #: Client-side operation tallies (requests, retries, reconnects,
        #: timeouts, restarts_retried) — the "retry counts" half of the
        #: transport's observability; the server's half is ``stats()``.
        self.metrics: Dict[str, int] = {
            "requests": 0,
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
            "restarts_retried": 0,
        }

    # -- pool ------------------------------------------------------------------

    def _acquire(self, deadline: float) -> _Conn:
        with self._cond:
            while True:
                if self._closed:
                    raise NetError("client is closed")
                if self._idle:
                    return self._idle.pop()
                if self._open_count < self.pool_size:
                    self._open_count += 1
                    break  # create outside the lock
                remaining = deadline - self._clock()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise NetTimeout(
                        f"no free connection within the deadline "
                        f"(pool_size={self.pool_size})"
                    )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=max(0.001, deadline - self._clock())
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.metrics["reconnects"] += 1
            return _Conn(sock)
        except BaseException:
            with self._cond:
                self._open_count -= 1
                self._cond.notify()
            raise

    def _release(self, conn: _Conn) -> None:
        with self._cond:
            if self._closed:
                self._open_count -= 1
                conn.close()
                return
            self._idle.append(conn)
            self._cond.notify()

    def _discard(self, conn: _Conn) -> None:
        conn.close()
        with self._cond:
            self._open_count -= 1
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._open_count -= len(idle)
            self._cond.notify_all()
        for conn in idle:
            conn.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request loop ------------------------------------------------------

    def request(self, payload: Dict, *, timeout_s: Optional[float] = None) -> Dict:
        """One frame out, one frame back, with deadline and retry policy.

        Returns the response dict exactly as the server sent it (solves,
        structured rejections, and in-band errors alike).  Raises
        :class:`NetTimeout` past the deadline and
        :class:`NetConnectionError` once the transport retry budget is
        spent.
        """
        deadline = self._clock() + (
            self.timeout_s if timeout_s is None else float(timeout_s)
        )
        self.metrics["requests"] += 1
        attempt = 0
        while True:
            try:
                response = self._attempt(payload, deadline)
            except NetTimeout:
                self.metrics["timeouts"] += 1
                raise
            except (OSError, FrameError, NetConnectionError) as exc:
                attempt += 1
                if attempt > self.retries:
                    raise NetConnectionError(
                        f"request failed after {attempt} attempt(s) against "
                        f"{self.host}:{self.port}: {type(exc).__name__}: {exc}"
                    ) from None
                self._backoff(attempt, deadline)
                continue
            if (
                self.retry_restarts
                and response.get("reason") == ERROR_WORKER_RESTARTED
                and attempt < self.retries
            ):
                attempt += 1
                self.metrics["restarts_retried"] += 1
                self._backoff(attempt, deadline)
                continue
            return response

    def _attempt(self, payload: Dict, deadline: float) -> Dict:
        conn = self._acquire(deadline)
        try:
            remaining = deadline - self._clock()
            if remaining <= 0:
                raise socket.timeout("deadline already expired")
            conn.sock.settimeout(remaining)
            send_frame(conn.sock, payload)
            conn.sock.settimeout(max(0.001, deadline - self._clock()))
            response = conn.reader.read()
        except socket.timeout:
            # The response may still arrive later; this socket is now
            # out of sync with the request stream, so drop it.
            self._discard(conn)
            raise NetTimeout(
                f"no response from {self.host}:{self.port} within the deadline"
            ) from None
        except BaseException:
            self._discard(conn)
            raise
        if response is None:
            self._discard(conn)
            raise NetConnectionError(
                f"{self.host}:{self.port} closed the connection mid-request"
            )
        self._release(conn)
        return response

    def _backoff(self, attempt: int, deadline: float) -> None:
        self.metrics["retries"] += 1
        pause = self.backoff_s * (2 ** (attempt - 1))
        if self._clock() + pause >= deadline:
            raise NetTimeout("deadline would expire during retry backoff")
        self._sleep(pause)

    # -- surfaces --------------------------------------------------------------

    def solve_payload(self, payload: Dict, *, timeout_s: Optional[float] = None) -> Dict:
        """One wire-format request dict in, one response dict out."""
        return self.request(payload, timeout_s=timeout_s)

    def solve(
        self, request: SolveRequest, *, timeout_s: Optional[float] = None
    ) -> SolveResponse:
        """Typed solve: serialize, send, and parse back.  In-band errors
        (``status: "error"``, e.g. ``worker_restarted``) raise
        :class:`NetError`; structured *rejections* return normally, like
        the in-process client."""
        payload = request_to_payload(request)
        response = self.request(payload, timeout_s=timeout_s)
        if response.get("status") == "error":
            raise NetError(
                f"request {request.request_id!r} failed: "
                f"{response.get('reason') or response.get('detail', 'unknown error')}"
            )
        return response_from_dict(response)

    def solve_many(
        self, requests: Sequence[SolveRequest], *, timeout_s: Optional[float] = None
    ) -> List[SolveResponse]:
        """Sequential typed solves (per-request deadline each)."""
        return [self.solve(r, timeout_s=timeout_s) for r in requests]

    def stats(self, *, timeout_s: Optional[float] = None) -> Dict:
        """The server's merged ``service.*`` + ``net.*`` snapshot."""
        response = self.request({"op": "stats"}, timeout_s=timeout_s)
        if response.get("status") != "ok":
            raise NetError(f"stats verb failed: {response.get('detail', response)}")
        return response["stats"]

    def ping(self, *, timeout_s: Optional[float] = None) -> bool:
        """Liveness check; ``True`` when the server answers."""
        response = self.request({"op": "ping"}, timeout_s=timeout_s)
        return response.get("status") == "ok"

    def __repr__(self) -> str:
        return (
            f"NetClient({self.host}:{self.port}, pool={self.pool_size}, "
            f"timeout_s={self.timeout_s:g}, retries={self.retries})"
        )
