"""Length-prefixed JSON framing over a stream socket.

One frame is one JSON object, encoded as::

    <decimal byte length of body>\\n<body bytes>

The body is UTF-8 JSON — the exact dicts of the
:mod:`repro.service.codec` wire format — so a frame stream is
"``repro-fap serve``'s JSONL with an explicit length up front".  The
prefix is what makes the format safe on a socket: a reader never has to
guess where a pipelined message ends, a partial read is detectable, and
a malformed peer fails the connection instead of corrupting the stream.

:func:`send_frame` / :class:`FrameReader` are the two halves;
:func:`encode_frame` / :func:`decode_frames` are the pure byte-level
codecs used by both and by the tests.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected on both sides — an allocation
request is a few kilobytes, so anything near the cap is garbage or an
attack, and refusing early keeps a bad peer from ballooning server
memory.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameReader",
    "encode_frame",
    "decode_frames",
    "send_frame",
]

#: Hard cap on one frame's body; a request is ~kilobytes, so this is
#: three orders of magnitude of headroom.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_RECV_CHUNK = 65536


class FrameError(ReproError):
    """The byte stream violated the framing protocol (bad prefix,
    oversized frame, truncated body, or a body that is not valid JSON)."""


def encode_frame(payload: Dict) -> bytes:
    """One payload dict as a length-prefixed frame (the wire bytes)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return b"%d\n%s" % (len(body), body)


def _parse_prefix(buffer, pos: int = 0) -> Optional[Tuple[int, int]]:
    """``(body_length, body_start)`` once the prefix line starting at
    ``pos`` is complete, ``None`` while more bytes are needed.  Raises on
    a corrupt prefix.  Works on ``bytes`` or ``bytearray`` without
    copying — callers consume by advancing ``pos``, not by re-slicing
    the buffer (which would be O(n²) under pipelining)."""
    newline = buffer.find(b"\n", pos, pos + 32)
    if newline < 0:
        if len(buffer) - pos > 32:
            raise FrameError(
                f"frame prefix is not a length line: {bytes(buffer[pos : pos + 32])!r}"
            )
        return None
    prefix = bytes(buffer[pos:newline])
    if not prefix.isdigit():
        raise FrameError(f"frame prefix is not a decimal length: {prefix!r}")
    length = int(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"declared frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return length, newline + 1


def decode_frames(buffer: bytes) -> Tuple[List[Dict], bytes]:
    """Every complete frame in ``buffer`` plus the unconsumed remainder."""
    frames: List[Dict] = []
    pos = 0
    while True:
        parsed = _parse_prefix(buffer, pos)
        if parsed is None:
            return frames, bytes(buffer[pos:])
        length, start = parsed
        if len(buffer) < start + length:
            return frames, bytes(buffer[pos:])
        frames.append(_load_body(bytes(buffer[start : start + length])))
        pos = start + length


def _load_body(body: bytes) -> Dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def send_frame(sock: socket.socket, payload: Dict) -> int:
    """Encode and send one frame; returns the byte count put on the wire."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


class FrameReader:
    """Buffered frame reader over one socket.

    :meth:`read` returns the next payload dict, or ``None`` on a clean
    EOF at a frame boundary.  A timeout already set on the socket applies
    to each underlying ``recv`` — the caller owns deadline policy.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        # bytearray consumed by offset: appending amortizes, and a frame
        # costs one body-sized slice instead of re-copying the whole
        # remaining buffer (O(n²) across a pipelined burst).
        self._buffer = bytearray()
        self._pos = 0
        #: Total bytes consumed off the socket (for ``net.bytes_in``).
        self.bytes_read = 0

    def read(self) -> Optional[Dict]:
        while True:
            parsed = _parse_prefix(self._buffer, self._pos)
            if parsed is not None:
                length, start = parsed
                if len(self._buffer) >= start + length:
                    body = bytes(self._buffer[start : start + length])
                    self._pos = start + length
                    if self._pos == len(self._buffer):
                        self._buffer.clear()
                        self._pos = 0
                    return _load_body(body)
            if self._pos > _RECV_CHUNK:
                del self._buffer[: self._pos]
                self._pos = 0
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                if len(self._buffer) - self._pos:
                    raise FrameError(
                        "connection closed mid-frame "
                        f"({len(self._buffer) - self._pos} buffered bytes)"
                    )
                return None
            self.bytes_read += len(chunk)
            self._buffer += chunk

    def __iter__(self) -> Iterator[Dict]:
        while True:
            payload = self.read()
            if payload is None:
                return
            yield payload
