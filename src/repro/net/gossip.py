"""Epidemic exchange of lookaside donor records between servers.

PR 8 ended with each :class:`~repro.net.NetServer` holding its own
:class:`~repro.net.lookaside.LookasideTier`: a converged solve published
in one server warm-starts later requests *there*, while a second server
in another region solves the same drifting workload cold.  The paper's
algorithm is already a decentralized exchange of marginal information
between nodes; this module lifts that exchange one level up — servers
trading *converged solutions* instead of gradients — in the classic
epidemic style (local information, bounded messages, eventual
agreement):

* **rumor push** — every gossip round, fresh tier records (anything past
  the per-peer sequence cursor) are pushed to each live peer in
  size-bounded batches, so the common case (one server converges, the
  mesh learns) propagates in one round;
* **anti-entropy** — every ``anti_entropy_every``-th round, one peer
  (round-robin) receives this tier's per-bucket digest.  The peer
  compares fingerprints, answers with its *epoch vectors* for the
  buckets that differ (a **pull**: exactly what it might be missing),
  and gets back only the records it lacks or holds older.  Buckets the
  digesting side has and the peer lacks entirely are pushed outright —
  which is also how a respawned, empty peer is refilled;
* **budget** — rumor batches, digests, and record transfers all draw on
  one token bucket of ``budget_bytes_per_s``; when it runs dry the send
  is deferred to a later round (``net.gossip.deferred``), so a busy
  mesh degrades to slower convergence, never to unbounded bandwidth;
* **convergence** — records carry their origin server id, a per-key
  epoch, and remaining TTL; :meth:`LookasideTier.merge
  <repro.net.lookaside.LookasideTier.merge>` applies newest-epoch-wins
  (origin id breaks ties deterministically), so however records race
  around the mesh every tier settles on the same winner and the tier
  stays read-mostly.

:class:`GossipAgent` is deliberately transport-free: the server's event
loop calls :meth:`tick` on its timer, hands inbound gossip payloads to
:meth:`handle_remote`, and provides a ``sender`` callback that frames a
payload onto a peer link (returning the bytes queued).  Liveness is
per-peer (:mod:`repro.net.peers`): heartbeats every round, failure
counters with exponential backoff on dead peers, and a staleness check
that declares a silent link down.

Metrics (``net.gossip.*``): ``rounds``, ``anti_entropy``,
``records_sent``, ``records_merged``, ``bytes``, ``deferred``,
``peer_down``, the ``peers_live`` gauge, and per-peer
``net.gossip.peer.{i}.lag_s`` gauges (seconds since each peer was last
heard from).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.net.lookaside import LookasideTier, _record_bytes
from repro.net.peers import PeerState

__all__ = ["GossipAgent", "GOSSIP_OPS"]

#: Control verbs the agent speaks (all carried as ``op`` fields; the
#: server routes any inbound op in this set to its agent).
GOSSIP_OPS = (
    "gossip_ping",
    "gossip_pong",
    "gossip_digest",
    "gossip_pull",
    "gossip_records",
)


def _payload_bytes(payload: Dict) -> int:
    """Wire-size estimate of one gossip payload for budget accounting
    (records by the tier's per-record estimator, control frames by their
    JSON length)."""
    if payload.get("op") == "gossip_records":
        return 64 + sum(_record_bytes(r) for r in payload.get("records", ()))
    try:
        return 20 + len(json.dumps(payload, separators=(",", ":")))
    except (TypeError, ValueError):
        return 256


class GossipAgent:
    """The per-server gossip protocol state machine (see module docstring).

    Parameters
    ----------
    server_id:
        This server's mesh identity — stamped as ``origin`` on records it
        publishes and carried in every gossip frame.
    tier:
        The :class:`~repro.net.lookaside.LookasideTier` being replicated.
    peers:
        Static peer addresses as ``(host, port)`` pairs.
    interval_s:
        Gossip round period: each round heartbeats every live peer and
        rumor-pushes fresh records to it.
    anti_entropy_every:
        A digest goes to one peer (round-robin) every this-many rounds.
    budget_bytes_per_s:
        Token-bucket rate shared by rumors, digests, pulls, and record
        transfers; heartbeats are exempt (they are what detects a dead
        peer, and starving them under load would amplify the failure).
    rumor_max_bytes:
        Cap on a single rumor batch, inside whatever the bucket allows.
    heartbeat_timeout_s:
        A live peer silent this long is declared down (default: three
        intervals plus one second).
    registry:
        Optional metrics registry for the ``net.gossip.*`` family.
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        server_id: str,
        tier: LookasideTier,
        peers: List[Tuple[str, int]],
        *,
        interval_s: float = 1.0,
        anti_entropy_every: int = 4,
        budget_bytes_per_s: int = 262144,
        rumor_max_bytes: int = 65536,
        heartbeat_timeout_s: Optional[float] = None,
        registry=None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if anti_entropy_every < 1:
            raise ConfigurationError("anti_entropy_every must be >= 1")
        if budget_bytes_per_s <= 0:
            raise ConfigurationError("budget_bytes_per_s must be positive")
        self.server_id = str(server_id)
        self.tier = tier
        self.peers = [PeerState(i, h, p) for i, (h, p) in enumerate(peers)]
        self.interval_s = float(interval_s)
        self.anti_entropy_every = int(anti_entropy_every)
        self.budget_bytes_per_s = int(budget_bytes_per_s)
        self.rumor_max_bytes = int(rumor_max_bytes)
        self.heartbeat_timeout_s = (
            float(heartbeat_timeout_s)
            if heartbeat_timeout_s is not None
            else 3.0 * self.interval_s + 1.0
        )
        self.registry = registry
        self.clock = clock if clock is not None else time.monotonic
        #: ``sender(peer_index, payload) -> Optional[int]`` — frames the
        #: payload onto the peer's link, returning bytes queued, or
        #: ``None`` when the link is not ready.  Installed by the server.
        self.sender: Optional[Callable[[int, Dict], Optional[int]]] = None
        self.rounds = 0
        self._next_round = 0.0
        self._ae_cursor = 0
        self._tokens = float(self.budget_bytes_per_s)
        self._last_refill = self.clock()

    # -- budget ----------------------------------------------------------------

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                2.0 * self.budget_bytes_per_s,
                self._tokens + elapsed * self.budget_bytes_per_s,
            )
            self._last_refill = now

    @property
    def budget_remaining(self) -> int:
        """Tokens currently in the bucket (bytes)."""
        self._refill(self.clock())
        return max(0, int(self._tokens))

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.registry is not None:
            self.registry.counter_inc(name, value)

    def _budgeted_send(
        self, send: Callable[[Dict], Optional[int]], payload: Dict
    ) -> bool:
        """Send one budget-covered payload; defers (and counts) when the
        bucket is dry.  Debits the sender-reported bytes when available,
        the estimate otherwise."""
        estimate = _payload_bytes(payload)
        if self._tokens < estimate:
            self._count("net.gossip.deferred")
            return False
        queued = send(payload)
        if queued is None:
            return False
        spent = queued if queued > 0 else estimate
        self._tokens -= spent
        self._count("net.gossip.bytes", spent)
        return True

    # -- liveness (called by the owning server) --------------------------------

    def peer_connected(self, index: int) -> None:
        """The outbound link to ``peers[index]`` completed its handshake."""
        self.peers[index].mark_ready(self.clock())
        self._gauge_live()

    def peer_failed(self, index: int) -> bool:
        """The link failed (connect error, EOF, handshake rejection).
        Returns whether a *live* peer went down (vs. one more refusal)."""
        went_down = self.peers[index].mark_failed(self.clock())
        if went_down:
            self._count("net.gossip.peer_down")
            if self.registry is not None:
                self.registry.event(
                    "net_gossip_peer_down",
                    peer=self.peers[index].address,
                    failures=self.peers[index].failures,
                )
        self._gauge_live()
        return went_down

    def note_peer_frame(self, index: int) -> None:
        """Any frame from a peer link proves liveness."""
        self.peers[index].last_heard = self.clock()

    def peer_stale(self, index: int, now: float) -> bool:
        peer = self.peers[index]
        return peer.ready and peer.lag_s(now) > self.heartbeat_timeout_s

    def _gauge_live(self) -> None:
        if self.registry is not None:
            self.registry.gauge_set(
                "net.gossip.peers_live",
                float(sum(1 for p in self.peers if p.ready)),
            )

    # -- the round timer -------------------------------------------------------

    def seconds_until_due(self, now: float) -> float:
        """How long the event loop may sleep before the next round."""
        return max(0.0, self._next_round - now)

    def tick(self, now: Optional[float] = None) -> None:
        """Run one gossip round if due: heartbeat + rumor-push every live
        peer, and every ``anti_entropy_every``-th round send one peer the
        tier digest.  Cheap no-op between rounds."""
        if now is None:
            now = self.clock()
        if now < self._next_round:
            return
        self._next_round = now + self.interval_s
        self._refill(now)
        sender = self.sender
        if sender is None:
            return
        self.rounds += 1
        self._count("net.gossip.rounds")
        live = [p for p in self.peers if p.ready]
        for peer in self.peers:
            if self.registry is not None:
                lag = peer.lag_s(now)
                self.registry.gauge_set(
                    f"net.gossip.peer.{peer.index}.lag_s",
                    lag if lag != float("inf") else -1.0,
                )
        for peer in live:
            # Heartbeat: budget-exempt (see class docstring).
            sent = sender(peer.index, {"op": "gossip_ping", "server": self.server_id})
            if sent:
                self._count("net.gossip.bytes", sent)
            self._rumor(sender, peer)
        if live and self.rounds % self.anti_entropy_every == 0:
            peer = live[self._ae_cursor % len(live)]
            self._ae_cursor += 1
            if self._budgeted_send(
                lambda p: sender(peer.index, p),
                {
                    "op": "gossip_digest",
                    "server": self.server_id,
                    "buckets": self.tier.digest(),
                },
            ):
                self._count("net.gossip.anti_entropy")

    def _rumor(self, sender, peer: PeerState) -> None:
        """Push records newer than this peer's cursor, budget permitting."""
        window = min(self.rumor_max_bytes, max(0, int(self._tokens)))
        if window <= 0:
            if self.tier.seq > peer.sent_seq:
                self._count("net.gossip.deferred")
            return
        records, last = self.tier.records_since(peer.sent_seq, max_bytes=window)
        if not records:
            if last > peer.sent_seq:
                peer.sent_seq = last
            elif self.tier.seq > peer.sent_seq:
                # Fresh records exist but the first one alone overflows
                # the window: a deferral, not an empty feed.
                self._count("net.gossip.deferred")
            return
        if self._budgeted_send(
            lambda p: sender(peer.index, p),
            {"op": "gossip_records", "server": self.server_id, "records": records},
        ):
            peer.sent_seq = last
            self._count("net.gossip.records_sent", len(records))

    # -- inbound protocol ------------------------------------------------------

    def handle_remote(
        self, payload: Dict, send: Callable[[Dict], Optional[int]]
    ) -> None:
        """Process one inbound gossip payload; ``send`` frames replies
        back on whatever connection it arrived on (peer link or an
        accepted server connection — the protocol is symmetric)."""
        op = payload.get("op")
        self._refill(self.clock())
        if op == "gossip_ping":
            send({"op": "gossip_pong", "server": self.server_id})
        elif op == "gossip_pong":
            pass  # liveness was noted at the link layer
        elif op == "gossip_digest":
            self._handle_digest(payload, send)
        elif op == "gossip_pull":
            buckets = payload.get("buckets")
            if isinstance(buckets, dict):
                self._send_records(
                    send, self.tier.records_missing_from(
                        buckets, max_bytes=max(0, int(self._tokens))
                    )
                )
        elif op == "gossip_records":
            records = payload.get("records")
            if isinstance(records, list):
                merged = self.tier.merge(records)
                if merged:
                    self._count("net.gossip.records_merged", merged)
        else:
            send({
                "op": str(op), "status": "error",
                "detail": f"unknown gossip verb {op!r}",
            })

    def _handle_digest(self, payload: Dict, send) -> None:
        """Answer a peer's digest: pull what we might be missing, push
        whole buckets the peer does not hold at all."""
        theirs = payload.get("buckets")
        if not isinstance(theirs, dict):
            return
        mine = self.tier.digest()
        want = [n for n, fp in theirs.items() if mine.get(n) != fp]
        if want:
            self._budgeted_send(send, {
                "op": "gossip_pull",
                "server": self.server_id,
                "buckets": self.tier.epoch_vectors(want),
            })
        push = [n for n in mine if n not in theirs]
        if push:
            self._send_records(
                send,
                self.tier.records_missing_from(
                    {n: {} for n in push}, max_bytes=max(0, int(self._tokens))
                ),
            )

    def _send_records(self, send, records: List[Dict]) -> None:
        if not records:
            return
        if self._budgeted_send(
            send,
            {"op": "gossip_records", "server": self.server_id, "records": records},
        ):
            self._count("net.gossip.records_sent", len(records))

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational snapshot for the server's ``stats`` verb."""
        now = self.clock()
        return {
            "server_id": self.server_id,
            "rounds": self.rounds,
            "interval_s": self.interval_s,
            "budget_bytes_per_s": self.budget_bytes_per_s,
            "budget_remaining": self.budget_remaining,
            "tier_size": len(self.tier),
            "peers": [
                {
                    "address": peer.address,
                    "ready": peer.ready,
                    "failures": peer.failures,
                    "connects": peer.connects,
                    "lag_s": (
                        None if peer.lag_s(now) == float("inf")
                        else round(peer.lag_s(now), 3)
                    ),
                    "sent_seq": peer.sent_seq,
                }
                for peer in self.peers
            ],
        }

    def __repr__(self) -> str:
        live = sum(1 for p in self.peers if p.ready)
        return (
            f"GossipAgent({self.server_id!r}, peers={live}/{len(self.peers)} "
            f"live, rounds={self.rounds}, interval={self.interval_s:g}s)"
        )
