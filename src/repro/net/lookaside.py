"""The cross-shard lookaside donor tier.

Affinity routing makes shards cache-*disjoint* by design: a structural
fingerprint always lands on the same shard, so each worker's
:class:`~repro.service.SolutionCache` only ever sees its own slice of
the keyspace.  That is exactly right until fingerprints *drift* — a cost
matrix perturbed by re-measured link weights hashes to a new structural
key, routes to a different shard, and solves cold there even though
another worker holds a converged solution a few iterations away.

:class:`LookasideTier` is the read-mostly donor store that closes that
gap.  It lives in the server process (one per :class:`~repro.net.NetServer`)
and holds compact **donor records** — parameter vector, converged
allocation, solve cost — published by every worker's converged solves.
Donor records are indexed by problem *size* (not structural key: crossing
structure boundaries is the point) and matched by the same relative
parameter distance the local cache uses.  On dispatch the server attaches
the best donor as a **hint** to each payload; the worker consults hints
only for requests its *local* cache missed, via the service's
``lookaside`` hook, so the tier never shadows a local hit or a closer
local donor.  A hint that is used warm-starts the solve exactly like a
local near-miss — the effective request is identical, which is what makes
lookaside answers bit-for-bit the same as local warm starts from the same
donor — and the response reports ``cache="lookaside"``.

Since the tier's records also travel *between* servers (the
:mod:`repro.net.gossip` mesh), every record carries convergence metadata:

* an **origin** server id and a per-key **epoch** — a local republish
  bumps the epoch past whatever it replaces, and :meth:`merge` accepts a
  remote record only when its ``(epoch, origin)`` pair is strictly newer,
  so two servers folding each other's records always settle on the same
  winner (newest epoch wins; equal epochs break deterministically on the
  origin id);
* an optional **TTL** (``ttl_s``, against an injectable ``clock``):
  expired records are swept lazily and are never handed out, never
  digested, and never gossiped (``net.lookaside.expired`` counts them);
  a record crossing to another server carries its *remaining* ttl, so a
  donor never outlives its original lease by more than transit time;
* a monotonic **sequence number** per accepted record, which is what
  lets a gossip agent push "everything since seq S" as rumor batches
  (:meth:`records_since`), and per-size-bucket **digests** with epoch
  vectors (:meth:`digest` / :meth:`epoch_vectors` /
  :meth:`records_missing_from`) for anti-entropy repair.

The tier also works purely in-process: attach one instance as the
``lookaside`` hook of several :class:`~repro.service.AllocationService`
instances and they share donors directly (:meth:`get` / :meth:`publish`
are the hook interface; the wire-record form is what crosses worker
pipes and the gossip mesh).

Capacity is a bounded FIFO over publish order with replace-on-republish
(records are keyed by *problem* fingerprint, so re-solving the same
problem from a different start refreshes its record instead of
duplicating it).  Metrics: ``net.lookaside.published`` counts accepted
local records, ``net.lookaside.hits`` donors handed out,
``net.lookaside.expired`` records that aged out, and the
``net.lookaside.size`` gauge tracks occupancy.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service.fingerprint import parameter_vector, problem_fingerprint

__all__ = ["LookasideTier", "donor_record", "params_from_payload", "wire_record"]

#: Fixed per-record overhead assumed by the byte-budget estimators
#: (struct front + key/origin strings on the packed gossip wire).
_RECORD_OVERHEAD_BYTES = 128


def donor_record(request, result) -> Optional[Dict]:
    """The compact, picklable wire form of one converged solve.

    ``None`` for problems without a parameter vector (non-M/M/1) — they
    cannot be distance-matched, so they cannot donate.
    """
    params = parameter_vector(request.problem)
    if params is None:
        return None
    return {
        "key": problem_fingerprint(request.problem),
        "n": int(request.problem.n),
        "params": params,
        "allocation": np.array(result.allocation, dtype=float, copy=True),
        "iterations": int(result.iterations),
    }


def wire_record(record: Dict, now: float) -> Dict:
    """The gossip-wire form of one tier record: origin/epoch carried
    verbatim, absolute expiry rewritten as *remaining* ttl so the
    receiver can re-anchor it on its own clock."""
    expires_at = record.get("expires_at")
    return {
        "key": record["key"],
        "n": int(record["n"]),
        "params": record["params"],
        "allocation": record["allocation"],
        "iterations": int(record["iterations"]),
        "origin": str(record.get("origin", "")),
        "epoch": int(record.get("epoch", 0)),
        "ttl_s": None if expires_at is None else max(0.0, expires_at - now),
    }


def _record_bytes(record: Dict) -> int:
    """Wire-size estimate of one record (budget accounting)."""
    params = record["params"]
    allocation = record["allocation"]
    return (
        _RECORD_OVERHEAD_BYTES
        + len(record["key"])
        + len(str(record.get("origin", "")))
        + 8 * (int(np.size(params)) + int(np.size(allocation)))
    )


def params_from_payload(payload: Dict) -> Optional[np.ndarray]:
    """The parameter vector of a raw wire payload, without building a
    :class:`~repro.core.model.FileAllocationProblem`.

    Byte-compatible with :func:`~repro.service.fingerprint.parameter_vector`
    on the parsed problem (same concatenation, float64 throughout), which
    is what lets the server rank donors for a binary-codec payload it
    never parses.  ``None`` when the payload is a topology shorthand or
    malformed — those simply get no hint.
    """
    problem = payload.get("problem")
    if not isinstance(problem, dict):
        return None
    rates = problem.get("access_rates")
    mu = problem.get("mu")
    if rates is None or mu is None:
        return None
    try:
        rates = np.asarray(rates, dtype=float).ravel()
        mu = np.asarray(mu, dtype=float).ravel()
        k = float(problem.get("k", 1.0))
    except (TypeError, ValueError):
        return None
    if mu.size == 1 and rates.size > 1:
        mu = np.full(rates.size, mu[0])
    if mu.size != rates.size or rates.size == 0:
        return None
    return np.concatenate([rates, mu, [k]])


class LookasideTier:
    """Bounded cross-shard donor store (see module docstring).

    Parameters
    ----------
    capacity:
        Maximum retained donor records (FIFO over publish order, with
        replace-on-republish).
    max_distance:
        Largest relative parameter distance at which a record still
        donates — the same eligibility radius as the local cache's
        ``max_warm_distance``.
    ttl_s:
        Optional record lifetime.  Expired records are swept lazily (on
        the first operation past their expiry) and are never handed out,
        digested, or gossiped.  ``None`` (default) keeps records until
        capacity evicts them.
    origin:
        This tier's server id, stamped onto locally published records so
        the gossip mesh can attribute and tie-break them.  A
        :class:`~repro.net.NetServer` sets it to its own id.
    clock:
        Injectable monotonic clock (``time.monotonic`` by default);
        drives TTL expiry deterministically in tests.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        ``net.lookaside.*`` family.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        max_distance: float = 1.0,
        ttl_s: Optional[float] = None,
        origin: str = "",
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if max_distance <= 0:
            raise ConfigurationError("max_distance must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError("ttl_s must be positive (or None)")
        self.capacity = int(capacity)
        self.max_distance = float(max_distance)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.origin = str(origin)
        self.clock = clock if clock is not None else time.monotonic
        self.registry = registry
        self._records: "OrderedDict[str, Dict]" = OrderedDict()
        self._by_n: Dict[int, "OrderedDict[str, Dict]"] = {}
        #: Per-size vectorized view: (records, params matrix).
        self._views: Dict[int, Tuple[List[Dict], np.ndarray]] = {}
        self._seq = 0
        #: Earliest expiry among live records (lazy-sweep trigger).
        self._next_expiry: Optional[float] = None
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            self._sweep_locked(self.clock())
            return len(self._records)

    # -- expiry ----------------------------------------------------------------

    def _sweep_locked(self, now: float) -> None:
        """Drop every expired record.  O(1) when nothing is due: the
        earliest expiry is cached and checked first."""
        if self._next_expiry is None or now < self._next_expiry:
            return
        expired = [
            key for key, record in self._records.items()
            if record["expires_at"] is not None and record["expires_at"] <= now
        ]
        for key in expired:
            self._drop_locked(self._records.pop(key))
        self._next_expiry = min(
            (
                r["expires_at"]
                for r in self._records.values()
                if r["expires_at"] is not None
            ),
            default=None,
        )
        if expired and self.registry is not None:
            self.registry.counter_inc("net.lookaside.expired", len(expired))
            self.registry.gauge_set("net.lookaside.size", float(len(self._records)))

    def _drop_locked(self, record: Dict) -> None:
        n = int(record["n"])
        bucket = self._by_n.get(n)
        if bucket is not None:
            bucket.pop(record["key"], None)
            if not bucket:
                self._by_n.pop(n, None)
        self._views.pop(n, None)

    def _note_expiry_locked(self, expires_at: Optional[float]) -> None:
        if expires_at is not None and (
            self._next_expiry is None or expires_at < self._next_expiry
        ):
            self._next_expiry = expires_at

    # -- publishing ------------------------------------------------------------

    def _store_locked(self, key: str, record: Dict) -> None:
        """Replace-on-republish insert plus FIFO capacity eviction; the
        record must already carry origin/epoch/seq/expires_at."""
        old = self._records.pop(key, None)
        if old is not None:
            self._drop_locked(old)
        self._records[key] = record
        self._by_n.setdefault(int(record["n"]), OrderedDict())[key] = record
        self._views.pop(int(record["n"]), None)
        self._note_expiry_locked(record["expires_at"])
        while len(self._records) > self.capacity:
            _, evicted = self._records.popitem(last=False)
            self._drop_locked(evicted)

    def insert(self, record: Dict) -> None:
        """Fold one locally published donor record into the tier.

        Local publishes own the conflict resolution: the stored record is
        stamped with this tier's ``origin`` and an epoch one past whatever
        it replaces, so a republished solution wins mesh-wide over every
        copy of its predecessor.
        """
        key = record.get("key")
        params = record.get("params")
        if key is None or params is None:
            return
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            old = self._records.get(key)
            stored = {
                "key": key,
                "n": int(record["n"]),
                "params": params,
                "allocation": record["allocation"],
                "iterations": int(record["iterations"]),
                "origin": self.origin,
                "epoch": (int(old["epoch"]) + 1) if old is not None else 0,
                "expires_at": None if self.ttl_s is None else now + self.ttl_s,
            }
            self._seq += 1
            stored["seq"] = self._seq
            self._store_locked(key, stored)
            size = len(self._records)
        if self.registry is not None:
            self.registry.counter_inc("net.lookaside.published")
            self.registry.gauge_set("net.lookaside.size", float(size))

    def publish(self, request, result) -> None:
        """Service-hook form of :meth:`insert` (in-process sharing)."""
        record = donor_record(request, result)
        if record is not None:
            self.insert(record)

    def merge(self, records: List[Dict]) -> int:
        """Fold gossiped wire records in; returns how many were accepted.

        A remote record wins only when its ``(epoch, origin)`` pair is
        strictly greater than the stored one's — newest epoch first,
        origin id as the deterministic tie-break — so concurrent
        republishes converge to the same winner on every server.  Records
        arriving already expired (``ttl_s <= 0``) are ignored.
        """
        now = self.clock()
        merged = 0
        with self._lock:
            self._sweep_locked(now)
            for record in records:
                key = record.get("key")
                params = record.get("params")
                if key is None or params is None:
                    continue
                ttl = record.get("ttl_s")
                if ttl is not None and ttl <= 0:
                    continue
                epoch = int(record.get("epoch", 0))
                origin = str(record.get("origin", ""))
                old = self._records.get(key)
                if old is not None and (epoch, origin) <= (
                    int(old["epoch"]), str(old["origin"])
                ):
                    continue
                stored = {
                    "key": key,
                    "n": int(record["n"]),
                    "params": np.asarray(params, dtype=float),
                    "allocation": np.asarray(record["allocation"], dtype=float),
                    "iterations": int(record["iterations"]),
                    "origin": origin,
                    "epoch": epoch,
                    "expires_at": None if ttl is None else now + float(ttl),
                }
                self._seq += 1
                stored["seq"] = self._seq
                self._store_locked(key, stored)
                merged += 1
            size = len(self._records)
        if merged and self.registry is not None:
            self.registry.gauge_set("net.lookaside.size", float(size))
        return merged

    # -- gossip views ----------------------------------------------------------

    def records_since(
        self, seq: int, *, max_bytes: Optional[int] = None
    ) -> Tuple[List[Dict], int]:
        """Wire records accepted after sequence number ``seq``, oldest
        first, cut off at ``max_bytes`` — the rumor-push feed.  Returns
        ``(records, last_seq)`` where ``last_seq`` acknowledges exactly
        the records included (pass it back next time)."""
        now = self.clock()
        out: List[Dict] = []
        last = seq
        budget = max_bytes if max_bytes is not None else float("inf")
        with self._lock:
            self._sweep_locked(now)
            fresh = sorted(
                (r for r in self._records.values() if r["seq"] > seq),
                key=lambda r: r["seq"],
            )
            truncated = False
            for record in fresh:
                cost = _record_bytes(record)
                if cost > budget:
                    truncated = True
                    break  # over budget: the rest waits for the next round
                out.append(wire_record(record, now))
                last = record["seq"]
                budget -= cost
            if not truncated:
                # Everything live shipped; jump the cursor over the seqs
                # of records that expired or were replaced meanwhile, so
                # a quiet feed cannot look perpetually behind.
                last = self._seq
        return out, last

    @property
    def seq(self) -> int:
        """Sequence number of the most recently accepted record."""
        with self._lock:
            return self._seq

    def digest(self) -> Dict[str, str]:
        """Per-size-bucket fingerprints over live ``(key, epoch, origin)``
        triples — the compact anti-entropy summary.  Two tiers with equal
        digests hold identical donor sets."""
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            out = {}
            for n, bucket in self._by_n.items():
                h = hashlib.blake2b(digest_size=8)
                for key in sorted(bucket):
                    record = bucket[key]
                    h.update(
                        f"{key}:{record['epoch']}:{record['origin']};".encode()
                    )
                out[str(n)] = h.hexdigest()
            return out

    def epoch_vectors(self, sizes: List[str]) -> Dict[str, Dict[str, List]]:
        """``{n: {key: [epoch, origin]}}`` for the requested buckets —
        what a peer needs to compute exactly which records we lack.
        Buckets we do not hold come back as empty maps (send everything)."""
        now = self.clock()
        out: Dict[str, Dict[str, List]] = {}
        with self._lock:
            self._sweep_locked(now)
            for size in sizes:
                bucket = self._by_n.get(int(size), {})
                out[str(size)] = {
                    key: [int(r["epoch"]), str(r["origin"])]
                    for key, r in bucket.items()
                }
        return out

    def records_missing_from(
        self,
        vectors: Dict[str, Dict[str, List]],
        *,
        max_bytes: Optional[int] = None,
    ) -> List[Dict]:
        """Wire records the peer described by ``vectors`` lacks or holds
        older: its pull is answered with exactly these, oldest-seq first,
        bounded by ``max_bytes``."""
        now = self.clock()
        out: List[Dict] = []
        budget = max_bytes if max_bytes is not None else float("inf")
        with self._lock:
            self._sweep_locked(now)
            candidates: List[Dict] = []
            for size, theirs in vectors.items():
                bucket = self._by_n.get(int(size))
                if not bucket:
                    continue
                for key, record in bucket.items():
                    have = theirs.get(key)
                    if have is None or (int(record["epoch"]), str(record["origin"])) > (
                        int(have[0]), str(have[1])
                    ):
                        candidates.append(record)
            candidates.sort(key=lambda r: r["seq"])
            for record in candidates:
                cost = _record_bytes(record)
                if cost > budget:
                    break
                out.append(wire_record(record, now))
                budget -= cost
        return out

    # -- donor search ----------------------------------------------------------

    def donor_for_params(
        self, n: int, params: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """The closest donor allocation for an ``n``-node problem with
        parameter vector ``params``, or ``None`` outside ``max_distance``."""
        if params is None:
            return None
        with self._lock:
            self._sweep_locked(self.clock())
            view = self._views.get(n)
            if view is None:
                bucket = self._by_n.get(n)
                if not bucket:
                    return None
                records = list(bucket.values())
                view = (records, np.stack([r["params"] for r in records]))
                self._views[n] = view
            records, matrix = view
            if matrix.shape[1] != params.shape[0]:
                return None
            scale = np.maximum(np.maximum(np.abs(matrix), np.abs(params)), 1e-300)
            rel = (matrix - params) / scale
            distances = np.sqrt(np.sum(rel * rel, axis=1))
            best = int(np.argmin(distances))
            if float(distances[best]) > self.max_distance:
                return None
            donor = records[best]["allocation"]
        if self.registry is not None:
            self.registry.counter_inc("net.lookaside.hits")
        return np.array(donor, dtype=float, copy=True)

    def donor_for_payload(self, payload: Dict) -> Optional[np.ndarray]:
        """Donor lookup straight from a wire payload (server dispatch
        path; no problem construction)."""
        params = params_from_payload(payload)
        if params is None:
            return None
        # params = rates ++ mu ++ [k]: n is (len - 1) / 2.
        return self.donor_for_params((params.shape[0] - 1) // 2, params)

    def get(self, request) -> Optional[np.ndarray]:
        """Service-hook form of :meth:`donor_for_params` — consulted by
        :class:`~repro.service.AllocationService` on local cache misses."""
        return self.donor_for_params(
            request.problem.n, parameter_vector(request.problem)
        )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._by_n.clear()
            self._views.clear()
            self._next_expiry = None

    def __repr__(self) -> str:
        with self._lock:
            size, buckets = len(self._records), len(self._by_n)
        return (
            f"LookasideTier(size={size}/{self.capacity}, sizes={buckets}, "
            f"max_distance={self.max_distance:g}, ttl_s={self.ttl_s}, "
            f"origin={self.origin!r})"
        )
