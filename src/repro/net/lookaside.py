"""The cross-shard lookaside donor tier.

Affinity routing makes shards cache-*disjoint* by design: a structural
fingerprint always lands on the same shard, so each worker's
:class:`~repro.service.SolutionCache` only ever sees its own slice of
the keyspace.  That is exactly right until fingerprints *drift* — a cost
matrix perturbed by re-measured link weights hashes to a new structural
key, routes to a different shard, and solves cold there even though
another worker holds a converged solution a few iterations away.

:class:`LookasideTier` is the read-mostly donor store that closes that
gap.  It lives in the server process (one per :class:`~repro.net.NetServer`)
and holds compact **donor records** — parameter vector, converged
allocation, solve cost — published by every worker's converged solves.
Donor records are indexed by problem *size* (not structural key: crossing
structure boundaries is the point) and matched by the same relative
parameter distance the local cache uses.  On dispatch the server attaches
the best donor as a **hint** to each payload; the worker consults hints
only for requests its *local* cache missed, via the service's
``lookaside`` hook, so the tier never shadows a local hit or a closer
local donor.  A hint that is used warm-starts the solve exactly like a
local near-miss — the effective request is identical, which is what makes
lookaside answers bit-for-bit the same as local warm starts from the same
donor — and the response reports ``cache="lookaside"``.

The tier also works purely in-process: attach one instance as the
``lookaside`` hook of several :class:`~repro.service.AllocationService`
instances and they share donors directly (:meth:`get` / :meth:`publish`
are the hook interface; the wire-record form is what crosses worker
pipes).

Capacity is a bounded FIFO over publish order with replace-on-republish
(records are keyed by *problem* fingerprint, so re-solving the same
problem from a different start refreshes its record instead of
duplicating it).  Metrics: ``net.lookaside.published`` counts accepted
records, ``net.lookaside.hits`` donors handed out, and the
``net.lookaside.size`` gauge tracks occupancy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service.fingerprint import parameter_vector, problem_fingerprint

__all__ = ["LookasideTier", "donor_record", "params_from_payload"]


def donor_record(request, result) -> Optional[Dict]:
    """The compact, picklable wire form of one converged solve.

    ``None`` for problems without a parameter vector (non-M/M/1) — they
    cannot be distance-matched, so they cannot donate.
    """
    params = parameter_vector(request.problem)
    if params is None:
        return None
    return {
        "key": problem_fingerprint(request.problem),
        "n": int(request.problem.n),
        "params": params,
        "allocation": np.array(result.allocation, dtype=float, copy=True),
        "iterations": int(result.iterations),
    }


def params_from_payload(payload: Dict) -> Optional[np.ndarray]:
    """The parameter vector of a raw wire payload, without building a
    :class:`~repro.core.model.FileAllocationProblem`.

    Byte-compatible with :func:`~repro.service.fingerprint.parameter_vector`
    on the parsed problem (same concatenation, float64 throughout), which
    is what lets the server rank donors for a binary-codec payload it
    never parses.  ``None`` when the payload is a topology shorthand or
    malformed — those simply get no hint.
    """
    problem = payload.get("problem")
    if not isinstance(problem, dict):
        return None
    rates = problem.get("access_rates")
    mu = problem.get("mu")
    if rates is None or mu is None:
        return None
    try:
        rates = np.asarray(rates, dtype=float).ravel()
        mu = np.asarray(mu, dtype=float).ravel()
        k = float(problem.get("k", 1.0))
    except (TypeError, ValueError):
        return None
    if mu.size == 1 and rates.size > 1:
        mu = np.full(rates.size, mu[0])
    if mu.size != rates.size or rates.size == 0:
        return None
    return np.concatenate([rates, mu, [k]])


class LookasideTier:
    """Bounded cross-shard donor store (see module docstring).

    Parameters
    ----------
    capacity:
        Maximum retained donor records (FIFO over publish order, with
        replace-on-republish).
    max_distance:
        Largest relative parameter distance at which a record still
        donates — the same eligibility radius as the local cache's
        ``max_warm_distance``.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        ``net.lookaside.*`` family.
    """

    def __init__(
        self,
        capacity: int = 512,
        *,
        max_distance: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if max_distance <= 0:
            raise ConfigurationError("max_distance must be positive")
        self.capacity = int(capacity)
        self.max_distance = float(max_distance)
        self.registry = registry
        self._records: "OrderedDict[str, Dict]" = OrderedDict()
        self._by_n: Dict[int, "OrderedDict[str, Dict]"] = {}
        #: Per-size vectorized view: (records, params matrix).
        self._views: Dict[int, Tuple[List[Dict], np.ndarray]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- publishing ------------------------------------------------------------

    def insert(self, record: Dict) -> None:
        """Fold one wire-form donor record into the tier."""
        key = record.get("key")
        params = record.get("params")
        if key is None or params is None:
            return
        n = int(record["n"])
        with self._lock:
            old = self._records.pop(key, None)
            if old is not None:
                self._by_n.get(int(old["n"]), {}).pop(key, None)
                self._views.pop(int(old["n"]), None)
            self._records[key] = record
            self._by_n.setdefault(n, OrderedDict())[key] = record
            self._views.pop(n, None)
            while len(self._records) > self.capacity:
                _, evicted = self._records.popitem(last=False)
                en = int(evicted["n"])
                bucket = self._by_n.get(en)
                if bucket is not None:
                    bucket.pop(evicted["key"], None)
                    if not bucket:
                        self._by_n.pop(en, None)
                self._views.pop(en, None)
            size = len(self._records)
        if self.registry is not None:
            self.registry.counter_inc("net.lookaside.published")
            self.registry.gauge_set("net.lookaside.size", float(size))

    def publish(self, request, result) -> None:
        """Service-hook form of :meth:`insert` (in-process sharing)."""
        record = donor_record(request, result)
        if record is not None:
            self.insert(record)

    # -- donor search ----------------------------------------------------------

    def donor_for_params(
        self, n: int, params: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """The closest donor allocation for an ``n``-node problem with
        parameter vector ``params``, or ``None`` outside ``max_distance``."""
        if params is None:
            return None
        with self._lock:
            view = self._views.get(n)
            if view is None:
                bucket = self._by_n.get(n)
                if not bucket:
                    return None
                records = list(bucket.values())
                view = (records, np.stack([r["params"] for r in records]))
                self._views[n] = view
            records, matrix = view
            if matrix.shape[1] != params.shape[0]:
                return None
            scale = np.maximum(np.maximum(np.abs(matrix), np.abs(params)), 1e-300)
            rel = (matrix - params) / scale
            distances = np.sqrt(np.sum(rel * rel, axis=1))
            best = int(np.argmin(distances))
            if float(distances[best]) > self.max_distance:
                return None
            donor = records[best]["allocation"]
        if self.registry is not None:
            self.registry.counter_inc("net.lookaside.hits")
        return np.array(donor, dtype=float, copy=True)

    def donor_for_payload(self, payload: Dict) -> Optional[np.ndarray]:
        """Donor lookup straight from a wire payload (server dispatch
        path; no problem construction)."""
        params = params_from_payload(payload)
        if params is None:
            return None
        # params = rates ++ mu ++ [k]: n is (len - 1) / 2.
        return self.donor_for_params((params.shape[0] - 1) // 2, params)

    def get(self, request) -> Optional[np.ndarray]:
        """Service-hook form of :meth:`donor_for_params` — consulted by
        :class:`~repro.service.AllocationService` on local cache misses."""
        return self.donor_for_params(
            request.problem.n, parameter_vector(request.problem)
        )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._by_n.clear()
            self._views.clear()

    def __repr__(self) -> str:
        with self._lock:
            size, buckets = len(self._records), len(self._by_n)
        return (
            f"LookasideTier(size={size}/{self.capacity}, sizes={buckets}, "
            f"max_distance={self.max_distance:g})"
        )
