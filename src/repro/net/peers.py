"""Static peer membership for the gossip mesh.

A :class:`~repro.net.NetServer` joins the mesh with a fixed peer list
(``--peers host:port,host:port``) — no discovery protocol, matching the
source paper's fixed network of nodes.  What *is* dynamic is liveness:
each peer carries a failure counter and an exponential backoff schedule,
so a dead peer costs one cheap reconnect attempt per backoff window
instead of a connect storm, and a peer that comes back is picked up on
the next due attempt.

:class:`PeerState` is pure bookkeeping — sockets and frames live in
:class:`~repro.net.NetServer` (the event loop owns every fd) and the
protocol lives in :class:`~repro.net.gossip.GossipAgent`.  Keeping the
three apart is what makes the agent testable with a fake sender.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["PeerState", "parse_peers"]

#: First retry delay after a failure; doubles per consecutive failure.
BACKOFF_BASE_S = 0.2
#: Ceiling on the backoff delay, however many failures accumulate.
BACKOFF_MAX_S = 15.0


def parse_peers(spec) -> List[Tuple[str, int]]:
    """``"host:port,host:port"`` (or an iterable of such strings / of
    ``(host, port)`` pairs) into a validated, de-duplicated address list.

    Raises :class:`~repro.exceptions.ConfigurationError` on malformed
    entries — a mistyped peer should fail at startup, not as an eternal
    reconnect loop.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        entries = [part for part in spec.split(",") if part.strip()]
    else:
        entries = list(spec)
    out: List[Tuple[str, int]] = []
    seen = set()
    for entry in entries:
        if isinstance(entry, tuple):
            host, port = entry
        else:
            host, _, port_text = str(entry).strip().rpartition(":")
            if not host:
                raise ConfigurationError(
                    f"bad peer {entry!r}: expected host:port"
                )
            port = port_text
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"bad peer {entry!r}: port {port!r} is not an integer"
            ) from None
        if not 0 < port < 65536:
            raise ConfigurationError(
                f"bad peer {entry!r}: port {port} out of range"
            )
        address = (str(host), port)
        if address not in seen:
            seen.add(address)
            out.append(address)
    return out


class PeerState:
    """Liveness and rumor bookkeeping for one static peer.

    The owning server flips :attr:`ready` as its outbound link comes and
    goes; :meth:`mark_failed` doubles the backoff (``0.2s · 2^failures``,
    capped at 15s) and :meth:`mark_ready` resets it.  ``sent_seq`` is the
    gossip agent's rumor cursor into the local tier — reset on every
    reconnect so a peer that restarted (and lost its tier) is re-fed from
    the start rather than from wherever the cursor died.
    """

    __slots__ = (
        "index", "host", "port", "ready", "failures", "next_attempt",
        "last_heard", "sent_seq", "connects",
    )

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = int(port)
        self.ready = False
        self.failures = 0
        self.next_attempt = 0.0  # due immediately
        self.last_heard = 0.0
        self.sent_seq = 0
        self.connects = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def due(self, now: float) -> bool:
        """Is a (re)connect attempt allowed yet?"""
        return not self.ready and now >= self.next_attempt

    def mark_ready(self, now: float) -> None:
        self.ready = True
        self.failures = 0
        self.last_heard = now
        self.connects += 1
        self.sent_seq = 0  # restart rumor feed from the beginning

    def mark_failed(self, now: float) -> bool:
        """Record one failure and schedule the next attempt; returns
        whether the peer was ready (a live link went *down*, as opposed to
        one more refusal from an already-down peer)."""
        was_ready = self.ready
        self.ready = False
        backoff = min(BACKOFF_BASE_S * (2.0 ** self.failures), BACKOFF_MAX_S)
        self.failures += 1
        self.next_attempt = now + backoff
        return was_ready

    def lag_s(self, now: float) -> float:
        """Seconds since this peer was last heard from (``inf`` before
        first contact)."""
        return now - self.last_heard if self.last_heard else float("inf")

    def __repr__(self) -> str:
        state = "ready" if self.ready else "down"
        return (
            f"PeerState({self.index}: {self.address}, {state}, "
            f"failures={self.failures}, sent_seq={self.sent_seq})"
        )
