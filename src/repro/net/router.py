"""Shard routing: which worker answers which request.

The solution cache and the micro-batcher both get their leverage from
*locality*: exact repeats only hit if they reach the cache that stored
them, and requests only batch with requests sitting in the same queue.
A multi-worker server therefore cannot route uniformly at random without
giving most of that leverage away — each worker would see ``1/W`` of the
repeats of any given problem.

:class:`ShardRouter` partitions requests by the problem's
**structural fingerprint** (:func:`repro.service.fingerprint.structural_key`
— node count plus cost matrix).  Everything about one network topology
lands on one shard: exact repeats hit that shard's cache, near-misses
find their warm-start donors there, and same-shape requests batch
together.  Different topologies spread across shards, which is where the
multi-core win comes from.

``policy="random"`` (seeded, for reproducibility) is the control group:
the same interface with locality destroyed, used by
``benchmarks/bench_net.py`` to measure what affinity is worth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.service.fingerprint import structural_key
from repro.service.types import SolveRequest

__all__ = ["ShardRouter", "shard_of_key"]

ROUTING_POLICIES = ("affinity", "random")


def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic shard index for one structural-key hex digest."""
    return int(key[:16], 16) % num_shards


class ShardRouter:
    """Maps a :class:`~repro.service.types.SolveRequest` to a shard index.

    Parameters
    ----------
    num_shards:
        How many partitions to route across (>= 1).
    policy:
        ``"affinity"`` (default) routes by structural fingerprint, so
        repeats and same-shape requests share a shard; ``"random"``
        routes uniformly (seeded), the baseline that measures what
        affinity buys.
    seed:
        Seed for the ``"random"`` policy's generator.
    """

    def __init__(
        self, num_shards: int, *, policy: str = "affinity", seed: int = 0
    ):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r} "
                f"(expected one of {ROUTING_POLICIES})"
            )
        self.num_shards = int(num_shards)
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        #: Requests routed per shard (mirrors ``net.shard.<i>.routed``).
        self.route_counts = [0] * self.num_shards

    def shard_for(self, request: SolveRequest) -> int:
        """The shard that should own ``request``."""
        if self.policy == "random":
            return self.shard_for_key("")
        return self.shard_for_key(structural_key(request.problem))

    def shard_for_key(self, key: str) -> int:
        """The shard owning one structural-key digest.

        The binary wire path routes on a key computed straight from the
        packed cost-matrix bytes
        (:func:`~repro.service.fingerprint.structural_key_from_matrix`)
        without building the problem; JSON requests go through
        :meth:`shard_for` after parsing.  Both end up here, so the two
        codecs route one problem to the same shard.
        """
        if self.policy == "random":
            shard = int(self._rng.integers(self.num_shards))
        else:
            shard = shard_of_key(key, self.num_shards)
        self.route_counts[shard] += 1
        return shard

    def routing_key(self, request: SolveRequest) -> Optional[str]:
        """The affinity key routing is based on (``None`` under random)."""
        if self.policy == "random":
            return None
        return structural_key(request.problem)

    def __repr__(self) -> str:
        return (
            f"ShardRouter(num_shards={self.num_shards}, policy={self.policy!r}, "
            f"routed={sum(self.route_counts)})"
        )
