"""The sharded TCP front end over the allocation service.

:class:`NetServer` is the piece that turns ``repro.service`` from an
in-process library into something real clients connect to:

* one **event-loop thread** (:mod:`selectors`) owns every socket —
  accept, read, frame parsing, and response writes all happen
  non-blocking in one place, so a thousand idle connections cost a
  thousand registrations, not a thousand threads, and a pipelining
  client can keep many requests in flight per connection;
* each connection speaks the **binary codec** (:mod:`repro.net.binary`,
  struct-packed headers + raw float64 bodies) or the **JSON codec**
  (:mod:`repro.net.framing`, the exact ``repro-fap serve`` wire format)
  — the first bytes decide (binary frames open with
  :data:`~repro.net.binary.BINARY_MAGIC`, JSON frames with a decimal
  length line), so old JSON clients keep working unchanged and both
  kinds can share one listener;
* a :class:`~repro.net.router.ShardRouter` partitions requests across
  **shards**, each shard a *bounded* FIFO queue owned by one dispatch
  thread; shards map onto **worker processes** (:mod:`repro.net.worker`),
  each running its own :class:`~repro.service.AllocationService` with
  its own cache — so repeats of a problem hit the cache that stored
  them, and same-shape requests micro-batch together.  A full shard
  queue answers immediately with a structured
  ``{"status": "rejected", "reason": "overloaded"}`` instead of letting
  a slow worker grow the queue (and every queued client's deadline)
  without bound;
* with a shared ``secret``, connections must pass an **HMAC
  challenge/response** (hello → nonce → ``HMAC-SHA256(secret, nonce)``)
  before any other frame is served; failures are answered in-band and
  the connection is closed;
* with ``peers``, the loop also runs a
  :class:`~repro.net.gossip.GossipAgent`: outbound links to the other
  servers of a static mesh (non-blocking connects, the same HMAC
  handshake, exponential backoff on dead peers) over which lookaside
  donor records are rumor-pushed and periodically reconciled by digest
  exchange — one server's converged solution becomes every server's
  warm start (see :mod:`repro.net.gossip`);
* **robustness is structural**: a dead worker is respawned and exactly
  the requests in flight with it get in-band ``worker_restarted``
  errors; a draining server (SIGTERM) finishes in-flight work and
  answers queued/new requests with structured ``shutting_down``
  rejections; a malformed frame — JSON or binary — fails one
  connection, never the server.

Control verbs ride the same frame stream: ``{"op": "stats"}`` returns
the merged ``service.*`` metrics of every worker plus the server's own
``net.*`` family (connections, bytes, per-shard routing and queue
depth, worker restarts); ``{"op": "ping"}`` is a liveness check;
``{"op": "hello"}`` negotiates codec and authentication.
"""

from __future__ import annotations

import errno
import hashlib
import hmac
import queue
import secrets as _secrets
import selectors
import signal
import socket
import threading
import time
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.net import binary as _binary
from repro.net import framing as _framing
from repro.net.binary import BINARY_MAGIC, BinaryFrameError, encode_binary_frame
from repro.net.framing import FrameError, encode_frame
from repro.net.gossip import GOSSIP_OPS, GossipAgent
from repro.net.lookaside import LookasideTier
from repro.net.peers import parse_peers
from repro.net.router import ShardRouter
from repro.net.worker import (
    ERROR_WORKER_RESTARTED,
    WorkerConfig,
    WorkerCrashed,
    WorkerHandle,
)
from repro.service.codec import safe_parse
from repro.service.fingerprint import structural_key_from_matrix

__all__ = [
    "NetServer",
    "REJECT_OVERLOADED",
    "REJECT_SHUTTING_DOWN",
    "SERVER_CODECS",
]

#: Rejection reason for requests that arrive at (or are queued in) a
#: draining server.
REJECT_SHUTTING_DOWN = "shutting_down"

#: Rejection reason for requests that arrive at a full shard queue — the
#: transport's backpressure signal (the per-worker admission queue has
#: its own ``queue_full``).
REJECT_OVERLOADED = "overloaded"

#: Accepted values for :class:`NetServer`'s ``codec`` parameter:
#: ``"auto"`` serves both protocols on one listener, ``"binary"`` /
#: ``"json"`` restrict to one (the other is refused in-band).
SERVER_CODECS = ("auto", "binary", "json")

_STOP = object()

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE
_RECV_CHUNK = 262144

_ASCII_DIGITS = frozenset(b"0123456789")


@dataclass
class _WorkItem:
    """One routed request waiting in a shard queue."""

    payload: Dict
    request_id: str
    reply: Callable[[Dict], None]


#: How long an outbound peer connect/handshake may take before the link
#: is declared failed and backed off.
_PEER_CONNECT_TIMEOUT_S = 5.0


class _PeerLink:
    """Event-loop state for one *outbound* gossip connection.

    Shares the buffer/offset layout of :class:`_Connection` (so
    :meth:`NetServer._extract_frames` works on both), but is loop-thread
    confined — no out-buffer lock — and walks a small handshake state
    machine: ``connecting`` → (``hello`` → ``auth``, when the mesh has a
    shared secret) → ``ready``.
    """

    __slots__ = ("index", "sock", "codec", "buffer", "pos", "out", "state",
                 "deadline", "dead")

    def __init__(self, index: int, sock: socket.socket, deadline: float):
        self.index = index
        self.sock = sock
        self.codec = "binary"  # peer links always speak binary frames
        self.buffer = bytearray()
        self.pos = 0
        self.out = bytearray()
        self.state = "connecting"
        self.deadline = deadline
        self.dead = False


class _Connection:
    """Event-loop state for one accepted socket."""

    __slots__ = (
        "sock", "codec", "buffer", "pos", "out", "out_lock",
        "authed", "nonce", "closing", "dead",
    )

    def __init__(self, sock: socket.socket, *, authed: bool):
        self.sock = sock
        self.codec: Optional[str] = None  # sniffed from the first bytes
        self.buffer = bytearray()
        self.pos = 0
        self.out = bytearray()
        self.out_lock = threading.Lock()
        self.authed = authed
        self.nonce: Optional[str] = None
        self.closing = False  # flush pending writes, then close
        self.dead = False  # closed; replies are dropped

    def encode(self, payload: Dict, corr_id: int) -> bytes:
        if self.codec == "binary":
            return encode_binary_frame(payload, corr_id)
        return encode_frame(payload)


class NetServer:
    """Sharded socket transport over per-worker allocation services.

    Parameters
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (read
        :attr:`address` after :meth:`start`).
    workers:
        Worker *processes*, each owning one
        :class:`~repro.service.AllocationService` + cache.
    shards:
        Routing partitions (default: one per worker).  More shards than
        workers is allowed — shard ``s`` is served by worker
        ``s % workers``.
    routing:
        ``"affinity"`` (structural fingerprint; default) or ``"random"``
        (the locality-free baseline the benchmarks compare against).
    codec:
        ``"auto"`` (default) accepts binary and JSON connections on one
        listener; ``"binary"`` / ``"json"`` refuse the other protocol
        with an in-band ``codec_disabled`` error.
    secret:
        Optional shared secret.  When set, every connection must pass
        the HMAC challenge/response handshake (``hello`` → ``nonce`` →
        ``auth`` carrying ``HMAC-SHA256(secret, nonce)``) before any
        other frame is served.
    max_batch, cache_size, cache_ttl_s, queue_depth, default_timeout_s:
        Per-worker service configuration (see
        :class:`~repro.net.worker.WorkerConfig`).  ``queue_depth`` also
        bounds each *shard* queue: requests beyond it are answered with
        structured ``overloaded`` rejections instead of queuing without
        bound behind a slow worker.
    cache_eviction, cache_max_bytes:
        Per-worker cache policy: ``"lru"`` (default) or ``"cost"``
        (value-weighted eviction), plus an optional byte budget (see
        :class:`~repro.service.SolutionCache`).
    drift_threshold, drift_window:
        When ``drift_threshold`` is set, each worker runs a
        :class:`~repro.service.DriftTracker`: exact cache hits stored
        under a drifted traffic estimate are demoted to warm re-solves.
    lookaside:
        Enable the cross-shard :class:`~repro.net.lookaside.LookasideTier`:
        converged solves publish compact donor records back through the
        worker pipes, and dispatches carry the tier's best donor as a
        hint so a request routed to one shard can warm-start from
        another shard's solution when fingerprints drift across affinity
        boundaries.  Off by default (shards stay fully disjoint).
    lookaside_capacity:
        Donor records retained by the tier.
    lookaside_ttl_s:
        Optional lifetime for tier records.  An expired record is never
        handed out as a hint nor gossiped, and is lazily swept
        (``net.lookaside.expired``).
    peers:
        Static gossip mesh membership: ``"host:port,host:port"`` (or a
        list of such strings / ``(host, port)`` pairs) naming the *other*
        servers.  When set, a :class:`~repro.net.gossip.GossipAgent` runs
        on the event loop: donor records published to this server's
        lookaside tier are rumor-pushed to every live peer and the tiers
        are periodically reconciled by digest exchange, so one server's
        converged solution warm-starts the whole mesh.  Requires
        ``lookaside=True`` and a non-JSON codec
        (:class:`~repro.exceptions.ConfigurationError` otherwise).  Peer
        links reuse the HMAC handshake when ``secret`` is set — every
        server in a mesh must share the same secret.
    gossip_interval_s:
        Gossip round period (heartbeats + rumor pushes per round; a
        digest to one peer every fourth round).
    gossip_budget:
        Outbound gossip byte budget per second (token bucket shared by
        rumors, digests, and record transfers).
    server_id:
        Mesh identity stamped as ``origin`` on records this server
        publishes (default ``"host:port"`` of the bound listener).
    batch_window_s:
        How long a shard thread lingers collecting further queued
        requests (up to ``max_batch``) before dispatching a group to its
        worker.  ``0.0`` (default) dispatches eagerly — whatever is
        already queued ships immediately.  A few milliseconds trades
        that much latency for fuller groups under bursty pipelined
        load, which the workers' micro-batchers fuse into larger
        lockstep solves.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        server-side ``net.*`` family; one is created if omitted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        shards: Optional[int] = None,
        routing: str = "affinity",
        codec: str = "auto",
        secret: Optional[str] = None,
        max_batch: int = 32,
        cache_size: int = 256,
        cache_ttl_s: Optional[float] = None,
        cache_eviction: str = "lru",
        cache_max_bytes: Optional[int] = None,
        drift_threshold: Optional[float] = None,
        drift_window: int = 16,
        lookaside: bool = False,
        lookaside_capacity: int = 512,
        lookaside_ttl_s: Optional[float] = None,
        peers=None,
        gossip_interval_s: float = 1.0,
        gossip_budget: int = 262144,
        server_id: Optional[str] = None,
        queue_depth: int = 1024,
        batch_window_s: float = 0.0,
        default_timeout_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        context=None,
    ):
        if codec not in SERVER_CODECS:
            raise ValueError(
                f"unknown codec {codec!r} (expected one of {SERVER_CODECS})"
            )
        self.host = host
        self.port = int(port)
        self.num_workers = max(1, int(workers))
        self.num_shards = int(shards) if shards is not None else self.num_workers
        self.codec = codec
        self.registry = registry if registry is not None else MetricsRegistry()
        self.router = ShardRouter(self.num_shards, policy=routing)
        self.queue_depth = max(1, int(queue_depth))
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.worker_config = WorkerConfig(
            max_batch=max_batch,
            cache_size=cache_size,
            cache_ttl_s=cache_ttl_s,
            queue_depth=queue_depth,
            default_timeout_s=default_timeout_s,
            cache_eviction=cache_eviction,
            cache_max_bytes=cache_max_bytes,
            drift_threshold=drift_threshold,
            drift_window=drift_window,
            lookaside=lookaside,
        )
        self.lookaside = (
            LookasideTier(
                lookaside_capacity,
                ttl_s=lookaside_ttl_s,
                registry=self.registry,
            )
            if lookaside
            else None
        )
        self.peer_addresses = parse_peers(peers)
        if self.peer_addresses and self.lookaside is None:
            raise ConfigurationError(
                "peers require the lookaside tier: gossip replicates donor "
                "records, and without --lookaside there is nothing to "
                "replicate (start with --lookaside as well)"
            )
        if self.peer_addresses and codec == "json":
            raise ConfigurationError(
                "gossip peers speak the binary codec; codec='json' cannot "
                "join a mesh (use codec='auto' or 'binary')"
            )
        self.server_id = server_id
        self.gossip_interval_s = float(gossip_interval_s)
        self.gossip_budget = int(gossip_budget)
        self._secret = secret.encode("utf-8") if isinstance(secret, str) else secret
        # Hot-path metric names, built once: the routing path touches two
        # per-shard series per request.
        self._routed_counters = [
            f"net.shard.{s}.routed" for s in range(self.num_shards)
        ]
        self._depth_gauges = [
            f"net.shard.{s}.queue_depth" for s in range(self.num_shards)
        ]
        self._context = context
        self._workers: List[WorkerHandle] = []
        self._queues: List["queue.Queue"] = []
        self._shard_threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._loop_stop = threading.Event()
        self._wake_recv: Optional[socket.socket] = None
        self._wake_send: Optional[socket.socket] = None
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._write_pending: set = set()
        self._write_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._draining = False
        self._started = False
        self._stopped = threading.Event()
        self._gossip: Optional[GossipAgent] = None
        self._peer_links: List[Optional[_PeerLink]] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "NetServer":
        """Spawn workers and shard threads, bind, and start the loop."""
        with self._state_lock:
            if self._started:
                return self
            self._started = True
        self._workers = [
            WorkerHandle(i, self.worker_config, context=self._context)
            for i in range(self.num_workers)
        ]
        for shard in range(self.num_shards):
            self._queues.append(queue.Queue(maxsize=self.queue_depth))
            thread = threading.Thread(
                target=self._shard_loop, args=(shard,),
                name=f"repro-net-shard-{shard}", daemon=True,
            )
            self._shard_threads.append(thread)
            thread.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        listener.setblocking(False)
        self.port = listener.getsockname()[1]
        self._listener = listener
        if self.server_id is None:
            self.server_id = f"{self.host}:{self.port}"
        if self.lookaside is not None:
            self.lookaside.origin = self.server_id
        if self.peer_addresses:
            self._gossip = GossipAgent(
                self.server_id,
                self.lookaside,
                self.peer_addresses,
                interval_s=self.gossip_interval_s,
                budget_bytes_per_s=self.gossip_budget,
                registry=self.registry,
            )
            self._gossip.sender = self._gossip_send
            self._peer_links = [None] * len(self.peer_addresses)
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, _READ, data="listener")
        self._selector.register(self._wake_recv, _READ, data="wake")
        self._loop_thread = threading.Thread(
            target=self._loop, name="repro-net-loop", daemon=True
        )
        self._loop_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ephemeral port 0)."""
        return (self.host, self.port)

    def worker_pids(self) -> List[int]:
        """Live worker pids (test hook for crash-recovery scenarios)."""
        return [w.pid for w in self._workers]

    def shutdown(self, *, timeout_s: float = 10.0) -> None:
        """Graceful drain: in-flight requests finish, queued and new ones
        are rejected with structured ``shutting_down`` responses, workers
        exit, and the listener closes.  Idempotent and thread-safe."""
        with self._state_lock:
            if not self._started or self._stopped.is_set():
                self._stopped.set()
                return
            already = self._draining
            self._draining = True
        if already:
            self._stopped.wait(timeout_s)
            return
        for q in self._queues:
            q.put(_STOP)
        for thread in self._shard_threads:
            thread.join(timeout=timeout_s)
        for worker in self._workers:
            worker.shutdown()
        # In-flight replies are already queued on their connections; the
        # loop flushes what it can before closing everything.
        self._loop_stop.set()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=timeout_s)
        self._stopped.set()

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (e.g. from a signal)."""
        self._stopped.wait()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """SIGTERM/SIGINT → graceful drain (call from the main thread)."""

        def _handler(signum, frame):
            threading.Thread(
                target=self.shutdown, name="repro-net-drain", daemon=True
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- the event loop --------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\0")
        except (OSError, AttributeError):
            pass

    def _loop(self) -> None:
        sel = self._selector
        try:
            while not self._loop_stop.is_set():
                timeout = 1.0
                if self._gossip is not None and not self._draining:
                    # Wake exactly when the next gossip round is due (with
                    # a small floor so a due round never busy-spins).
                    timeout = min(1.0, max(
                        0.005,
                        self._gossip.seconds_until_due(time.monotonic()),
                    ))
                events = sel.select(timeout=timeout)
                for key, mask in events:
                    if key.data == "listener":
                        self._accept_ready()
                    elif key.data == "wake":
                        self._drain_wake()
                    elif isinstance(key.data, _PeerLink):
                        link = key.data
                        if mask & _WRITE and not link.dead:
                            self._peer_writable(link)
                        if mask & _READ and not link.dead:
                            self._peer_readable(link)
                    else:
                        conn = key.data
                        if mask & _WRITE:
                            self._flush(conn)
                        if mask & _READ and not conn.dead and not conn.closing:
                            self._read_ready(conn)
                with self._write_lock:
                    pending, self._write_pending = self._write_pending, set()
                for conn in pending:
                    self._flush(conn)
                if self._gossip is not None and not self._draining:
                    self._gossip_tick()
        finally:
            self._final_flush()

    def _drain_wake(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _final_flush(self) -> None:
        """Best-effort delivery of already-queued replies at loop exit,
        then close every socket.  Sockets briefly revert to blocking
        sends with a short timeout so a reachable client gets its bytes
        without letting an unreachable one stall the drain."""
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            with conn.out_lock:
                data, conn.out = bytes(conn.out), bytearray()
            if data and not conn.dead:
                try:
                    conn.sock.settimeout(1.0)
                    conn.sock.sendall(data)
                except OSError:
                    pass
            self._close_conn(conn)
        for link in self._peer_links:
            if link is not None and not link.dead:
                self._peer_fail(link, "server shutting down", quiet=True)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        try:
            self._selector.close()
        except OSError:
            pass

    # -- accepting and reading -------------------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, _peer = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            if self._draining:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, authed=self._secret is None)
            self.registry.counter_inc("net.connections")
            with self._conn_lock:
                self._connections.add(conn)
                self.registry.gauge_set(
                    "net.connections_active", float(len(self._connections))
                )
            self._selector.register(sock, _READ, data=conn)

    def _read_ready(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not chunk:
            self._close_conn(conn)
            return
        self.registry.counter_inc("net.bytes_in", len(chunk))
        conn.buffer += chunk
        if conn.codec is None and not self._sniff(conn):
            return
        frames, error = self._extract_frames(conn)
        for payload, corr_id in frames:
            self._handle_payload(conn, payload, corr_id)
            if conn.closing or conn.dead:
                return
        if error is not None:
            self.registry.counter_inc("net.bad_frames")
            self._fail_conn(
                conn,
                {"status": "error", "reason": "bad_frame", "detail": str(error)},
            )

    def _sniff(self, conn: _Connection) -> bool:
        """Decide the connection's codec from its first bytes.  Returns
        ``True`` once decided; ``False`` while more bytes are needed.  A
        first byte that can start neither protocol fails the connection
        in-band (as JSON — the one codec any peer can read)."""
        first = conn.buffer[0]
        if first in _ASCII_DIGITS:
            conn.codec = "json"
        elif first == BINARY_MAGIC[0]:
            if len(conn.buffer) < len(BINARY_MAGIC):
                return False  # wait for the rest of the magic
            if bytes(conn.buffer[: len(BINARY_MAGIC)]) != BINARY_MAGIC:
                conn.codec = "json"  # readable error for an unknown peer
                self.registry.counter_inc("net.bad_frames")
                self._fail_conn(conn, {
                    "status": "error", "reason": "bad_frame",
                    "detail": f"bad frame magic {bytes(conn.buffer[:4])!r}",
                })
                return False
            conn.codec = "binary"
        else:
            conn.codec = "json"
            self.registry.counter_inc("net.bad_frames")
            self._fail_conn(conn, {
                "status": "error", "reason": "bad_frame",
                "detail": "first byte starts neither a binary nor a JSON frame",
            })
            return False
        self.registry.counter_inc(f"net.codec.{conn.codec}")
        if self.codec != "auto" and conn.codec != self.codec:
            self.registry.counter_inc("net.rejected.codec_disabled")
            self._fail_conn(conn, {
                "status": "error", "reason": "codec_disabled",
                "detail": f"this server speaks only the {self.codec} codec",
            })
            return False
        return True

    def _extract_frames(self, conn: _Connection):
        """``(frames, error)``: every complete ``(payload, corr_id)``
        buffered on ``conn``, consuming by offset (no per-frame buffer
        re-slicing).  A frame error stops extraction but the frames
        already decoded are still returned — they arrived first and
        deserve answers before the connection is failed."""
        frames = []
        error: Optional[FrameError] = None
        buffer, pos = conn.buffer, conn.pos
        try:
            if conn.codec == "binary":
                while True:
                    parsed = _binary._parse_header(buffer, pos)
                    if parsed is None:
                        break
                    kind, corr_id, length = parsed
                    start = pos + _binary.HEADER_BYTES
                    if len(buffer) < start + length:
                        break
                    body = bytes(buffer[start : start + length])
                    frames.append((_binary._decode_body(kind, body), corr_id))
                    pos = start + length
            else:
                while True:
                    parsed = _framing._parse_prefix(buffer, pos)
                    if parsed is None:
                        break
                    length, start = parsed
                    if len(buffer) < start + length:
                        break
                    body = bytes(buffer[start : start + length])
                    frames.append((_framing._load_body(body), 0))
                    pos = start + length
        except FrameError as exc:  # BinaryFrameError subclasses FrameError
            error = exc
        if pos == len(buffer):
            buffer.clear()
            pos = 0
        elif pos > _RECV_CHUNK:
            del buffer[:pos]
            pos = 0
        conn.pos = pos
        return frames, error

    # -- writing ---------------------------------------------------------------

    def _reply(self, conn: _Connection, corr_id: int, payload: Dict) -> Optional[int]:
        """Queue one response on ``conn`` (thread-safe; shard threads and
        the loop both land here) and nudge the loop to flush it.  Returns
        the bytes queued (``None`` when nothing was sent) so gossip
        replies can be budget-accounted."""
        if conn.dead:
            return None
        try:
            data = conn.encode(payload, corr_id)
        except FrameError:
            return None  # response too large to frame; nothing useful to send
        with conn.out_lock:
            conn.out += data
        self.registry.counter_inc("net.responses")
        if threading.current_thread() is self._loop_thread:
            self._flush(conn)
        else:
            with self._write_lock:
                # One wake byte is enough to pop the loop out of select();
                # while the pending set is non-empty a wake is already in
                # flight, so burst replies cost one syscall, not one each.
                need_wake = not self._write_pending
                self._write_pending.add(conn)
            if need_wake:
                self._wake()
        return len(data)

    def _fail_conn(self, conn: _Connection, payload: Dict) -> None:
        """Answer in-band, then close once the reply has been flushed."""
        conn.closing = True
        self._reply(conn, 0, payload)

    def _flush(self, conn: _Connection) -> None:
        """Write as much queued output as the socket accepts (loop thread
        only); keeps WRITE interest registered while bytes remain."""
        if conn.dead:
            return
        error = False
        with conn.out_lock:
            while conn.out:
                try:
                    sent = conn.sock.send(conn.out)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    error = True
                    break
                self.registry.counter_inc("net.bytes_out", sent)
                del conn.out[:sent]
            remaining = len(conn.out)
        if error or (remaining == 0 and conn.closing):
            self._close_conn(conn)
            return
        try:
            self._selector.modify(
                conn.sock, _READ | _WRITE if remaining else _READ, data=conn
            )
        except (KeyError, ValueError, OSError):
            pass

    def _close_conn(self, conn: _Connection) -> None:
        if conn.dead:
            return
        conn.dead = True
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._conn_lock:
            self._connections.discard(conn)
            self.registry.gauge_set(
                "net.connections_active", float(len(self._connections))
            )

    # -- gossip peer links (loop thread only) ----------------------------------

    def _gossip_tick(self) -> None:
        """Per-iteration gossip housekeeping: (re)connect due peers, fail
        stalled handshakes and silent links, then let the agent run its
        round timer."""
        now = time.monotonic()
        agent = self._gossip
        for peer in agent.peers:
            link = self._peer_links[peer.index]
            if link is None or link.dead:
                if peer.due(now):
                    self._peer_connect(peer.index)
            elif link.state != "ready" and now > link.deadline:
                self._peer_fail(link, "connect/handshake timed out")
            elif link.state == "ready" and agent.peer_stale(peer.index, now):
                self._peer_fail(link, "heartbeat timeout")
        agent.tick(now)

    def _peer_connect(self, index: int) -> None:
        peer = self._gossip.peers[index]
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        link = _PeerLink(index, sock, time.monotonic() + _PEER_CONNECT_TIMEOUT_S)
        try:
            err = sock.connect_ex((peer.host, peer.port))
        except OSError:
            err = -1
        if err not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            try:
                sock.close()
            except OSError:
                pass
            self._gossip.peer_failed(index)
            return
        self._peer_links[index] = link
        self._selector.register(sock, _READ | _WRITE, data=link)

    def _peer_writable(self, link: _PeerLink) -> None:
        if link.state == "connecting":
            err = link.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if err:
                self._peer_fail(link, f"connect failed (errno {err})")
                return
            if self._secret is not None:
                link.state = "hello"
                self._link_queue(link, {"op": "hello"})
            else:
                self._link_ready(link)
        self._link_flush(link)

    def _peer_readable(self, link: _PeerLink) -> None:
        try:
            chunk = link.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError as exc:
            self._peer_fail(link, f"read failed ({exc})")
            return
        if not chunk:
            self._peer_fail(link, "peer closed the connection")
            return
        self.registry.counter_inc("net.bytes_in", len(chunk))
        link.buffer += chunk
        frames, error = self._extract_frames(link)
        for payload, _corr_id in frames:
            self._gossip.note_peer_frame(link.index)
            self._link_frame(link, payload)
            if link.dead:
                return
        if error is not None:
            self._peer_fail(link, f"bad frame from peer ({error})")

    def _link_frame(self, link: _PeerLink, payload: Dict) -> None:
        """Walk the handshake, then hand gossip traffic to the agent."""
        status = payload.get("status")
        if link.state == "hello":
            if status == "challenge" and isinstance(payload.get("nonce"), str):
                mac = hmac.new(
                    self._secret,
                    bytes.fromhex(payload["nonce"]),
                    hashlib.sha256,
                ).hexdigest()
                link.state = "auth"
                self._link_queue(link, {"op": "auth", "mac": mac})
            elif status == "ok":
                self._link_ready(link)  # peer runs with no secret
            else:
                self._peer_fail(link, f"handshake refused ({status!r})")
        elif link.state == "auth":
            if status == "ok":
                self._link_ready(link)
            else:
                self._peer_fail(link, f"authentication failed ({status!r})")
        elif status == "error":
            # The peer answered a gossip frame with a protocol error —
            # e.g. gossip disabled over there.  Back off rather than spin.
            self._peer_fail(
                link, f"peer rejected gossip ({payload.get('reason') or payload.get('detail')})"
            )
        else:
            self._gossip.handle_remote(
                payload, partial(self._link_queue, link)
            )

    def _link_ready(self, link: _PeerLink) -> None:
        link.state = "ready"
        self._gossip.peer_connected(link.index)

    def _gossip_send(self, index: int, payload: Dict) -> Optional[int]:
        """The agent's ``sender``: frame onto the ready link, or ``None``."""
        link = self._peer_links[index] if index < len(self._peer_links) else None
        if link is None or link.dead or link.state != "ready":
            return None
        return self._link_queue(link, payload)

    def _link_queue(self, link: _PeerLink, payload: Dict) -> Optional[int]:
        """Encode and queue one frame on a peer link (loop thread only).
        Returns the bytes queued, or ``None`` when framing failed."""
        if link.dead:
            return None
        try:
            data = encode_binary_frame(payload, 0)
        except FrameError as exc:
            self.registry.counter_inc("net.bad_frames")
            self.registry.event(
                "net_gossip_encode_error",
                peer=self._gossip.peers[link.index].address,
                detail=str(exc),
            )
            return None
        link.out += data
        self._link_flush(link)
        return len(data)

    def _link_flush(self, link: _PeerLink) -> None:
        if link.dead:
            return
        while link.out:
            try:
                sent = link.sock.send(link.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._peer_fail(link, f"write failed ({exc})")
                return
            self.registry.counter_inc("net.bytes_out", sent)
            del link.out[:sent]
        want = _READ | _WRITE if (link.out or link.state == "connecting") else _READ
        try:
            self._selector.modify(link.sock, want, data=link)
        except (KeyError, ValueError, OSError):
            pass

    def _peer_fail(self, link: _PeerLink, reason: str, *, quiet: bool = False) -> None:
        """Tear down one peer link and let the agent schedule the retry."""
        if link.dead:
            return
        link.dead = True
        try:
            self._selector.unregister(link.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            link.sock.close()
        except OSError:
            pass
        if link.index < len(self._peer_links):
            self._peer_links[link.index] = None
        if self._gossip is not None and not quiet:
            self._gossip.peer_failed(link.index)

    # -- frame handling --------------------------------------------------------

    def _handle_payload(self, conn: _Connection, payload: Dict, corr_id: int) -> None:
        op = payload.get("op")
        if op is not None:
            self._handle_op(conn, payload, corr_id, str(op))
            return
        if self._secret is not None and not conn.authed:
            self.registry.counter_inc("net.rejected.auth_required")
            self._fail_conn(conn, {
                "id": str(payload.get("id", "")),
                "status": "error", "reason": "auth_required",
                "detail": "this server requires the shared-secret handshake "
                          "(send {'op': 'hello'} first)",
            })
            return
        self.registry.counter_inc("net.requests")
        if self._draining:
            self._reply(
                conn, corr_id, self._shutting_down(str(payload.get("id", "")))
            )
            return
        cost = payload.get("problem", {}).get("cost_matrix") \
            if isinstance(payload.get("problem"), dict) else None
        if isinstance(cost, np.ndarray):
            # Binary fast path: the packed body already carries float64
            # arrays, so route on their bytes directly — the worker that
            # owns the shard does the real parse and validation.
            shard = self.router.shard_for_key(structural_key_from_matrix(cost))
            item_payload = payload
            request_id = str(payload.get("id", ""))
        else:
            request, error = safe_parse(payload)
            if error is not None:
                self.registry.counter_inc("net.parse_errors")
                self._reply(conn, corr_id, error)
                return
            shard = self.router.shard_for(request)
            # The worker re-parses the payload, so pin the server-assigned
            # id (auto-assigned when the caller sent none) into what it
            # sees.
            item_payload = {**payload, "id": request.request_id}
            request_id = request.request_id
        self.registry.counter_inc(self._routed_counters[shard])
        item = _WorkItem(
            payload=item_payload,
            request_id=request_id,
            reply=partial(self._reply, conn, corr_id),
        )
        q = self._queues[shard]
        try:
            q.put_nowait(item)
        except queue.Full:
            self.registry.counter_inc("net.rejected.overloaded")
            self._reply(conn, corr_id, {
                "id": request_id,
                "status": "rejected",
                "reason": REJECT_OVERLOADED,
                "detail": f"shard {shard} queue is full "
                          f"({self.queue_depth} requests already waiting)",
            })
            return
        self.registry.gauge_set(self._depth_gauges[shard], float(q.qsize()))

    def _handle_op(
        self, conn: _Connection, payload: Dict, corr_id: int, op: str
    ) -> None:
        self.registry.counter_inc(f"net.ops.{op}")
        if op == "hello":
            self._handle_hello(conn, corr_id)
        elif op == "auth":
            self._handle_auth(conn, payload, corr_id)
        elif self._secret is not None and not conn.authed:
            self.registry.counter_inc("net.rejected.auth_required")
            self._fail_conn(conn, {
                "op": op, "status": "error", "reason": "auth_required",
                "detail": "authenticate before using control verbs",
            })
        elif op == "stats":
            # stats() blocks on worker pipes; never stall the loop for it.
            threading.Thread(
                target=lambda: self._reply(
                    conn, corr_id,
                    {"op": "stats", "status": "ok", "stats": self.stats()},
                ),
                name="repro-net-stats", daemon=True,
            ).start()
        elif op == "ping":
            self._reply(conn, corr_id, {"op": "ping", "status": "ok"})
        elif op in GOSSIP_OPS:
            if self._gossip is None:
                self._reply(conn, corr_id, {
                    "op": op, "status": "error", "reason": "gossip_disabled",
                    "detail": "this server is not in a gossip mesh "
                              "(start it with --peers)",
                })
            elif conn.codec != "binary":
                self._reply(conn, corr_id, {
                    "op": op, "status": "error",
                    "reason": "gossip_requires_binary",
                    "detail": "gossip records are packed float64 arrays; "
                              "connect with the binary codec",
                })
            else:
                self._gossip.handle_remote(
                    payload, partial(self._reply, conn, corr_id)
                )
        else:
            self._reply(conn, corr_id, {
                "op": op, "status": "error",
                "detail": f"unknown control verb {op!r}",
            })

    def _handle_hello(self, conn: _Connection, corr_id: int) -> None:
        reply = {
            "op": "hello",
            "status": "ok",
            "codec": conn.codec,
            "codecs": ["binary", "json"] if self.codec == "auto" else [self.codec],
            "auth": self._secret is not None,
        }
        if self._secret is not None and not conn.authed:
            conn.nonce = _secrets.token_hex(16)
            reply["status"] = "challenge"
            reply["nonce"] = conn.nonce
        self._reply(conn, corr_id, reply)

    def _handle_auth(self, conn: _Connection, payload: Dict, corr_id: int) -> None:
        if self._secret is None or conn.authed:
            self._reply(conn, corr_id, {"op": "auth", "status": "ok"})
            return
        mac = payload.get("mac")
        want = hmac.new(
            self._secret, bytes.fromhex(conn.nonce), hashlib.sha256
        ).hexdigest() if conn.nonce is not None else None
        if want is not None and isinstance(mac, str) and hmac.compare_digest(mac, want):
            conn.authed = True
            conn.nonce = None
            self.registry.counter_inc("net.auth_ok")
            self._reply(conn, corr_id, {"op": "auth", "status": "ok"})
            return
        self.registry.counter_inc("net.rejected.auth_failed")
        self._fail_conn(conn, {
            "op": "auth", "status": "error", "reason": "auth_failed",
            "detail": "bad credentials" if conn.nonce is not None
            else "no challenge outstanding (send {'op': 'hello'} first)",
        })

    # -- routing and dispatch --------------------------------------------------

    def _shard_loop(self, shard: int) -> None:
        q = self._queues[shard]
        worker = self._workers[shard % self.num_workers]
        depth_gauge = f"net.shard.{shard}.queue_depth"
        while True:
            item = q.get()
            if item is _STOP:
                self._reject_remaining(q)
                return
            batch = [item]
            # Opportunistic batching: everything already queued (up to the
            # worker's max_batch) ships as one group so the worker's
            # micro-batcher can fuse compatible requests.  With a batch
            # window, the thread also lingers up to that long for more to
            # arrive, so a burst mid-flight fills the group instead of
            # fragmenting into several small dispatches.
            stop_seen = False
            deadline = (
                time.monotonic() + self.batch_window_s
                if self.batch_window_s > 0.0 else None
            )
            while len(batch) < self.worker_config.max_batch:
                try:
                    extra = q.get_nowait()
                except queue.Empty:
                    # Drain eagerly, linger coarsely: a timed get() would
                    # wake this thread once per arriving request, so an
                    # empty queue instead sleeps in ~1 ms slices — the
                    # event loop decodes a burst wholesale, and the next
                    # drain picks it up in bulk.
                    if deadline is None:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    time.sleep(min(remaining, 0.001))
                    continue
                if extra is _STOP:
                    stop_seen = True
                    break
                batch.append(extra)
            self.registry.gauge_set(depth_gauge, float(q.qsize()))
            if self._draining:
                for it in batch:
                    it.reply(self._shutting_down(it.request_id))
            else:
                self._dispatch(worker, batch)
            if stop_seen:
                self._reject_remaining(q)
                return

    def _dispatch(self, worker: WorkerHandle, batch: List[_WorkItem]) -> None:
        payloads = [item.payload for item in batch]
        if self.lookaside is not None:
            hints = [self.lookaside.donor_for_payload(p) for p in payloads]
            message = ("solve", payloads, hints)
        else:
            message = ("solve", payloads)
        try:
            reply = worker.roundtrip(message)
            kind, results = reply[0], reply[1] if len(reply) > 1 else None
        except WorkerCrashed as exc:
            self.registry.counter_inc("net.worker_restarts")
            self.registry.counter_inc("net.requests_lost", len(batch))
            self.registry.event(
                "net_worker_restart", worker=worker.index, lost=len(batch)
            )
            for item in batch:
                item.reply(
                    {
                        "id": item.request_id,
                        "status": "error",
                        "reason": ERROR_WORKER_RESTARTED,
                        "detail": str(exc),
                    }
                )
            return
        if kind != "results" or not isinstance(results, list) or len(results) != len(batch):
            for item in batch:
                item.reply(
                    {
                        "id": item.request_id,
                        "status": "error",
                        "detail": f"worker protocol violation (reply {kind!r})",
                    }
                )
            return
        if self.lookaside is not None and len(reply) > 2:
            for record in reply[2]:
                self.lookaside.insert(record)
        for item, result in zip(batch, results):
            item.reply(result)

    def _reject_remaining(self, q: "queue.Queue") -> None:
        """Drain a stopping shard queue with structured rejections."""
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            item.reply(self._shutting_down(item.request_id))

    def _shutting_down(self, request_id: str) -> Dict:
        self.registry.counter_inc("net.rejected.shutting_down")
        return {
            "id": request_id,
            "status": "rejected",
            "reason": REJECT_SHUTTING_DOWN,
            "detail": "server is draining; request was not dispatched",
        }

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Merged operational snapshot: every worker's ``service.*``
        metrics folded together, the server's ``net.*`` family, and
        per-shard / per-worker breakdowns."""
        merged = MetricsRegistry()
        workers = []
        for worker in self._workers:
            entry = {
                "index": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
            }
            if not worker.closed:
                try:
                    kind, snapshot = worker.roundtrip(("stats",))
                    if kind == "stats":
                        merged.merge_snapshot(snapshot)
                        entry["cache_size"] = snapshot.get("gauges", {}).get(
                            "service.cache.size", 0.0
                        )
                except WorkerCrashed:
                    self.registry.counter_inc("net.worker_restarts")
                    entry["alive"] = worker.alive
            workers.append(entry)
        for shard, q in enumerate(self._queues):
            self.registry.gauge_set(
                f"net.shard.{shard}.queue_depth", float(q.qsize())
            )
        merged.merge_snapshot(self.registry.snapshot())
        snapshot = merged.snapshot()
        snapshot["workers"] = workers
        snapshot["shards"] = [
            {
                "shard": shard,
                "worker": shard % self.num_workers,
                "queue_depth": q.qsize(),
                "routed": self.router.route_counts[shard],
            }
            for shard, q in enumerate(self._queues)
        ]
        snapshot["routing"] = self.router.policy
        snapshot["lookaside"] = (
            len(self.lookaside) if self.lookaside is not None else None
        )
        snapshot["codec"] = self.codec
        snapshot["auth"] = self._secret is not None
        snapshot["server_id"] = self.server_id
        snapshot["gossip"] = (
            self._gossip.stats() if self._gossip is not None else None
        )
        snapshot["draining"] = self._draining
        return snapshot

    def __repr__(self) -> str:
        state = (
            "draining" if self._draining else ("serving" if self._started else "new")
        )
        return (
            f"NetServer({self.host}:{self.port}, {state}, "
            f"workers={self.num_workers}, shards={self.num_shards}, "
            f"routing={self.router.policy!r}, codec={self.codec!r})"
        )
