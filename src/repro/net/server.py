"""The sharded TCP front end over the allocation service.

:class:`NetServer` is the piece that turns ``repro.service`` from an
in-process library into something real clients connect to:

* a **listener** accepts TCP connections and speaks length-prefixed JSON
  frames (:mod:`repro.net.framing`) carrying the exact
  :mod:`repro.service.codec` wire format — anything ``repro-fap serve``
  accepts on stdin is a valid frame body here;
* a :class:`~repro.net.router.ShardRouter` partitions parseable requests
  across **shards**, each shard a FIFO queue owned by one dispatch
  thread; shards map onto **worker processes**
  (:mod:`repro.net.worker`), each running its own
  :class:`~repro.service.AllocationService` with its own cache — so
  repeats of a problem hit the cache that stored them, and same-shape
  requests micro-batch together;
* **robustness is structural**: a dead worker is respawned and exactly
  the requests in flight with it get in-band ``worker_restarted``
  errors; a draining server (SIGTERM) finishes in-flight work and
  answers queued/new requests with structured ``shutting_down``
  rejections; a malformed frame fails one connection, never the server.

Control verbs ride the same frame stream: ``{"op": "stats"}`` returns
the merged ``service.*`` metrics of every worker plus the server's own
``net.*`` family (connections, bytes, per-shard routing and queue
depth, worker restarts); ``{"op": "ping"}`` is a liveness check.
"""

from __future__ import annotations

import queue
import signal
import socket
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.net.framing import FrameError, FrameReader, send_frame
from repro.net.router import ShardRouter
from repro.net.worker import (
    ERROR_WORKER_RESTARTED,
    WorkerConfig,
    WorkerCrashed,
    WorkerHandle,
)
from repro.service.codec import safe_parse

__all__ = ["NetServer", "REJECT_SHUTTING_DOWN"]

#: Rejection reason for requests that arrive at (or are queued in) a
#: draining server.
REJECT_SHUTTING_DOWN = "shutting_down"

_STOP = object()


@dataclass
class _WorkItem:
    """One routed request waiting in a shard queue."""

    payload: Dict
    request_id: str
    reply: Callable[[Dict], None]


class NetServer:
    """Sharded socket transport over per-worker allocation services.

    Parameters
    ----------
    host, port:
        Listen address; port 0 binds an ephemeral port (read
        :attr:`address` after :meth:`start`).
    workers:
        Worker *processes*, each owning one
        :class:`~repro.service.AllocationService` + cache.
    shards:
        Routing partitions (default: one per worker).  More shards than
        workers is allowed — shard ``s`` is served by worker
        ``s % workers``.
    routing:
        ``"affinity"`` (structural fingerprint; default) or ``"random"``
        (the locality-free baseline the benchmarks compare against).
    max_batch, cache_size, cache_ttl_s, queue_depth, default_timeout_s:
        Per-worker service configuration (see
        :class:`~repro.net.worker.WorkerConfig`).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        server-side ``net.*`` family; one is created if omitted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 1,
        shards: Optional[int] = None,
        routing: str = "affinity",
        max_batch: int = 32,
        cache_size: int = 256,
        cache_ttl_s: Optional[float] = None,
        queue_depth: int = 1024,
        default_timeout_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        context=None,
    ):
        self.host = host
        self.port = int(port)
        self.num_workers = max(1, int(workers))
        self.num_shards = int(shards) if shards is not None else self.num_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self.router = ShardRouter(self.num_shards, policy=routing)
        self.worker_config = WorkerConfig(
            max_batch=max_batch,
            cache_size=cache_size,
            cache_ttl_s=cache_ttl_s,
            queue_depth=queue_depth,
            default_timeout_s=default_timeout_s,
        )
        self._context = context
        self._workers: List[WorkerHandle] = []
        self._queues: List["queue.Queue"] = []
        self._shard_threads: List[threading.Thread] = []
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._draining = False
        self._started = False
        self._stopped = threading.Event()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "NetServer":
        """Spawn workers and shard threads, bind, and begin accepting."""
        with self._state_lock:
            if self._started:
                return self
            self._started = True
        self._workers = [
            WorkerHandle(i, self.worker_config, context=self._context)
            for i in range(self.num_workers)
        ]
        for shard in range(self.num_shards):
            self._queues.append(queue.Queue())
            thread = threading.Thread(
                target=self._shard_loop, args=(shard,),
                name=f"repro-net-shard-{shard}", daemon=True,
            )
            self._shard_threads.append(thread)
            thread.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (resolves ephemeral port 0)."""
        return (self.host, self.port)

    def worker_pids(self) -> List[int]:
        """Live worker pids (test hook for crash-recovery scenarios)."""
        return [w.pid for w in self._workers]

    def shutdown(self, *, timeout_s: float = 10.0) -> None:
        """Graceful drain: in-flight requests finish, queued and new ones
        are rejected with structured ``shutting_down`` responses, workers
        exit, and the listener closes.  Idempotent and thread-safe."""
        with self._state_lock:
            if not self._started or self._stopped.is_set():
                self._stopped.set()
                return
            already = self._draining
            self._draining = True
        if already:
            self._stopped.wait(timeout_s)
            return
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept().
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        for q in self._queues:
            q.put(_STOP)
        for thread in self._shard_threads:
            thread.join(timeout=timeout_s)
        for worker in self._workers:
            worker.shutdown()
        with self._conn_lock:
            conns = list(self._connections)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout_s)
        self._stopped.set()

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (e.g. from a signal)."""
        self._stopped.wait()

    def install_signal_handlers(self, signals=(signal.SIGTERM, signal.SIGINT)) -> None:
        """SIGTERM/SIGINT → graceful drain (call from the main thread)."""

        def _handler(signum, frame):
            threading.Thread(
                target=self.shutdown, name="repro-net-drain", daemon=True
            ).start()

        for sig in signals:
            signal.signal(sig, _handler)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- accepting and reading -------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed (shutdown)
            if self._draining:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self.registry.counter_inc("net.connections")
            with self._conn_lock:
                self._connections.add(sock)
                self.registry.gauge_set(
                    "net.connections_active", float(len(self._connections))
                )
            threading.Thread(
                target=self._serve_connection, args=(sock,),
                name=f"repro-net-conn-{peer[1]}", daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        reader = FrameReader(sock)
        write_lock = threading.Lock()
        consumed = 0

        def reply(payload: Dict) -> None:
            try:
                with write_lock:
                    sent = send_frame(sock, payload)
            except OSError:
                return  # client went away; its loss
            self.registry.counter_inc("net.responses")
            self.registry.counter_inc("net.bytes_out", sent)

        try:
            while True:
                try:
                    payload = reader.read()
                except FrameError as exc:
                    reply({"status": "error", "reason": "bad_frame", "detail": str(exc)})
                    return
                except OSError:
                    return
                if payload is None:
                    return
                self.registry.counter_inc("net.bytes_in", reader.bytes_read - consumed)
                consumed = reader.bytes_read
                self._handle_payload(payload, reply)
        finally:
            with self._conn_lock:
                self._connections.discard(sock)
                self.registry.gauge_set(
                    "net.connections_active", float(len(self._connections))
                )
            try:
                sock.close()
            except OSError:
                pass

    # -- routing and dispatch --------------------------------------------------

    def _handle_payload(self, payload: Dict, reply: Callable[[Dict], None]) -> None:
        op = payload.get("op")
        if op is not None:
            self.registry.counter_inc(f"net.ops.{op}")
            if op == "stats":
                reply({"op": "stats", "status": "ok", "stats": self.stats()})
            elif op == "ping":
                reply({"op": "ping", "status": "ok"})
            else:
                reply(
                    {
                        "op": str(op),
                        "status": "error",
                        "detail": f"unknown control verb {op!r}",
                    }
                )
            return
        self.registry.counter_inc("net.requests")
        if self._draining:
            reply(self._shutting_down(str(payload.get("id", ""))))
            return
        request, error = safe_parse(payload)
        if error is not None:
            self.registry.counter_inc("net.parse_errors")
            reply(error)
            return
        shard = self.router.shard_for(request)
        self.registry.counter_inc(f"net.shard.{shard}.routed")
        # The worker re-parses the payload, so pin the server-assigned id
        # (auto-assigned when the caller sent none) into what it sees.
        item = _WorkItem(
            payload={**payload, "id": request.request_id},
            request_id=request.request_id,
            reply=reply,
        )
        q = self._queues[shard]
        q.put(item)
        self.registry.gauge_set(f"net.shard.{shard}.queue_depth", float(q.qsize()))

    def _shard_loop(self, shard: int) -> None:
        q = self._queues[shard]
        worker = self._workers[shard % self.num_workers]
        depth_gauge = f"net.shard.{shard}.queue_depth"
        while True:
            item = q.get()
            if item is _STOP:
                self._reject_remaining(q)
                return
            batch = [item]
            # Opportunistic batching: everything already queued (up to the
            # worker's max_batch) ships as one group so the worker's
            # micro-batcher can fuse compatible requests.
            stop_seen = False
            while len(batch) < self.worker_config.max_batch:
                try:
                    extra = q.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop_seen = True
                    break
                batch.append(extra)
            self.registry.gauge_set(depth_gauge, float(q.qsize()))
            if self._draining:
                for it in batch:
                    it.reply(self._shutting_down(it.request_id))
            else:
                self._dispatch(worker, batch)
            if stop_seen:
                self._reject_remaining(q)
                return

    def _dispatch(self, worker: WorkerHandle, batch: List[_WorkItem]) -> None:
        payloads = [item.payload for item in batch]
        try:
            kind, results = worker.roundtrip(("solve", payloads))
        except WorkerCrashed as exc:
            self.registry.counter_inc("net.worker_restarts")
            self.registry.counter_inc("net.requests_lost", len(batch))
            self.registry.event(
                "net_worker_restart", worker=worker.index, lost=len(batch)
            )
            for item in batch:
                item.reply(
                    {
                        "id": item.request_id,
                        "status": "error",
                        "reason": ERROR_WORKER_RESTARTED,
                        "detail": str(exc),
                    }
                )
            return
        if kind != "results" or len(results) != len(batch):
            for item in batch:
                item.reply(
                    {
                        "id": item.request_id,
                        "status": "error",
                        "detail": f"worker protocol violation (reply {kind!r})",
                    }
                )
            return
        for item, result in zip(batch, results):
            item.reply(result)

    def _reject_remaining(self, q: "queue.Queue") -> None:
        """Drain a stopping shard queue with structured rejections."""
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            item.reply(self._shutting_down(item.request_id))

    def _shutting_down(self, request_id: str) -> Dict:
        self.registry.counter_inc("net.rejected.shutting_down")
        return {
            "id": request_id,
            "status": "rejected",
            "reason": REJECT_SHUTTING_DOWN,
            "detail": "server is draining; request was not dispatched",
        }

    # -- observability ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Merged operational snapshot: every worker's ``service.*``
        metrics folded together, the server's ``net.*`` family, and
        per-shard / per-worker breakdowns."""
        merged = MetricsRegistry()
        workers = []
        for worker in self._workers:
            entry = {
                "index": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
            }
            if not worker.closed:
                try:
                    kind, snapshot = worker.roundtrip(("stats",))
                    if kind == "stats":
                        merged.merge_snapshot(snapshot)
                        entry["cache_size"] = snapshot.get("gauges", {}).get(
                            "service.cache.size", 0.0
                        )
                except WorkerCrashed:
                    self.registry.counter_inc("net.worker_restarts")
                    entry["alive"] = worker.alive
            workers.append(entry)
        for shard, q in enumerate(self._queues):
            self.registry.gauge_set(
                f"net.shard.{shard}.queue_depth", float(q.qsize())
            )
        merged.merge_snapshot(self.registry.snapshot())
        snapshot = merged.snapshot()
        snapshot["workers"] = workers
        snapshot["shards"] = [
            {
                "shard": shard,
                "worker": shard % self.num_workers,
                "queue_depth": q.qsize(),
                "routed": self.router.route_counts[shard],
            }
            for shard, q in enumerate(self._queues)
        ]
        snapshot["routing"] = self.router.policy
        snapshot["draining"] = self._draining
        return snapshot

    def __repr__(self) -> str:
        state = (
            "draining" if self._draining else ("serving" if self._started else "new")
        )
        return (
            f"NetServer({self.host}:{self.port}, {state}, "
            f"workers={self.num_workers}, shards={self.num_shards}, "
            f"routing={self.router.policy!r})"
        )
