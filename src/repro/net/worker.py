"""Worker processes: one :class:`AllocationService` per shard owner.

Each worker is a child process running :func:`worker_main`: it builds its
own :class:`~repro.service.AllocationService` (with its own
:class:`~repro.service.SolutionCache` and metrics registry) and answers
messages on a duplex pipe from the server:

* ``("solve", [payload, ...])`` → ``("results", [response_dict, ...])``
  — parse each wire-format payload, solve the parseable ones **as one
  group** (so the worker's micro-batcher sees them together), and return
  responses in input order with per-payload parse errors slotted in
  place.  With the lookaside tier enabled the solve message grows a
  third element — per-payload donor hints from the server's
  :class:`~repro.net.lookaside.LookasideTier` (``None`` where the tier
  had nothing) — and the reply a third of its own: the donor records of
  this group's converged solves, which the server folds back into the
  tier.  Hints are consulted only for requests the worker's *local*
  cache missed, so the tier never shadows a local hit or donor;
* ``("stats",)`` → ``("stats", snapshot)`` — the worker registry's
  plain-dict snapshot, which the server merges across workers;
* ``("shutdown",)`` — exit cleanly.

The parent-side :class:`WorkerHandle` owns the process and the pipe, and
is where crash handling lives: a worker found dead *before* a dispatch
is respawned transparently (nothing was lost); a worker that dies
*during* one raises :class:`WorkerCrashed` after respawning, and the
server turns that into in-band ``worker_restarted`` errors for exactly
the requests that were on the dead worker.  A request is a pure solve,
so nothing needs recovering beyond re-sending it.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = ["WorkerConfig", "WorkerCrashed", "WorkerHandle", "worker_main"]

#: Error code carried by responses for requests lost with a dead worker.
ERROR_WORKER_RESTARTED = "worker_restarted"


class WorkerCrashed(ReproError):
    """A worker process died with requests in flight (it has already been
    respawned by the time this is raised)."""


@dataclass(frozen=True)
class WorkerConfig:
    """Per-worker service configuration (picklable; crosses the fork)."""

    max_batch: int = 32
    cache_size: int = 256
    cache_ttl_s: Optional[float] = None
    queue_depth: int = 1024
    default_timeout_s: Optional[float] = None
    #: Cache eviction policy: ``"lru"`` or ``"cost"`` (value-weighted).
    cache_eviction: str = "lru"
    #: Optional byte budget on the worker's cache.
    cache_max_bytes: Optional[int] = None
    #: Drift threshold for estimate-epoch invalidation; ``None`` disables
    #: drift tracking entirely.
    drift_threshold: Optional[float] = None
    #: EMA window of the drift tracker's per-structure estimate.
    drift_window: int = 16
    #: Accept cross-shard donor hints (and publish converged solves back).
    lookaside: bool = False


class _PipeLookaside:
    """The worker half of the lookaside protocol: a service ``lookaside``
    hook fed by per-dispatch hints, collecting donor records to ship back.

    ``get`` serves the hint the server attached for this request (only
    consulted on a local cache miss — the service's hook contract), and
    ``publish`` queues the solve's donor record for the reply."""

    def __init__(self):
        self._hints: Dict[str, object] = {}
        self._outbox: List[Dict] = []

    def load_hints(self, hints: Dict[str, object]) -> None:
        self._hints = hints

    def get(self, request):
        return self._hints.get(request.request_id)

    def publish(self, request, result) -> None:
        from repro.net.lookaside import donor_record

        record = donor_record(request, result)
        if record is not None:
            self._outbox.append(record)

    def drain(self) -> List[Dict]:
        out, self._outbox = self._outbox, []
        self._hints = {}
        return out


def _build_service(config: WorkerConfig):
    from repro.obs import MetricsRegistry
    from repro.service import (
        AdmissionController,
        AllocationService,
        DriftTracker,
        SolutionCache,
    )

    registry = MetricsRegistry()
    drift = (
        DriftTracker(
            threshold=config.drift_threshold,
            window=config.drift_window,
            registry=registry,
        )
        if config.drift_threshold is not None
        else None
    )
    service = AllocationService(
        max_batch=config.max_batch,
        cache=SolutionCache(
            config.cache_size,
            ttl_s=config.cache_ttl_s,
            eviction=config.cache_eviction,
            max_bytes=config.cache_max_bytes,
            drift=drift,
            registry=registry,
        ),
        lookaside=_PipeLookaside() if config.lookaside else None,
        admission=AdmissionController(
            max_queue_depth=config.queue_depth,
            default_timeout_s=config.default_timeout_s,
        ),
        registry=registry,
    )
    return service, registry


def solve_payloads(
    service, payloads: List[Dict], hints: Optional[List[object]] = None
) -> List[Dict]:
    """Solve one group of wire-format payloads; responses in input order.

    Parse failures become in-band error dicts; an unexpected dispatch
    exception becomes an error dict on every still-unresolved slot —
    the worker never dies because one payload was poisonous.

    ``hints`` (aligned with ``payloads``) carries the server's lookaside
    donors; they are loaded into the service's pipe-lookaside hook so a
    local cache miss can warm-start from another shard's solution.
    """
    from repro.service.codec import safe_parse

    slots: List[Optional[Dict]] = [None] * len(payloads)
    tickets: List[Tuple[int, object]] = []
    hint_map: Dict[str, object] = {}
    for i, payload in enumerate(payloads):
        request, error = safe_parse(payload)
        if error is not None:
            slots[i] = error
            continue
        if hints is not None and i < len(hints) and hints[i] is not None:
            hint_map[request.request_id] = hints[i]
        tickets.append((i, service.submit(request)))
    if isinstance(getattr(service, "lookaside", None), _PipeLookaside):
        service.lookaside.load_hints(hint_map)
    try:
        if any(not ticket.done() for _, ticket in tickets):
            service.pump()
        for i, ticket in tickets:
            slots[i] = ticket.response.as_dict()
    except Exception as exc:  # noqa: BLE001 - the worker must survive anything
        detail = f"{type(exc).__name__}: {exc}"
        for i, ticket in tickets:
            if slots[i] is None:
                slots[i] = {
                    "id": ticket.request.request_id,
                    "status": "error",
                    "detail": f"dispatch failed: {detail}",
                }
    return slots  # type: ignore[return-value]


def worker_main(conn, config: WorkerConfig) -> None:
    """Child-process entry point: serve pipe messages until shutdown/EOF."""
    # The server's terminal delivers SIGINT to the whole foreground
    # process group; drain is the parent's job, so workers ignore it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service, registry = _build_service(config)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "shutdown":
            break
        try:
            if kind == "stats":
                reply = ("stats", registry.snapshot())
            elif kind == "solve":
                hints = message[2] if len(message) > 2 else None
                results = solve_payloads(service, message[1], hints)
                if isinstance(service.lookaside, _PipeLookaside):
                    reply = ("results", results, service.lookaside.drain())
                else:
                    reply = ("results", results)
            else:
                reply = ("error", f"unknown worker message {kind!r}")
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class WorkerHandle:
    """Parent-side owner of one worker process and its pipe.

    All pipe traffic goes through :meth:`roundtrip`, which serializes
    access (several shards may share a worker), respawns a dead worker,
    and raises :class:`WorkerCrashed` when requests were lost with it.
    """

    def __init__(self, index: int, config: WorkerConfig, *, context=None):
        self.index = index
        self.config = config
        self._ctx = context if context is not None else multiprocessing.get_context()
        self._lock = threading.Lock()
        self.restarts = 0
        self._process = None
        self._conn = None
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.config),
            name=f"repro-net-worker-{self.index}",
            daemon=True,
        )
        process.start()
        # Close the parent's copy of the child end so a dead worker reads
        # as EOF instead of a hang.
        child_conn.close()
        self._process = process
        self._conn = parent_conn

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; a closed handle never respawns."""
        return self._conn is None and self._process is None

    def respawn(self) -> None:
        """Replace a dead (or wedged) worker with a fresh process."""
        with self._lock:
            self._respawn_locked()

    def _respawn_locked(self) -> None:
        if self._conn is not None:
            self._conn.close()
        if self._process is not None:
            if self._process.is_alive():
                self._process.terminate()
            self._process.join(timeout=5.0)
        self.restarts += 1
        self._spawn()

    def roundtrip(self, message: Tuple) -> Tuple:
        """Send one message, return its reply.

        A worker found dead beforehand is respawned silently (nothing was
        in flight); one that dies mid-roundtrip is respawned and
        :class:`WorkerCrashed` is raised so the caller can answer the
        lost requests in-band.
        """
        with self._lock:
            if self.closed:
                raise WorkerCrashed(f"worker {self.index} has been shut down")
            if not self.alive:
                self._respawn_locked()
            try:
                self._conn.send(message)
                return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._respawn_locked()
                raise WorkerCrashed(
                    f"worker {self.index} (pid {self.pid}) died mid-dispatch: "
                    f"{type(exc).__name__}"
                ) from None

    def shutdown(self, *, timeout_s: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate/kill if it won't."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
                self._conn.close()
                self._conn = None
            if self._process is not None:
                self._process.join(timeout=timeout_s)
                if self._process.is_alive():
                    self._process.terminate()
                    self._process.join(timeout=timeout_s)
                self._process = None

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (
            f"WorkerHandle(index={self.index}, pid={self.pid}, {state}, "
            f"restarts={self.restarts})"
        )
