"""Network substrate: topologies, shortest paths, routing, virtual rings.

The paper's model assumes a logically fully connected network in which
``c_ij`` is the cost of sending an access from ``i`` to ``j`` and carrying
the response back, with routing along the least-cost path (§6).  This
package provides:

* :class:`~repro.network.topology.Topology` — weighted undirected graphs
  with the standard generators (ring, line, star, tree, grid, complete,
  random) in :mod:`repro.network.builders`;
* Dijkstra and Floyd–Warshall all-pairs least-cost computation in
  :mod:`repro.network.shortest_paths`;
* next-hop routing tables in :mod:`repro.network.routing` (used by the
  discrete-event runtime to charge hop-by-hop communication);
* the §7.2 *virtual ring* embedding in :mod:`repro.network.virtual_ring`.
"""

from repro.network.builders import (
    complete_graph,
    grid_graph,
    line_graph,
    random_geometric_graph,
    random_graph,
    ring_graph,
    star_graph,
    tree_graph,
)
from repro.network.routing import RoutingTable
from repro.network.shortest_paths import all_pairs_shortest_paths, dijkstra, floyd_warshall
from repro.network.topology import Topology
from repro.network.virtual_ring import VirtualRing
from repro.network.visualize import adjacency_art, topology_summary

__all__ = [
    "RoutingTable",
    "Topology",
    "VirtualRing",
    "adjacency_art",
    "all_pairs_shortest_paths",
    "complete_graph",
    "dijkstra",
    "floyd_warshall",
    "grid_graph",
    "line_graph",
    "random_geometric_graph",
    "random_graph",
    "ring_graph",
    "star_graph",
    "topology_summary",
    "tree_graph",
]
