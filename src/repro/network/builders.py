"""Standard topology generators.

The paper's experiments use a four-node ring with unit link costs (figs 3-5),
fully connected graphs with unit costs for 4 <= N <= 20 (fig 6), and a
four-node ring with link costs (4,1,1,1) vs (1,1,1,1) for the multi-copy
study (figs 8-9).  The generators here cover those plus the usual suspects
for wider experimentation.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import TopologyError
from repro.network.topology import Topology
from repro.utils.seeding import SeedLike, rng_from_seed


def ring_graph(n: int, link_costs: float | Sequence[float] = 1.0) -> Topology:
    """A cycle of ``n`` nodes.

    ``link_costs`` may be a scalar (uniform) or a length-``n`` sequence
    where entry ``i`` is the cost of the link from node ``i`` to node
    ``(i+1) % n`` — the convention used for the paper's (4,1,1,1) ring.
    """
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    if isinstance(link_costs, (int, float)):
        costs = [float(link_costs)] * n
    else:
        costs = [float(c) for c in link_costs]
        if len(costs) != n:
            raise TopologyError(
                f"need {n} link costs for an {n}-node ring, got {len(costs)}"
            )
    topo = Topology(n, name=f"ring-{n}")
    for i in range(n):
        topo.add_edge(i, (i + 1) % n, costs[i])
    return topo


def line_graph(n: int, link_cost: float = 1.0) -> Topology:
    """A path ``0 - 1 - ... - n-1``."""
    if n < 2:
        raise TopologyError(f"a line needs at least 2 nodes, got {n}")
    topo = Topology(n, name=f"line-{n}")
    for i in range(n - 1):
        topo.add_edge(i, i + 1, link_cost)
    return topo


def star_graph(n: int, link_cost: float = 1.0, center: int = 0) -> Topology:
    """A hub-and-spoke graph with ``center`` linked to every other node."""
    if n < 2:
        raise TopologyError(f"a star needs at least 2 nodes, got {n}")
    topo = Topology(n, name=f"star-{n}")
    for i in range(n):
        if i != center:
            topo.add_edge(center, i, link_cost)
    return topo


def complete_graph(n: int, link_cost: float = 1.0) -> Topology:
    """The fully connected graph used in the paper's figure-6 scaling run."""
    if n < 2:
        raise TopologyError(f"a complete graph needs at least 2 nodes, got {n}")
    topo = Topology(n, name=f"complete-{n}")
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_edge(u, v, link_cost)
    return topo


def grid_graph(rows: int, cols: int, link_cost: float = 1.0) -> Topology:
    """A ``rows x cols`` mesh; node ``(r, c)`` has id ``r * cols + c``."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"grid needs at least 2 nodes, got {rows}x{cols}")
    topo = Topology(rows * cols, name=f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_edge(node, node + 1, link_cost)
            if r + 1 < rows:
                topo.add_edge(node, node + cols, link_cost)
    return topo


def tree_graph(n: int, branching: int = 2, link_cost: float = 1.0) -> Topology:
    """A complete ``branching``-ary tree over ``n`` nodes (breadth-first ids)."""
    if n < 2:
        raise TopologyError(f"a tree needs at least 2 nodes, got {n}")
    if branching < 1:
        raise TopologyError(f"branching factor must be >= 1, got {branching}")
    topo = Topology(n, name=f"tree-{n}-b{branching}")
    for child in range(1, n):
        parent = (child - 1) // branching
        topo.add_edge(parent, child, link_cost)
    return topo


def random_graph(
    n: int,
    edge_probability: float = 0.3,
    *,
    cost_range: tuple[float, float] = (1.0, 1.0),
    seed: SeedLike = None,
    max_tries: int = 100,
) -> Topology:
    """A connected Erdős–Rényi graph with uniformly random link costs.

    A random spanning tree is laid down first so the sampled graph is always
    connected; additional edges are then added independently with
    ``edge_probability``.
    """
    if n < 2:
        raise TopologyError(f"random graph needs at least 2 nodes, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError(f"edge_probability must be in [0, 1], got {edge_probability}")
    lo, hi = cost_range
    if not (0 < lo <= hi):
        raise TopologyError(f"cost_range must satisfy 0 < lo <= hi, got {cost_range}")
    rng = rng_from_seed(seed)
    for _ in range(max_tries):
        topo = Topology(n, name=f"random-{n}-p{edge_probability:g}")
        # Random spanning tree: attach each node to a random earlier node.
        order = rng.permutation(n)
        for idx in range(1, n):
            u = int(order[idx])
            v = int(order[rng.integers(0, idx)])
            topo.add_edge(u, v, float(rng.uniform(lo, hi)))
        for u in range(n):
            for v in range(u + 1, n):
                if not topo.has_edge(u, v) and rng.random() < edge_probability:
                    topo.add_edge(u, v, float(rng.uniform(lo, hi)))
        if topo.is_connected():
            return topo
    raise TopologyError("failed to sample a connected random graph")  # pragma: no cover


def random_geometric_graph(
    n: int,
    radius: float = 0.5,
    *,
    seed: SeedLike = None,
    max_tries: int = 100,
) -> Topology:
    """Nodes placed uniformly in the unit square, linked when within
    ``radius``; link cost is the Euclidean distance.

    Retries with a growing radius until connected, mimicking the Waxman-style
    geographic networks used in distributed-systems evaluations.
    """
    if n < 2:
        raise TopologyError(f"geometric graph needs at least 2 nodes, got {n}")
    if radius <= 0:
        raise TopologyError(f"radius must be positive, got {radius}")
    rng = rng_from_seed(seed)
    points = rng.random((n, 2))
    r = radius
    for _ in range(max_tries):
        topo = Topology(n, name=f"geometric-{n}-r{r:.3g}")
        for u in range(n):
            for v in range(u + 1, n):
                dist = math.dist(points[u], points[v])
                if dist <= r:
                    topo.add_edge(u, v, max(dist, 1e-9))
        if topo.is_connected():
            return topo
        r *= 1.3
    raise TopologyError("failed to build a connected geometric graph")  # pragma: no cover
