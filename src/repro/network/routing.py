"""Next-hop routing tables over a topology.

The analytical model only needs the end-to-end cost matrix, but the
discrete-event runtime forwards messages hop by hop (store-and-forward, as
the paper's §4 describes), which needs a next-hop table.  Ties are broken
toward the smaller node id so routing is deterministic and reproducible.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import TopologyError
from repro.network.shortest_paths import dijkstra
from repro.network.topology import Topology


class RoutingTable:
    """Least-cost next-hop routing for every ordered node pair.

    Parameters
    ----------
    topology:
        The network to route over.  Must be connected.
    """

    def __init__(self, topology: Topology):
        self._topology = topology
        n = topology.n
        self._next_hop: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        self._distance = np.zeros((n, n))
        for source in range(n):
            dist, pred = dijkstra(topology, source)
            if not np.all(np.isfinite(dist)):
                raise TopologyError(
                    f"cannot build routing table: node {source} cannot reach every node"
                )
            self._distance[source] = dist
            for target in range(n):
                if target == source:
                    continue
                # Walk predecessors back from target to find the first hop.
                hop = target
                while pred[hop] is not None and pred[hop] != source:
                    hop = pred[hop]
                self._next_hop[source][target] = hop

    @property
    def topology(self) -> Topology:
        return self._topology

    def next_hop(self, source: int, target: int) -> int:
        """First node on the least-cost path ``source -> target``."""
        if source == target:
            raise TopologyError("no next hop from a node to itself")
        hop = self._next_hop[source][target]
        assert hop is not None
        return hop

    def cost(self, source: int, target: int) -> float:
        """End-to-end least path cost (0 for source == target)."""
        return float(self._distance[source, target])

    def cost_matrix(self) -> np.ndarray:
        """Copy of the all-pairs least-cost matrix."""
        return self._distance.copy()

    def route(self, source: int, target: int) -> List[int]:
        """Full hop sequence from ``source`` to ``target`` inclusive."""
        path = [source]
        while path[-1] != target:
            path.append(self.next_hop(path[-1], target))
            if len(path) > self._topology.n:
                raise TopologyError("routing loop detected")  # pragma: no cover
        return path

    def hop_count(self, source: int, target: int) -> int:
        """Number of links traversed on the least-cost route."""
        return len(self.route(source, target)) - 1
