"""Least-cost path computation.

The model's pairwise access cost ``c_ij`` is the least-cost route between
``i`` and ``j`` ("the routing of the access requests between any two given
nodes was taken to be along the shortest (least expensive) path", §6).
Two independent implementations are provided — binary-heap Dijkstra and
Floyd–Warshall — and cross-checked in the test suite.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import Topology


def dijkstra(topology: Topology, source: int) -> Tuple[np.ndarray, List[Optional[int]]]:
    """Single-source least-cost distances and predecessor links.

    Returns ``(dist, pred)`` where ``dist[v]`` is the least path cost from
    ``source`` to ``v`` (``inf`` if unreachable) and ``pred[v]`` is the node
    preceding ``v`` on one such path (``None`` for the source and
    unreachable nodes).
    """
    n = topology.n
    dist = np.full(n, np.inf)
    pred: List[Optional[int]] = [None] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = [False] * n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v in topology.neighbors(u):
            nd = d + topology.edge_cost(u, v)
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def floyd_warshall(topology: Topology) -> np.ndarray:
    """All-pairs least-cost matrix via dynamic programming.

    O(n^3); used as an independent oracle against Dijkstra in tests and for
    small experiment networks.
    """
    dist = topology.link_cost_matrix()
    n = topology.n
    for k in range(n):
        # Vectorized relaxation over the k-th intermediate node.
        via_k = dist[:, k][:, None] + dist[k, :][None, :]
        np.minimum(dist, via_k, out=dist)
    return dist


def all_pairs_shortest_paths(topology: Topology, *, require_connected: bool = True) -> np.ndarray:
    """All-pairs least-cost matrix (Dijkstra from every source).

    This is the ``c_ij`` matrix of the paper's model.  Raises
    :class:`~repro.exceptions.TopologyError` when the graph is disconnected
    and ``require_connected`` is set, because an unreachable node would give
    an infinite access cost.
    """
    n = topology.n
    out = np.empty((n, n))
    for s in range(n):
        dist, _ = dijkstra(topology, s)
        out[s] = dist
    if require_connected and not np.all(np.isfinite(out)):
        raise TopologyError(
            f"topology {topology.name!r} is disconnected; access costs would be infinite"
        )
    return out


def shortest_path(topology: Topology, source: int, target: int) -> List[int]:
    """The node sequence of one least-cost path from ``source`` to ``target``."""
    dist, pred = dijkstra(topology, source)
    if not np.isfinite(dist[target]):
        raise TopologyError(f"no path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        prev = pred[path[-1]]
        assert prev is not None
        path.append(prev)
    path.reverse()
    return path


def path_cost(topology: Topology, path: List[int]) -> float:
    """Total link cost along an explicit node sequence."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        cost = topology.edge_cost(u, v)
        if not np.isfinite(cost):
            raise TopologyError(f"path uses missing edge {u}--{v}")
        total += cost
    return total


def eccentricity(topology: Topology, node: int) -> float:
    """Largest least-cost distance from ``node`` to any other node."""
    dist, _ = dijkstra(topology, node)
    return float(np.max(dist[np.isfinite(dist)]))


def diameter(topology: Topology) -> float:
    """Largest least-cost distance between any node pair."""
    matrix = all_pairs_shortest_paths(topology)
    return float(matrix.max())
