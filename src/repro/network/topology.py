"""Weighted undirected network topologies.

A :class:`Topology` stores node count and a symmetric link-cost matrix with
``inf`` marking absent links.  It is deliberately minimal — the file
allocation model only needs pairwise least-cost access costs — but exposes
enough structure (edges, neighbors, connectivity) for the routing layer and
the discrete-event simulator to work hop by hop.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import TopologyError

Edge = Tuple[int, int, float]


class Topology:
    """An undirected, link-weighted network of ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes, labeled ``0 .. n-1``.
    edges:
        Iterable of ``(u, v, cost)`` triples.  Costs must be positive;
        parallel edges keep the cheaper cost.
    name:
        Optional human-readable name (used in experiment reports).
    """

    def __init__(self, n: int, edges: Iterable[Edge] = (), *, name: str = ""):
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self._n = int(n)
        self.name = name or f"topology-{n}"
        self._cost = np.full((n, n), np.inf)
        np.fill_diagonal(self._cost, 0.0)
        for u, v, cost in edges:
            self.add_edge(u, v, cost)

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int, cost: float) -> None:
        """Add (or cheapen) the undirected edge ``u -- v``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop on node {u} is not allowed")
        cost = float(cost)
        if not np.isfinite(cost) or cost <= 0:
            raise TopologyError(f"edge cost must be positive and finite, got {cost!r}")
        if cost < self._cost[u, v]:
            self._cost[u, v] = cost
            self._cost[v, u] = cost

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``u -- v`` (error if absent)."""
        if not self.has_edge(u, v):
            raise TopologyError(f"no edge between {u} and {v}")
        self._cost[u, v] = np.inf
        self._cost[v, u] = np.inf

    # -- queries ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def nodes(self) -> range:
        """Iterate node ids ``0 .. n-1``."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return u != v and np.isfinite(self._cost[u, v])

    def edge_cost(self, u: int, v: int) -> float:
        """Cost of the direct link ``u -- v`` (``inf`` if absent)."""
        self._check_node(u)
        self._check_node(v)
        return float(self._cost[u, v])

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge once as ``(u, v, cost)`` with u < v."""
        for u in range(self._n):
            for v in range(u + 1, self._n):
                if np.isfinite(self._cost[u, v]):
                    yield (u, v, float(self._cost[u, v]))

    def neighbors(self, u: int) -> List[int]:
        """Nodes directly linked to ``u``."""
        self._check_node(u)
        row = self._cost[u]
        return [v for v in range(self._n) if v != u and np.isfinite(row[v])]

    def degree(self, u: int) -> int:
        return len(self.neighbors(u))

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    def link_cost_matrix(self) -> np.ndarray:
        """Copy of the raw link-cost matrix (``inf`` = no link)."""
        return self._cost.copy()

    def is_connected(self) -> bool:
        """True if every node can reach every other node."""
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self._n

    def without_node(self, dead: int) -> "Topology":
        """A copy of this topology with ``dead``'s links removed.

        The node id remains (so allocation vectors keep their indexing) but
        it becomes unreachable — used by the failure-injection experiments.
        """
        self._check_node(dead)
        survivor = Topology(self._n, name=f"{self.name}-minus-{dead}")
        for u, v, c in self.edges():
            if dead not in (u, v):
                survivor.add_edge(u, v, c)
        return survivor

    def scaled(self, factor: float) -> "Topology":
        """A copy with every link cost multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise TopologyError(f"scale factor must be positive, got {factor}")
        clone = Topology(self._n, name=f"{self.name}-x{factor:g}")
        for u, v, c in self.edges():
            clone.add_edge(u, v, c * factor)
        return clone

    # -- misc ---------------------------------------------------------

    def _check_node(self, u: int) -> None:
        if not (isinstance(u, (int, np.integer)) and 0 <= u < self._n):
            raise TopologyError(f"node id {u!r} out of range [0, {self._n})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._n == other._n and bool(
            np.array_equal(self._cost, other._cost)
        )

    def __hash__(self):  # pragma: no cover - topologies are mutable
        return NotImplemented

    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, n={self._n}, edges={self.edge_count()})"


def topology_from_cost_matrix(matrix: Sequence[Sequence[float]], *, name: str = "") -> Topology:
    """Build a topology from a full symmetric link-cost matrix.

    Entries that are ``inf`` (or ``<= 0`` off-diagonal) are treated as
    missing links.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise TopologyError(f"cost matrix must be square, got shape {arr.shape}")
    if not np.allclose(arr, arr.T, equal_nan=True):
        raise TopologyError("cost matrix must be symmetric for an undirected topology")
    n = arr.shape[0]
    topo = Topology(n, name=name)
    for u in range(n):
        for v in range(u + 1, n):
            if np.isfinite(arr[u, v]) and arr[u, v] > 0:
                topo.add_edge(u, v, arr[u, v])
    return topo
