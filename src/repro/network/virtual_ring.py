"""Virtual rings (§7.2).

A *virtual ring* is constructed from an arbitrary network by imposing an
ordering on the nodes and establishing a communication protocol that embeds
this ordering: for the purpose of file access, each node talks (directly or
through the underlying network) to its designated successor, and accesses
travel unidirectionally around the ring.  A physical ring is trivially a
virtual ring.

This module provides the geometry only — orderings, successor link costs,
and unidirectional distances.  The multi-copy cost model that lives on top
of it is in :mod:`repro.multicopy`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import TopologyError
from repro.network.shortest_paths import all_pairs_shortest_paths
from repro.network.topology import Topology


class VirtualRing:
    """A unidirectional ring over ``n`` nodes with per-hop link costs.

    Parameters
    ----------
    link_costs:
        ``link_costs[p]`` is the cost of the hop from the node in ring
        position ``p`` to the node in position ``(p+1) % n``.
    order:
        Node ids in ring order; defaults to ``0, 1, ..., n-1``.  Position
        ``p`` around the ring is occupied by node ``order[p]``.
    """

    def __init__(self, link_costs: Sequence[float], order: Optional[Sequence[int]] = None):
        costs = np.asarray(link_costs, dtype=float)
        if costs.ndim != 1 or costs.size < 3:
            raise TopologyError(f"a virtual ring needs >= 3 hops, got {costs.size}")
        if not np.all(np.isfinite(costs)) or np.any(costs < 0):
            raise TopologyError("ring hop costs must be finite and non-negative")
        self._costs = costs
        n = costs.size
        if order is None:
            order = list(range(n))
        order = [int(v) for v in order]
        if sorted(order) != list(range(n)):
            raise TopologyError(f"order must be a permutation of 0..{n-1}, got {order}")
        self._order = order
        self._position = {node: pos for pos, node in enumerate(order)}
        # Forward (clockwise) distance between ring *positions*: walking from
        # position a to position b costs cum[b] - cum[a], wrapping with one
        # full circumference when b precedes a.
        cum = np.concatenate([[0.0], np.cumsum(costs)])  # cum[p] = cost 0 -> p
        total = float(cum[-1])
        dist = np.empty((n, n))
        for a in range(n):
            for b in range(n):
                if a == b:
                    dist[a, b] = 0.0
                elif b > a:
                    dist[a, b] = cum[b] - cum[a]
                else:
                    dist[a, b] = total - (cum[a] - cum[b])
        self._pos_dist = dist

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_topology(
        cls, topology: Topology, order: Optional[Sequence[int]] = None
    ) -> "VirtualRing":
        """Embed a virtual ring into an arbitrary connected network.

        The hop cost between consecutive nodes in ``order`` is the
        least-cost path between them in the underlying network, which is
        what the store-and-forward protocol of §4 would actually pay.
        """
        n = topology.n
        if order is None:
            order = list(range(n))
        pairwise = all_pairs_shortest_paths(topology)
        costs = [pairwise[order[p], order[(p + 1) % n]] for p in range(n)]
        return cls(costs, order)

    # -- queries ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes on the ring."""
        return self._costs.size

    @property
    def order(self) -> List[int]:
        """Node ids in ring order."""
        return list(self._order)

    @property
    def hop_costs(self) -> np.ndarray:
        """Per-hop costs in ring-position order (copy)."""
        return self._costs.copy()

    def position(self, node: int) -> int:
        """Ring position of ``node``."""
        try:
            return self._position[node]
        except KeyError:
            raise TopologyError(f"node {node} is not on the ring") from None

    def successor(self, node: int) -> int:
        """The next node clockwise from ``node``."""
        return self._order[(self.position(node) + 1) % self.n]

    def predecessor(self, node: int) -> int:
        """The previous node clockwise (i.e. the node whose successor is this)."""
        return self._order[(self.position(node) - 1) % self.n]

    def forward_distance(self, source: int, target: int) -> float:
        """Total hop cost travelling clockwise from ``source`` to ``target``."""
        return float(self._pos_dist[self.position(source), self.position(target)])

    def circumference(self) -> float:
        """Total cost of one full lap."""
        return float(self._costs.sum())

    def forward_sequence(self, start: int) -> List[int]:
        """All ``n`` node ids in clockwise order beginning at ``start``."""
        p = self.position(start)
        return [self._order[(p + k) % self.n] for k in range(self.n)]

    def distance_matrix(self) -> np.ndarray:
        """``d[i, j]`` = clockwise cost from node ``i`` to node ``j``."""
        n = self.n
        out = np.empty((n, n))
        for i in range(n):
            for j in range(n):
                out[i, j] = self.forward_distance(i, j) if i != j else 0.0
        return out

    def __repr__(self) -> str:
        return f"VirtualRing(n={self.n}, order={self._order}, costs={self._costs.tolist()})"
