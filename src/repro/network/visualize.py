"""Plain-text rendering of topologies.

For experiment logs and the CLI: an adjacency sketch plus a per-node
summary that makes a small network's structure readable at a glance
without any plotting dependency.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.network.shortest_paths import dijkstra
from repro.network.topology import Topology
from repro.utils.tables import format_table


def adjacency_art(topology: Topology) -> str:
    """An adjacency-matrix sketch: link costs, '.' for missing links.

    >>> from repro.network.builders import line_graph
    >>> print(adjacency_art(line_graph(3)))
           0   1   2
    0      .   1   .
    1      1   .   1
    2      .   1   .
    """
    n = topology.n
    cells: List[List[str]] = []
    for u in range(n):
        row = []
        for v in range(n):
            if u == v or not topology.has_edge(u, v):
                row.append(".")
            else:
                cost = topology.edge_cost(u, v)
                row.append(f"{cost:g}")
        cells.append(row)
    width = max(4, max(len(c) for row in cells for c in row) + 1)
    header = " " * 4 + "".join(str(v).rjust(width) for v in range(n))
    lines = [header]
    for u, row in enumerate(cells):
        lines.append(str(u).ljust(4) + "".join(c.rjust(width) for c in row))
    return "\n".join(lines)


def topology_summary(topology: Topology) -> str:
    """A per-node table: degree, cheapest link, eccentricity."""
    rows = []
    for u in range(topology.n):
        neighbors = topology.neighbors(u)
        cheapest = (
            min(topology.edge_cost(u, v) for v in neighbors) if neighbors else "-"
        )
        dist, _ = dijkstra(topology, u)
        finite = dist[np.isfinite(dist)]
        ecc = f"{finite.max():g}" if finite.size > 1 else "-"
        rows.append([u, len(neighbors), cheapest, ecc])
    header = (
        f"{topology.name}: {topology.n} nodes, {topology.edge_count()} edges, "
        f"{'connected' if topology.is_connected() else 'DISCONNECTED'}"
    )
    return header + "\n" + format_table(
        ["node", "degree", "cheapest link", "eccentricity"], rows
    )
