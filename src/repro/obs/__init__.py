"""repro.obs — run-wide observability for the allocation engines.

Three pieces:

* :class:`MetricsRegistry` — counters, gauges, histograms, wall-clock
  timers; attach one to any engine (``DecentralizedAllocator``,
  ``MultiFileAllocator``, ``MultiCopyAllocator``,
  ``DistributedFapRuntime``) via their ``registry=`` parameter;
* event sinks — :class:`JsonLinesSink` streams structured per-iteration
  events to disk (or any stream), :class:`MemorySink` captures them for
  tests and notebooks;
* :class:`RunReport` — a frozen, JSON-serializable snapshot of a
  finished run with named accessors for the headline quantities.

Instrumentation is strictly observational: with no registry attached the
engines execute identical arithmetic (bit-for-bit allocations) at full
speed; with one attached they additionally tally iterations, gradient
evaluations, active-set shrinks, monotonicity violations, α-decays, and
per-round message/hop/byte traffic.

Quick start::

    from repro import FileAllocationProblem, DecentralizedAllocator
    from repro.obs import MetricsRegistry, JsonLinesSink, RunReport

    registry = MetricsRegistry()
    registry.add_sink(JsonLinesSink("run_events.jsonl"))
    problem = FileAllocationProblem.paper_network()
    result = DecentralizedAllocator(
        problem, alpha=0.3, registry=registry
    ).run([0.8, 0.1, 0.1, 0.0])
    report = RunReport.from_registry(registry)
    assert report.iterations == result.iterations
    print(report.summary())
"""

from repro.obs.events import JsonLinesSink, MemorySink, read_jsonl
from repro.obs.registry import HistogramStat, MetricsRegistry, maybe_timer
from repro.obs.report import RunReport

__all__ = [
    "HistogramStat",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "RunReport",
    "maybe_timer",
    "read_jsonl",
]
