"""Structured event sinks: JSON-lines streaming and in-memory capture.

A *sink* is anything with ``emit(payload: dict)``.  The registry fans
each event out to every attached sink; sinks own serialization and
durability.  :class:`JsonLinesSink` is the production path — one JSON
object per line, flushed on demand, so a crashed run still leaves a
readable prefix on disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union


def _json_default(value):
    """Serialize numpy scalars/arrays without importing numpy here."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class JsonLinesSink:
    """Stream events to a file as JSON lines (one object per line).

    Parameters
    ----------
    target:
        A path (opened lazily, truncated) or an already-open text stream
        (borrowed: never closed by the sink — pass ``sys.stdout`` freely).
    flush_every:
        Flush the underlying stream every this-many events (1 = always).
    """

    def __init__(self, target: Union[str, Path, IO[str]], *, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self._flush_every = int(flush_every)
        self._since_flush = 0
        self.emitted = 0
        if isinstance(target, (str, Path)):
            self._path: Optional[Path] = Path(target)
            self._stream: Optional[IO[str]] = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False

    def emit(self, payload: Dict) -> None:
        if self._stream is None:
            assert self._path is not None
            self._stream = self._path.open("w")
        self._stream.write(json.dumps(payload, default=_json_default) + "\n")
        self.emitted += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._stream.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        where = str(self._path) if self._path is not None else "<stream>"
        return f"JsonLinesSink({where!r}, emitted={self.emitted})"


class MemorySink:
    """Capture events in a list — the test double and REPL inspector."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, payload: Dict) -> None:
        self.events.append(payload)

    def of_type(self, name: str) -> List[Dict]:
        """Events whose ``event`` field equals ``name``."""
        return [e for e in self.events if e.get("event") == name]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"MemorySink(events={len(self.events)})"


def read_jsonl(path: Union[str, Path]) -> List[Dict]:
    """Load a JSON-lines event file back into a list of dicts."""
    out: List[Dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
