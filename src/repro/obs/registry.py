"""The metrics registry: counters, gauges, histograms, and timers.

Every long-running engine in the library (the §5.2 allocator, the
multi-file and multi-copy variants, the distributed runtime) accepts an
optional :class:`MetricsRegistry`.  The contract is strict:

* **no registry, no cost** — instrument points are guarded with
  ``if registry is not None`` at the call site, so a run without a
  registry executes the identical arithmetic (bit-for-bit allocations)
  with no measurable slowdown;
* **a registry never changes results** — it only observes; nothing an
  instrument records feeds back into the iteration.

A registry is plain in-memory state.  Attach one or more event sinks
(:mod:`repro.obs.events`) to additionally stream structured per-iteration
events to disk, and summarize a finished run with
:class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class HistogramStat:
    """Streaming summary of an observed value: count / sum / min / max.

    Deliberately reservoir-free — O(1) memory per metric so a registry can
    survive a 100k-iteration run without becoming the memory bug it was
    built to detect.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge_dict(self, other: Dict[str, float]) -> None:
        """Fold another histogram's ``as_dict()`` snapshot into this one.

        Used to aggregate worker-process registries into the parent's —
        count/sum add, min/max combine; the merged summary is exactly what
        observing both sample streams into one histogram would have given.
        """
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        lo, hi = float(other.get("min", math.inf)), float(other.get("max", -math.inf))
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return (
            f"HistogramStat(count={self.count}, mean={self.mean:.6g}, "
            f"min={self.min:.6g}, max={self.max:.6g})"
        )


class MetricsRegistry:
    """Run-wide metric store plus fan-out point for structured events.

    Metric names are dotted strings (``"allocator.iterations"``,
    ``"messages.hops"``); the registry imposes no schema beyond that.

    Parameters
    ----------
    clock:
        Monotonic time source for :meth:`timer`; injectable for tests.
    """

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStat] = {}
        self._sinks: List = []
        self._event_seq = 0

    # -- metrics -------------------------------------------------------------

    def counter_inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to a monotone counter."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Set a point-in-time gauge."""
        self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a high-watermark gauge to ``value`` if larger."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramStat()
        hist.observe(value)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; the duration lands in histogram ``name`` (seconds)."""
        start = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - start)

    # -- events --------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach an event sink (anything with ``emit(dict)``)."""
        self._sinks.append(sink)

    @property
    def has_sinks(self) -> bool:
        """True when events will actually go somewhere.

        Hot loops should check this before assembling a per-iteration
        event payload.
        """
        return bool(self._sinks)

    def event(self, name: str, /, **fields) -> None:
        """Fan a structured event out to every attached sink.

        Each event also bumps the ``events.<name>`` counter, so a registry
        without sinks still tallies how often each event fired.
        """
        self.counter_inc(f"events.{name}")
        if not self._sinks:
            return
        self._event_seq += 1
        payload = {"event": name, "seq": self._event_seq, **fields}
        for sink in self._sinks:
            sink.emit(payload)

    # -- aggregation ---------------------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The aggregation point for multi-process sweeps: each worker tallies
        into its own registry, ships the plain-dict snapshot home, and the
        parent merges.  Counters add, histograms combine their streaming
        summaries, and gauges keep the *maximum* observed value — for every
        gauge the engines publish (final cost, convergence flag, peak trace
        bytes, active count) the max across workers is the conservative
        run-wide reading.  Events are not replayed (they already hit the
        worker's sinks, if any).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter_inc(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, float(value))
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramStat()
            hist.merge_dict(payload)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict copy of every metric (JSON-serializable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)}, "
            f"sinks={len(self._sinks)})"
        )


def maybe_timer(registry: Optional[MetricsRegistry], name: str):
    """``registry.timer(name)`` or a no-op context when no registry."""
    if registry is None:
        return _NULL_CONTEXT
    return registry.timer(name)


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()
