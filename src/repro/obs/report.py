"""Run summaries: a frozen snapshot of a registry with named accessors.

A :class:`RunReport` is what you keep after a run: the full metric
snapshot plus convenience properties for the quantities the acceptance
checks care about (iterations, final cost, message tallies).  It is a
plain-data object — JSON round-trippable, diffable across runs, and the
payload ``benchmarks/_util.emit_obs`` persists per bench.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class RunReport:
    """Immutable summary of one observed run."""

    name: str
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry, *, name: str = "run") -> "RunReport":
        snap = registry.snapshot()
        return cls(
            name=name,
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
        )

    # -- named accessors (the ground-truth cross-checks) ----------------------

    @property
    def iterations(self) -> int:
        """Reallocation steps taken (``allocator.iterations`` counter)."""
        return int(self.counters.get("allocator.iterations", 0))

    @property
    def final_cost(self) -> float:
        return self.gauges.get("allocator.final_cost", math.nan)

    @property
    def converged(self) -> Optional[bool]:
        value = self.gauges.get("allocator.converged")
        return None if value is None else bool(value)

    @property
    def gradient_evaluations(self) -> int:
        return int(self.counters.get("allocator.gradient_evals", 0))

    @property
    def monotonicity_violations(self) -> int:
        return int(self.counters.get("allocator.monotonicity_violations", 0))

    @property
    def messages(self) -> int:
        return int(self.counters.get("messages.total", 0))

    @property
    def message_hops(self) -> int:
        return int(self.counters.get("messages.hops", 0))

    @property
    def message_bytes(self) -> int:
        return int(self.counters.get("messages.payload_bytes", 0))

    @property
    def trace_peak_bytes(self) -> int:
        return int(self.gauges.get("allocator.trace_peak_bytes", 0))

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable multi-line digest for terminals and logs."""
        lines = [f"RunReport[{self.name}]"]
        for key in sorted(self.counters):
            lines.append(f"  counter  {key} = {self.counters[key]:g}")
        for key in sorted(self.gauges):
            lines.append(f"  gauge    {key} = {self.gauges[key]:g}")
        for key in sorted(self.histograms):
            h = self.histograms[key]
            lines.append(
                f"  histo    {key}: count={h['count']:g} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RunReport(name={self.name!r}, iterations={self.iterations}, "
            f"final_cost={self.final_cost:.6g}, messages={self.messages})"
        )
