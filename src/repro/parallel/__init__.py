"""repro.parallel — batched and pooled execution of many FAP instances.

Three layers, two axes of parallelism:

* :class:`BatchedAllocator` — SIMD-style: B independent equal-size M/M/1
  problems advance in lockstep as ``(B, N)`` NumPy arrays inside one
  process.  Per-row results are bit-for-bit identical to the serial
  :class:`~repro.core.algorithm.DecentralizedAllocator` (a property test
  enforces it).  This is the fast path for sweeps of *small* problems,
  where the serial engine's per-iteration Python overhead dominates.
* :class:`ContinuousBatcher` — the lockstep kernel without the barrier:
  a fixed-capacity slot array over a pending queue.  Converged rows are
  retired mid-flight and queued problems (each with its own warm start,
  stepsize, tolerance, and budget) are admitted into the freed slots, so
  occupancy stays near capacity on mixed-convergence streams instead of
  decaying to the slowest straggler.  Per-row parity is still bit-for-bit.
  :func:`solve_chains` builds warm-started continuation chains on top —
  the engine behind ``repro-fap sweep --engine batched --warm-start``
  and the service's continuous dispatch mode.
* :class:`SweepExecutor` / :func:`sweep_parallel` — process-pool: one
  worker per grid point (chunked), with deterministic per-task seeding,
  bounded retry on worker failure, and cross-worker
  :class:`~repro.obs.registry.MetricsRegistry` aggregation.  This is the
  path for *heterogeneous* or *large* grid points (different sizes,
  non-M/M/1 delay models, expensive measures) and multi-core machines.

docs/PERFORMANCE.md quantifies when each layer wins; the serial
:func:`~repro.experiments.sweeps.parameter_sweep` now runs on the same
per-task runner, so the three engines return identical measurements.

Quick start::

    from repro.parallel import BatchedAllocator, BatchedProblem

    batch = BatchedProblem.replicate(problem, 256)     # one problem, 256 rows
    result = BatchedAllocator(batch, alpha=0.3).run()  # lockstep solve
    result.iterations                                  # (256,) per-row counts
    result.row(0)                                      # a serial-shaped AllocationResult
"""

from repro.parallel.batched import (
    BatchedAllocator,
    BatchedProblem,
    BatchedResult,
    batched_apply,
    batched_scaled_step,
)
from repro.parallel.continuous import (
    ChainLink,
    ContinuousBatcher,
    RowResult,
    solve_chains,
)
from repro.parallel.executor import (
    SweepExecutionError,
    SweepExecutor,
    SweepTask,
    make_tasks,
    solve_grid_point,
    sweep_parallel,
)

__all__ = [
    "BatchedAllocator",
    "BatchedProblem",
    "BatchedResult",
    "ChainLink",
    "ContinuousBatcher",
    "RowResult",
    "SweepExecutionError",
    "SweepExecutor",
    "SweepTask",
    "batched_apply",
    "batched_scaled_step",
    "make_tasks",
    "solve_chains",
    "solve_grid_point",
    "sweep_parallel",
]
