"""The vectorized batched kernel: B independent FAPs solved in lockstep.

The Kurose–Simha iteration ``dx_i = alpha (dU/dx_i - avg_A)`` couples the
nodes of one problem but never couples two *problems* — a parameter sweep
is B completely independent trajectories.  :class:`BatchedAllocator`
exploits that: it stores the whole batch as ``(B, N)`` arrays and performs
every step of the §5.2 algorithm — gradient, active-set masking, stepsize
bounding, termination — as row-wise array operations.  Converged rows
freeze while the batch runs until every row has converged or the iteration
budget is spent.

**Bit-for-bit parity.**  The kernel is written so each row reproduces the
serial :class:`~repro.core.algorithm.DecentralizedAllocator` exactly —
same iterates, same active sets, same iteration counts — not merely to
tolerance.  Three details make that work:

* every per-row expression keeps the serial code's operation order
  (IEEE-754 arithmetic is commutative but not associative);
* row reductions (``sum``/``mean`` along ``axis=1``) use NumPy's pairwise
  summation over the same element count as the serial 1-D reductions, so
  the summation trees coincide;
* masked means over a *partial* active set are computed per affected row
  on the compacted ``g[mask]`` vector — exactly what the serial policy
  does — because summing a zero-padded row would change the pairwise
  grouping.  Partial masks are rare (they appear only while boundary
  nodes are pinned), so this costs almost nothing.

``tests/test_parallel.py`` asserts the parity property on seeded random
problems, including active-set-shrinking trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.algorithm import AllocationResult
from repro.core.model import FileAllocationProblem
from repro.core.stepsize import DynamicStep
from repro.core.trace import IterationRecord, Trace
from repro.exceptions import ConfigurationError, StabilityError
from repro.obs.registry import MetricsRegistry, maybe_timer
from repro.utils.validation import check_positive

#: The serial ScaledStep's boundary tolerance, mirrored exactly.
_ZERO_TOL = 1e-12


class BatchedProblem:
    """B equal-size M/M/1 FAP instances stacked into ``(B, N)`` arrays.

    Build with :meth:`from_problems` (heterogeneous instances of one size)
    or :meth:`replicate` (one instance repeated B times, e.g. to sweep the
    stepsize).  Only the plain analytic M/M/1 delay model is supported —
    the vectorized kernel evaluates ``T = 1/(mu - a)`` in closed form (see
    :meth:`~repro.core.model.FileAllocationProblem.mm1_service_rates`).

    Every evaluation method takes an ``(R, N)`` allocation block and a
    matching ``rows`` selector (bool mask or index array over the batch),
    so the allocator can evaluate only the still-live rows; row ``r`` of
    the output is bit-identical to ``problems[r]``'s serial evaluation.
    """

    def __init__(self, problems: Sequence[FileAllocationProblem]):
        problems = list(problems)
        if not problems:
            raise ConfigurationError("need at least one problem to batch")
        n = problems[0].n
        for p in problems:
            if p.n != n:
                raise ConfigurationError(
                    f"all problems in a batch must have equal size; "
                    f"got n={n} and n={p.n}"
                )
        self.problems: List[FileAllocationProblem] = problems
        self.batch_size = len(problems)
        self.n = n
        #: ``(B, N)`` traffic-weighted access costs C_i per row.
        self.access_cost = np.stack([p.access_cost for p in problems])
        #: ``(B, N)`` per-node M/M/1 service rates.
        self.mu = np.stack([p.mm1_service_rates() for p in problems])
        #: ``(B, 1)`` delay/communication trade-off k per row.
        self.k = np.array([[p.k] for p in problems], dtype=float)
        #: ``(B, 1)`` total access rate lambda per row.
        self.total_rate = np.array([[p.total_rate] for p in problems], dtype=float)

    @classmethod
    def from_problems(cls, problems: Sequence[FileAllocationProblem]) -> "BatchedProblem":
        """Stack heterogeneous equal-size problems into one batch."""
        return cls(problems)

    @classmethod
    def replicate(cls, problem: FileAllocationProblem, batch_size: int) -> "BatchedProblem":
        """One problem repeated ``batch_size`` times (per-row alpha sweeps)."""
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        return cls([problem] * batch_size)

    def set_row(self, r: int, problem: FileAllocationProblem) -> None:
        """Replace slot ``r``'s problem in place.

        The continuous batcher retires converged rows and admits new
        problems into the freed slots mid-flight; this writes one row of
        every stacked array without touching the others (whose in-flight
        iterates must stay bit-identical).
        """
        if problem.n != self.n:
            raise ConfigurationError(
                f"slot problems must have n={self.n}, got n={problem.n}"
            )
        mu = problem.mm1_service_rates()
        self.problems[r] = problem
        self.access_cost[r] = problem.access_cost
        self.mu[r] = mu
        self.k[r, 0] = problem.k
        self.total_rate[r, 0] = problem.total_rate

    # -- batched evaluation ----------------------------------------------------

    def _gaps(self, x: np.ndarray, rows) -> np.ndarray:
        """``mu - lambda x`` for the selected rows, with stability checks."""
        arrivals = self.total_rate[rows] * x
        if not np.all(np.isfinite(arrivals)):
            raise StabilityError("arrival rates must be finite")
        gap = self.mu[rows] - arrivals
        if np.any(gap <= 0):
            bad = np.argwhere(gap <= 0)[0]
            raise StabilityError(
                f"M/M/1 unstable in batch (selected row {bad[0]}, node {bad[1]}): "
                "arrival rate >= service rate"
            )
        return gap

    def cost(self, x: np.ndarray, rows=slice(None)) -> np.ndarray:
        """``(R,)`` expected access costs — eq. 1 per selected row."""
        t = 1.0 / self._gaps(x, rows)
        return np.sum((self.access_cost[rows] + self.k[rows] * t) * x, axis=1)

    def utility_gradient(self, x: np.ndarray, rows=slice(None)) -> np.ndarray:
        """``(R, N)`` marginal utilities ``dU/dx`` per selected row."""
        gap = self._gaps(x, rows)
        t = 1.0 / gap
        dt = 1.0 / (gap * gap)
        return -(
            self.access_cost[rows]
            + self.k[rows] * (t + x * self.total_rate[rows] * dt)
        )

    def cost_hessian_diag(self, x: np.ndarray, rows=slice(None)) -> np.ndarray:
        """``(R, N)`` diagonal Hessians ``d2C/dx_i^2`` per selected row."""
        # Product form, not ``gap**p``: numpy's pow and the scalar MM1Delay
        # derivatives can disagree by one ulp, which would break the
        # bit-for-bit serial parity contract (see MM1Delay.d_sojourn).
        gap = self._gaps(x, rows)
        dt = 1.0 / (gap * gap)
        d2t = 2.0 / (gap * gap * gap)
        lam = self.total_rate[rows]
        return self.k[rows] * (2.0 * lam * dt + x * lam * lam * d2t)

    def __repr__(self) -> str:
        return f"BatchedProblem(batch_size={self.batch_size}, n={self.n})"


def _masked_means(g: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row mean of ``g`` over ``mask``, matching ``g[mask].mean()`` bits.

    Full rows take the vectorized row mean (same pairwise summation tree
    as the serial 1-D mean); partial rows compact first, exactly like the
    serial policy.  Empty rows get 0 (their step is zero anyway).
    """
    means = np.zeros(g.shape[0])
    full = mask.all(axis=1)
    if full.any():
        means[full] = g[full].mean(axis=1)
    for r in np.flatnonzero(~full):
        sel = g[r, mask[r]]
        if sel.size:
            means[r] = sel.mean()
    return means


def batched_scaled_step(
    x: np.ndarray, utility_gradient: np.ndarray, alpha: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """The :class:`~repro.core.active_set.ScaledStep` policy over a batch.

    Returns ``(dx, active_mask)`` of shape ``(R, N)``; row ``r`` is
    bit-for-bit what ``ScaledStep().apply(x[r], g[r], alpha[r])`` returns.
    """
    r_count, n = x.shape
    g = utility_gradient
    a = np.asarray(alpha, dtype=float)[:, None]
    mask = np.ones((r_count, n), dtype=bool)
    # Pin boundary nodes that want to shrink further (the serial pin loop).
    dx = np.where(mask, a * (g - _masked_means(g, mask)[:, None]), 0.0)
    for _ in range(n):
        pinned = mask & (x <= _ZERO_TOL) & (dx < 0)
        if not pinned.any():
            break
        mask &= ~pinned
        dx = np.where(mask, a * (g - _masked_means(g, mask)[:, None]), 0.0)
    dx[~mask.any(axis=1)] = 0.0
    # Uniformly shrink violating rows so the worst donor lands exactly at 0.
    violating = (x + dx < 0).any(axis=1)
    if violating.any():
        shrinking = dx < 0
        with np.errstate(divide="ignore", invalid="ignore"):
            factors = np.where(shrinking, x / np.maximum(-dx, 1e-300), np.inf)
        scale = np.minimum(1.0, factors.min(axis=1))
        scale[~violating] = 1.0
        dx = dx * scale[:, None]
    # Guard round-off: absorb any -1e-18 residue into the largest gainer.
    overshoot = np.minimum(x + dx, 0.0)
    for r in np.flatnonzero((overshoot < 0).any(axis=1)):
        dx[r] = dx[r] - overshoot[r]
        dx[r, int(np.argmax(dx[r]))] += overshoot[r].sum()
    return dx, mask


def batched_apply(
    x: np.ndarray,
    dx: np.ndarray,
    *,
    validate: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """Row-wise mirror of the serial ``DecentralizedAllocator._apply``:
    Theorem-1 feasibility asserts plus pro-rata clamp redistribution of
    sub-1e-9 round-off residue (rare; handled per affected row with the
    serial scalar arithmetic).  Shared by the lockstep and continuous
    drivers so both apply exactly the serial update."""
    new_x = x + dx
    if validate:
        drift = np.abs(new_x.sum(axis=1) - x.sum(axis=1))
        if np.any(drift > 1e-9):
            r = int(np.argmax(drift))
            raise AssertionError(
                f"feasibility broken in batch row {r}: sum moved from "
                f"{x[r].sum()!r} to {new_x[r].sum()!r}"
            )
        if np.any(new_x < -1e-9):
            r = int(np.argwhere(new_x < -1e-9)[0, 0])
            raise AssertionError(
                f"negative allocation in batch row {r}: min={new_x[r].min()!r}"
            )
        for r in np.flatnonzero((new_x < 0.0).any(axis=1)):
            row = new_x[r]
            negative = row < 0.0
            target_sum = float(row.sum())
            clamped = float(-row[negative].sum())
            row[negative] = 0.0
            positive = row > 0.0
            total = float(row[positive].sum())
            if total > 0.0:
                row[positive] -= clamped * (row[positive] / total)
                row[int(np.argmax(row))] -= row.sum() - target_sum
            if registry is not None:
                registry.counter_inc("batched.clamp_events")
                registry.counter_inc("batched.clamped_mass", clamped)
    return new_x


def _masked_spread(g: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-row ``max - min`` of ``g`` over ``mask`` (0 for empty rows)."""
    hi = np.where(mask, g, -np.inf).max(axis=1)
    lo = np.where(mask, g, np.inf).min(axis=1)
    out = hi - lo
    out[~mask.any(axis=1)] = 0.0
    return out


@dataclass
class BatchedResult:
    """Outcome of a :class:`BatchedAllocator` run: per-row final state plus
    (when ``keep_history=True``) the full per-iteration history needed to
    reconstruct serial-equivalent traces."""

    allocations: np.ndarray  #: ``(B, N)`` final allocations.
    costs: np.ndarray  #: ``(B,)`` final costs.
    iterations: np.ndarray  #: ``(B,)`` steps applied per row.
    converged: np.ndarray  #: ``(B,)`` bool.
    #: Per-iteration history (present only with ``keep_history=True``).
    #: ``history_allocations[t][r]`` is row ``r``'s allocation after ``t``
    #: steps; once a row freezes, later entries repeat its final state.
    history_allocations: Optional[List[np.ndarray]] = None
    history_masks: Optional[List[np.ndarray]] = None
    history_costs: Optional[List[np.ndarray]] = None
    history_spreads: Optional[List[np.ndarray]] = None
    history_alphas: Optional[List[np.ndarray]] = None

    @property
    def batch_size(self) -> int:
        return self.allocations.shape[0]

    def row(self, r: int) -> AllocationResult:
        """Row ``r`` as a serial-shaped :class:`AllocationResult`.

        With history retained the trace contains one record per iteration
        the row was live — exactly the serial allocator's trace; without
        it the trace holds only the final record.
        """
        trace = Trace()
        its = int(self.iterations[r])
        if self.history_allocations is not None:
            for t in range(its + 1):
                trace.append(
                    IterationRecord(
                        iteration=t,
                        allocation=self.history_allocations[t][r].copy(),
                        cost=float(self.history_costs[t][r]),
                        utility=-float(self.history_costs[t][r]),
                        gradient_spread=float(self.history_spreads[t][r]),
                        alpha=float(self.history_alphas[t][r]),
                        active_count=int(self.history_masks[t][r].sum()),
                    )
                )
        else:
            trace.append(
                IterationRecord(
                    iteration=its,
                    allocation=self.allocations[r].copy(),
                    cost=float(self.costs[r]),
                    utility=-float(self.costs[r]),
                    gradient_spread=float("nan"),
                    alpha=float("nan"),
                    active_count=self.allocations.shape[1],
                )
            )
        return AllocationResult(
            allocation=self.allocations[r].copy(),
            cost=float(self.costs[r]),
            utility=-float(self.costs[r]),
            iterations=its,
            converged=bool(self.converged[r]),
            trace=trace,
        )

    def results(self) -> List[AllocationResult]:
        """Every row as an :class:`AllocationResult`."""
        return [self.row(r) for r in range(self.batch_size)]

    def __repr__(self) -> str:
        done = int(self.converged.sum())
        return (
            f"BatchedResult({done}/{self.batch_size} converged, "
            f"max_iterations={int(self.iterations.max())})"
        )


class BatchedAllocator:
    """§5.2 in lockstep over a batch of independent problem instances.

    Parameters
    ----------
    problem:
        A :class:`BatchedProblem`, or a sequence of equal-size
        :class:`~repro.core.model.FileAllocationProblem` (stacked for you).
    alpha:
        Fixed stepsize — a scalar (shared) or one value per row — or a
        :class:`~repro.core.stepsize.DynamicStep` instance for the
        appendix's per-iteration bound, evaluated batched.
    epsilon:
        Convergence tolerance of the per-row gradient-spread rule (the
        only termination criterion the batched kernel supports; it is the
        serial allocator's default).
    max_iterations:
        Budget shared by the batch; rows that converge earlier freeze.
    validate:
        Assert per-row feasibility after every step, mirroring the serial
        allocator's Theorem-1 checks (including the pro-rata clamp
        redistribution of round-off residue).
    keep_history:
        Retain per-iteration allocations/masks/costs so
        :meth:`BatchedResult.row` can rebuild full serial-equivalent
        traces.  O(B * N * iterations) memory — leave off for large sweeps.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; tallies
        batched iterations, live-row counts, clamp events, and the run
        timer.  Strictly observational, as everywhere else in the library.
    """

    def __init__(
        self,
        problem: Union[BatchedProblem, Sequence[FileAllocationProblem]],
        *,
        alpha: Union[float, Sequence[float], DynamicStep] = 0.1,
        epsilon: float = 1e-3,
        max_iterations: int = 100_000,
        validate: bool = True,
        keep_history: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        if not isinstance(problem, BatchedProblem):
            problem = BatchedProblem(problem)
        self.problem = problem
        b = problem.batch_size
        self._dynamic: Optional[DynamicStep] = None
        if isinstance(alpha, DynamicStep):
            self._dynamic = alpha
            self._fixed_alpha = np.full(b, np.nan)
        else:
            self._fixed_alpha = np.broadcast_to(
                np.asarray(alpha, dtype=float), (b,)
            ).copy()
            if np.any(self._fixed_alpha <= 0) or not np.all(
                np.isfinite(self._fixed_alpha)
            ):
                raise ConfigurationError("alpha must be positive and finite")
        self.epsilon = check_positive(epsilon, "epsilon")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.max_iterations = int(max_iterations)
        self.validate = validate
        self.keep_history = keep_history
        self.registry = registry

    # -- pieces ---------------------------------------------------------------

    def _alphas(self, x: np.ndarray, g: np.ndarray, rows) -> np.ndarray:
        """Per-row stepsizes for the selected rows — fixed values, or the
        batched :class:`DynamicStep` second-order bound."""
        if self._dynamic is None:
            return self._fixed_alpha[rows].copy()
        dyn = self._dynamic
        dev = g - g.mean(axis=1)[:, None]
        s1 = np.sum(dev**2, axis=1)
        h = -self.problem.cost_hessian_diag(x, rows)
        s2 = np.sum(h * dev**2, axis=1)
        out = np.full(x.shape[0], dyn.fallback)
        ok = (s2 < 0) & (s1 != 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            out[ok] = dyn.safety * (-s1[ok] / s2[ok])
        return out

    def _apply(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        return batched_apply(x, dx, validate=self.validate, registry=self.registry)

    # -- full run ---------------------------------------------------------------

    def run(self, initial_allocations: Optional[np.ndarray] = None) -> BatchedResult:
        """Iterate the whole batch until every row converges or the budget
        is exhausted.

        ``initial_allocations`` is ``(B, N)`` (or ``(N,)``, shared by all
        rows); default uniform.  Each starting row is validated through
        its underlying problem.
        """
        prob = self.problem
        b, n = prob.batch_size, prob.n
        if initial_allocations is None:
            x = np.full((b, n), 1.0 / n)
        else:
            x0 = np.asarray(initial_allocations, dtype=float)
            if x0.ndim == 1:
                x0 = np.tile(x0, (b, 1))
            if x0.shape != (b, n):
                raise ConfigurationError(
                    f"initial allocations must have shape ({b}, {n}), got {x0.shape}"
                )
            x = np.stack(
                [prob.problems[r].check_feasible(x0[r]) for r in range(b)]
            )

        reg = self.registry
        iterations = np.zeros(b, dtype=int)
        history: Optional[dict] = None

        with maybe_timer(reg, "batched.run_seconds"):
            g = prob.utility_gradient(x)
            alpha = self._alphas(x, g, slice(None))
            dx, mask = batched_scaled_step(x, g, alpha)
            cost = prob.cost(x)
            spreads = _masked_spread(g, mask)
            if self.keep_history:
                history = {
                    "allocations": [x.copy()],
                    "masks": [mask.copy()],
                    "costs": [cost.copy()],
                    "spreads": [spreads.copy()],
                    "alphas": [np.full(b, np.nan)],
                }
            live = ~(spreads < self.epsilon)
            it = 0
            while live.any() and it < self.max_iterations:
                it += 1
                applied_alpha = alpha.copy()
                x[live] = self._apply(x[live], dx[live])
                iterations[live] = it
                g[live] = prob.utility_gradient(x[live], live)
                alpha[live] = self._alphas(x[live], g[live], live)
                dx[live], mask[live] = batched_scaled_step(
                    x[live], g[live], alpha[live]
                )
                cost[live] = prob.cost(x[live], live)
                spreads[live] = _masked_spread(g[live], mask[live])
                if reg is not None:
                    reg.counter_inc("batched.iterations")
                    reg.counter_inc("batched.row_iterations", int(live.sum()))
                if history is not None:
                    history["allocations"].append(x.copy())
                    history["masks"].append(mask.copy())
                    history["costs"].append(cost.copy())
                    history["spreads"].append(spreads.copy())
                    history["alphas"].append(applied_alpha)
                live = live & ~(spreads < self.epsilon)

        converged = ~live
        if reg is not None:
            reg.gauge_set("batched.rows", float(b))
            reg.gauge_set("batched.rows_converged", float(converged.sum()))
            reg.gauge_set("batched.max_iterations_used", float(iterations.max()))
            reg.event(
                "batched_run_complete",
                rows=b,
                converged=int(converged.sum()),
                iterations=int(iterations.max()),
            )
        return BatchedResult(
            allocations=x,
            costs=cost,
            iterations=iterations,
            converged=converged,
            history_allocations=history["allocations"] if history else None,
            history_masks=history["masks"] if history else None,
            history_costs=history["costs"] if history else None,
            history_spreads=history["spreads"] if history else None,
            history_alphas=history["alphas"] if history else None,
        )

    def __repr__(self) -> str:
        step = repr(self._dynamic) if self._dynamic is not None else "fixed"
        return (
            f"BatchedAllocator(batch_size={self.problem.batch_size}, "
            f"n={self.problem.n}, alpha={step}, epsilon={self.epsilon:g})"
        )
