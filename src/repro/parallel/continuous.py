"""Continuous batching: retire converged rows, refill the batch mid-flight.

The lockstep :class:`~repro.parallel.batched.BatchedAllocator` runs a
*fixed* batch until its slowest row converges.  Converged rows freeze —
they cost no arithmetic — but their slots stay occupied, so a batch of
mixed-convergence problems spends its tail iterations nearly empty: one
straggler row advancing while 31 finished slots ride along.  Group-and-
flush dispatch inherits that shape — the next group cannot start until
the last straggler of the current one finishes.

:class:`ContinuousBatcher` removes the barrier.  It owns a ``(C, N)``
slot array (C = capacity) plus a FIFO queue of pending problems; every
:meth:`step` advances all occupied slots by exactly one Kurose–Simha
iteration, **retires** rows that converged (or exhausted their budget),
and **admits** queued problems into the freed slots without disturbing
the rows still in flight.  Occupancy stays near C for as long as the
queue has work, so the per-step Python/NumPy dispatch overhead — the
cost the batched kernel exists to amortize — is spread over a full batch
at every iteration, not just the first few.

Rows are mutually independent in every per-iteration expression (the
iteration couples the nodes of one problem, never two problems), so a
row's trajectory is **bit-for-bit identical** to solving it alone — no
matter when it was admitted, which rows it shared slots with, or how
often its neighbors were swapped out.  ``tests/test_parallel.py``
asserts this per-row parity against the serial reference engine,
including warm starts, active-set shrinkage, and budget-capped rows.

Because each row carries its *own* stepsize, tolerance, budget, and
starting iterate, the continuous driver also widens what "batchable"
means: any two equal-size pure-M/M/1 problems can share slots.  The
allocation service exploits both properties — see
:class:`repro.service.AllocationService` (``batch_mode="continuous"``).

:func:`solve_chains` layers warm-started *continuation* on top: each
chain is a sequence of problems where every link starts from its
predecessor's final allocation.  Chains advance in parallel, one per
slot, staggered — this is what makes ``repro-fap sweep --engine batched
--warm-start`` possible (lockstep dispatch could not express it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.parallel.batched import (
    BatchedProblem,
    _masked_spread,
    batched_apply,
    batched_scaled_step,
)
from repro.utils.validation import check_positive

__all__ = ["ChainLink", "ContinuousBatcher", "RowResult", "solve_chains"]


@dataclass
class RowResult:
    """Outcome of one row's flight through the continuous batcher.

    ``tag`` is whatever the caller attached at :meth:`ContinuousBatcher.submit`
    time (the service attaches its pending ticket; :func:`solve_chains`
    its ``(chain, link)`` coordinates).  ``error`` is ``None`` for a
    normal retirement — converged or budget-capped — and a one-line
    description when the row was *failed* (infeasible start, M/M/1
    instability) without disturbing its slot-mates.
    """

    tag: Any
    allocation: Optional[np.ndarray]
    cost: Optional[float]
    iterations: int
    converged: bool
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        if self.error is not None:
            return f"RowResult(tag={self.tag!r}, error={self.error!r})"
        state = "converged" if self.converged else "budget-capped"
        return (
            f"RowResult(tag={self.tag!r}, {state}, "
            f"iterations={self.iterations}, cost={self.cost:.6g})"
        )


@dataclass
class _Submission:
    """One queued problem waiting for a free slot."""

    problem: FileAllocationProblem
    alpha: float
    epsilon: float
    max_iterations: int
    x0: Optional[np.ndarray]
    tag: Any


class ContinuousBatcher:
    """Row-staggered lockstep driver: a fixed-capacity slot array over a
    pending queue.

    Parameters
    ----------
    capacity:
        Number of concurrent rows (the ``C`` of the ``(C, N)`` state).
        Submissions beyond the free slots queue FIFO and are admitted as
        rows retire.
    epsilon / max_iterations:
        Defaults for submissions that do not carry their own.  Unlike the
        lockstep allocator these are *per-row*: rows with different
        tolerances and budgets share slots freely.
    validate:
        Assert per-row feasibility after every step (the serial
        allocator's Theorem-1 checks, including clamp redistribution).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; tallies
        ``continuous.steps`` / ``continuous.row_steps`` /
        ``continuous.admitted`` / ``continuous.retired`` /
        ``continuous.faults`` counters and the ``continuous.occupancy``
        gauge — the occupancy story the benchmarks report.

    Usage::

        cb = ContinuousBatcher(capacity=32)
        for problem, alpha, x0 in work:
            cb.submit(problem, alpha=alpha, x0=x0, tag=...)
        while not cb.idle():
            for row in cb.step():      # retired this iteration
                handle(row.tag, row)
            cb.submit(...)             # admission mid-flight is free

    Every submitted row eventually comes back exactly once, in
    deterministic order for a given submission sequence.
    """

    def __init__(
        self,
        *,
        capacity: int = 32,
        epsilon: float = 1e-3,
        max_iterations: int = 100_000,
        validate: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.default_epsilon = check_positive(epsilon, "epsilon")
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        self.default_max_iterations = int(max_iterations)
        self.validate = validate
        self.registry = registry
        self.n: Optional[int] = None
        self._problem: Optional[BatchedProblem] = None
        self._queue: deque = deque()
        self._completed: List[RowResult] = []
        # Per-slot state, allocated lazily on the first admission (n is
        # unknown until then).  ``_occupied`` is the master mask; the
        # other arrays are only meaningful where it is True.
        self._occupied: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._dx: Optional[np.ndarray] = None
        self._cost: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._eps: Optional[np.ndarray] = None
        self._budget: Optional[np.ndarray] = None
        self._its: Optional[np.ndarray] = None
        self._tags: List[Any] = []
        # Lifetime accounting (occupancy_stats / the benchmarks).
        self._steps = 0
        self._row_steps = 0
        self._admitted = 0
        self._retired = 0
        self._faults = 0

    # -- intake ----------------------------------------------------------------

    def submit(
        self,
        problem: FileAllocationProblem,
        *,
        alpha: float = 0.3,
        epsilon: Optional[float] = None,
        max_iterations: Optional[int] = None,
        x0: Optional[np.ndarray] = None,
        tag: Any = None,
    ) -> None:
        """Queue one problem.  Admission into a slot happens inside
        :meth:`step` (grouped with other admissions, which keeps the
        initial fill vectorized); results come back from :meth:`step`
        carrying ``tag``.

        ``alpha`` must be a fixed positive stepsize — the continuous
        driver has no shared iteration clock for a batched
        :class:`~repro.core.stepsize.DynamicStep` bound, and fixed
        per-row stepsizes are what keep every dispatch path bit-identical.
        """
        alpha = float(alpha)
        if not np.isfinite(alpha) or alpha <= 0:
            raise ConfigurationError("alpha must be positive and finite")
        eps = (
            self.default_epsilon
            if epsilon is None
            else check_positive(float(epsilon), "epsilon")
        )
        budget = (
            self.default_max_iterations if max_iterations is None else int(max_iterations)
        )
        if budget < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.n is not None and problem.n != self.n:
            raise ConfigurationError(
                f"all problems in a continuous batch must have n={self.n}, "
                f"got n={problem.n}"
            )
        self._queue.append(
            _Submission(
                problem=problem,
                alpha=alpha,
                epsilon=eps,
                max_iterations=budget,
                x0=None if x0 is None else np.asarray(x0, dtype=float),
                tag=tag,
            )
        )

    # -- introspection ---------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Rows currently in flight."""
        return 0 if self._occupied is None else int(self._occupied.sum())

    @property
    def backlog(self) -> int:
        """Submissions queued but not yet admitted."""
        return len(self._queue)

    def idle(self) -> bool:
        """Nothing in flight, nothing queued, nothing left to collect."""
        return not self._queue and not self._completed and self.occupancy == 0

    def occupancy_stats(self) -> dict:
        """Lifetime occupancy accounting: how full the batch has been.

        ``occupancy_mean`` is live rows averaged over steps;
        ``occupancy_ratio`` divides by capacity — the quantity that
        separates continuous from group-and-flush dispatch on
        mixed-convergence streams.
        """
        steps = max(1, self._steps)
        mean = self._row_steps / steps
        return {
            "capacity": self.capacity,
            "steps": self._steps,
            "row_steps": self._row_steps,
            "admitted": self._admitted,
            "retired": self._retired,
            "faults": self._faults,
            "occupancy_mean": mean,
            "occupancy_ratio": mean / self.capacity,
        }

    # -- slot plumbing ---------------------------------------------------------

    def _ensure_state(self, n: int) -> None:
        if self._occupied is not None:
            return
        self.n = n
        c = self.capacity
        self._occupied = np.zeros(c, dtype=bool)
        self._x = np.zeros((c, n))
        self._dx = np.zeros((c, n))
        self._cost = np.zeros(c)
        self._alpha = np.zeros(c)
        self._eps = np.zeros(c)
        self._budget = np.zeros(c, dtype=int)
        self._its = np.zeros(c, dtype=int)
        self._tags = [None] * c

    def _retire(
        self, slot: int, *, converged: bool, error: Optional[str] = None
    ) -> None:
        if error is None:
            result = RowResult(
                tag=self._tags[slot],
                allocation=self._x[slot].copy(),
                cost=float(self._cost[slot]),
                iterations=int(self._its[slot]),
                converged=converged,
            )
        else:
            self._faults += 1
            if self.registry is not None:
                self.registry.counter_inc("continuous.faults")
            result = RowResult(
                tag=self._tags[slot],
                allocation=None,
                cost=None,
                iterations=int(self._its[slot]),
                converged=False,
                error=error,
            )
        self._occupied[slot] = False
        self._tags[slot] = None
        self._retired += 1
        self._completed.append(result)
        if self.registry is not None:
            self.registry.counter_inc("continuous.retired")

    def _fail_submission(self, sub: _Submission, error: str) -> None:
        self._faults += 1
        self._retired += 1
        if self.registry is not None:
            self.registry.counter_inc("continuous.faults")
            self.registry.counter_inc("continuous.retired")
        self._completed.append(
            RowResult(
                tag=sub.tag,
                allocation=None,
                cost=None,
                iterations=0,
                converged=False,
                error=error,
            )
        )

    def _unstable_rows(self, slots: np.ndarray) -> np.ndarray:
        """Boolean mask over ``slots``: rows whose current iterate would
        raise :class:`~repro.exceptions.StabilityError` in evaluation.

        The precheck mirrors ``BatchedProblem._gaps`` exactly so a bad
        row can be failed in isolation instead of poisoning the whole
        evaluation of its slot-mates.
        """
        prob = self._problem
        arrivals = prob.total_rate[slots] * self._x[slots]
        finite = np.isfinite(arrivals).all(axis=1)
        gap_ok = ((prob.mu[slots] - arrivals) > 0).all(axis=1)
        return ~(finite & gap_ok)

    def _admit(self) -> None:
        """Move queued submissions into free slots, evaluating the new
        rows as one group.  Rows already converged at their start (or
        unstable there) retire immediately, freeing the slot for the next
        queued submission — hence the outer loop."""
        while self._queue:
            if self._occupied is None:
                self._ensure_state(self._queue[0].problem.n)
                self._problem = BatchedProblem.replicate(
                    self._queue[0].problem, self.capacity
                )
            free = np.flatnonzero(~self._occupied)
            if free.size == 0:
                return
            admitted: List[int] = []
            for slot in free:
                if not self._queue:
                    break
                sub = self._queue.popleft()
                try:
                    x0 = (
                        np.full(self.n, 1.0 / self.n)
                        if sub.x0 is None
                        else sub.problem.check_feasible(sub.x0)
                    )
                    self._problem.set_row(int(slot), sub.problem)
                except Exception as exc:
                    self._fail_submission(sub, f"{type(exc).__name__}: {exc}")
                    continue
                self._x[slot] = x0
                self._alpha[slot] = sub.alpha
                self._eps[slot] = sub.epsilon
                self._budget[slot] = sub.max_iterations
                self._its[slot] = 0
                self._tags[slot] = sub.tag
                self._occupied[slot] = True
                admitted.append(int(slot))
                self._admitted += 1
                if self.registry is not None:
                    self.registry.counter_inc("continuous.admitted")
            if not admitted:
                continue
            slots = np.array(admitted, dtype=int)
            bad = self._unstable_rows(slots)
            for slot in slots[bad]:
                self._retire(
                    int(slot),
                    converged=False,
                    error="M/M/1 unstable at the starting allocation: "
                    "arrival rate >= service rate",
                )
            good = slots[~bad]
            if good.size:
                self._evaluate(good)
                # A row already inside tolerance at its start retires with
                # zero iterations — exactly the lockstep kernel's behavior.
                self._retire_finished(good)

    def _evaluate(self, slots: np.ndarray) -> None:
        """Gradient/step/cost/spread for the selected rows — one
        iteration's worth of lookahead state, bit-identical per row to
        the lockstep kernel's."""
        prob = self._problem
        x = self._x[slots]
        g = prob.utility_gradient(x, slots)
        alpha = self._alpha[slots].copy()
        dx, mask = batched_scaled_step(x, g, alpha)
        self._dx[slots] = dx
        self._cost[slots] = prob.cost(x, slots)
        self._last_spreads = (slots, _masked_spread(g, mask))

    def _retire_finished(self, slots: np.ndarray) -> None:
        stored_slots, spread = self._last_spreads
        assert stored_slots is slots or np.array_equal(stored_slots, slots)
        converged = spread < self._eps[slots]
        exhausted = ~converged & (self._its[slots] >= self._budget[slots])
        for slot in slots[converged]:
            self._retire(int(slot), converged=True)
        for slot in slots[exhausted]:
            self._retire(int(slot), converged=False)

    # -- the drive loop --------------------------------------------------------

    def step(self) -> List[RowResult]:
        """Advance the batch by one lockstep iteration.

        Order of operations: admit queued work into free slots (the new
        rows' iteration-0 evaluation happens here), then apply the
        pending step of every occupied row, re-evaluate, and retire rows
        that converged or exhausted their budget.  Returns the rows
        retired by this call (admission-time instant retirements
        included), in deterministic slot order.
        """
        self._admit()
        slots = None if self._occupied is None else np.flatnonzero(self._occupied)
        if slots is not None and slots.size:
            self._x[slots] = batched_apply(
                self._x[slots],
                self._dx[slots],
                validate=self.validate,
                registry=self.registry,
            )
            self._its[slots] += 1
            self._steps += 1
            self._row_steps += int(slots.size)
            if self.registry is not None:
                self.registry.counter_inc("continuous.steps")
                self.registry.counter_inc("continuous.row_steps", int(slots.size))
                self.registry.gauge_set("continuous.occupancy", float(slots.size))
                self.registry.gauge_set("continuous.capacity", float(self.capacity))
            bad = self._unstable_rows(slots)
            for slot in slots[bad]:
                self._retire(
                    int(slot),
                    converged=False,
                    error="M/M/1 unstable in flight: arrival rate >= service rate",
                )
            good = slots[~bad]
            if good.size:
                self._evaluate(good)
                self._retire_finished(good)
        completed, self._completed = self._completed, []
        return completed

    def drain(self) -> List[RowResult]:
        """Step until nothing is queued or in flight; returns every
        result produced along the way (completion order)."""
        out: List[RowResult] = []
        while not self.idle():
            out.extend(self.step())
        return out

    def __repr__(self) -> str:
        return (
            f"ContinuousBatcher(capacity={self.capacity}, "
            f"occupancy={self.occupancy}, backlog={self.backlog})"
        )


@dataclass
class ChainLink:
    """One problem in a warm-start chain.

    ``x0`` is the starting iterate used when this link *opens* a chain
    (or when its predecessor failed); interior links start from their
    predecessor's final allocation, converged or not — exactly the
    contract of the sweep executor's ``warm_start`` continuation.
    """

    problem: FileAllocationProblem
    alpha: float = 0.3
    epsilon: Optional[float] = None
    max_iterations: Optional[int] = None
    x0: Optional[np.ndarray] = field(default=None)


def solve_chains(
    chains: Sequence[Sequence[ChainLink]],
    *,
    capacity: Optional[int] = None,
    epsilon: float = 1e-3,
    max_iterations: int = 100_000,
    validate: bool = True,
    registry: Optional[MetricsRegistry] = None,
) -> List[List[RowResult]]:
    """Solve warm-start chains concurrently, one slot per chain.

    Each chain is a sequence of :class:`ChainLink`; link ``j+1`` starts
    from link ``j``'s final allocation (its own ``x0`` when the
    predecessor failed or sizes mismatch).  Chains advance *staggered*:
    the moment one chain's link retires, its successor is admitted into
    the freed slot while the other chains keep iterating — the
    row-staggered form of the sweep executor's warm-started continuation,
    and what ``repro-fap sweep --engine batched --warm-start`` runs.

    With a single chain the result sequence is bit-for-bit the serial
    warm-started sweep (same solutions, same iteration counts); multiple
    chains trade that exact equivalence for parallelism — each chain is
    still internally exact, but chain heads start cold.

    Returns one list of :class:`RowResult` per chain, in link order.
    """
    chains = [list(chain) for chain in chains]
    live = [c for c in chains if c]
    if capacity is None:
        capacity = max(1, len(live))
    batcher = ContinuousBatcher(
        capacity=capacity,
        epsilon=epsilon,
        max_iterations=max_iterations,
        validate=validate,
        registry=registry,
    )
    results: List[List[Optional[RowResult]]] = [[None] * len(c) for c in chains]

    def _submit(ci: int, li: int, x0: Optional[np.ndarray]) -> None:
        link = chains[ci][li]
        batcher.submit(
            link.problem,
            alpha=link.alpha,
            epsilon=link.epsilon,
            max_iterations=link.max_iterations,
            x0=link.x0 if x0 is None else x0,
            tag=(ci, li),
        )

    for ci, chain in enumerate(chains):
        if chain:
            _submit(ci, 0, None)
    while not batcher.idle():
        for row in batcher.step():
            ci, li = row.tag
            results[ci][li] = row
            if li + 1 < len(chains[ci]):
                nxt = chains[ci][li + 1].problem
                warm = row.allocation
                if warm is None or len(warm) != nxt.n:
                    warm = None  # failed or resized predecessor: start cold
                _submit(ci, li + 1, warm)
    return [list(r) for r in results]
