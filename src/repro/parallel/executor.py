"""The process-pool sweep executor.

A parameter sweep — solve one :class:`FileAllocationProblem` per grid
point, measure, collect — is embarrassingly parallel across grid points.
:class:`SweepExecutor` runs a list of picklable tasks over a
``concurrent.futures.ProcessPoolExecutor`` with

* **chunking** — tasks are shipped in chunks to amortize pickling and
  process-dispatch overhead over many cheap grid points;
* **deterministic seeding** — each task carries a
  ``numpy.random.SeedSequence(root, spawn_key=(index,))``-derived seed, so
  a task's random stream depends only on the root seed and its grid
  index, never on chunking, worker count, or completion order;
* **bounded retry** — a task that fails (including a worker process
  dying: ``BrokenProcessPool`` poisons every in-flight chunk) is resubmitted
  up to ``retries`` times before :class:`SweepExecutionError` surfaces the
  original error;
* **metrics aggregation** — each worker tallies into a private
  :class:`~repro.obs.registry.MetricsRegistry` and returns its snapshot;
  the parent folds them into the caller's registry via
  :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`.

:func:`sweep_parallel` is the drop-in pooled counterpart of
:func:`repro.experiments.sweeps.parameter_sweep` (which now runs on the
same per-task runner, serially and pickle-free).  Because tasks cross
process boundaries, ``problem_factory`` and ``measure`` must be module-level
callables (lambdas and closures only work with ``max_workers=0``, the
in-process path).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.registry import MetricsRegistry
from repro.utils.seeding import rng_from_seed


class SweepExecutionError(ReproError):
    """A sweep task kept failing after its retry budget was spent."""

    def __init__(self, message: str, *, index: int | None = None):
        super().__init__(message)
        self.index = index


@dataclass(frozen=True)
class SweepTask:
    """One grid point: its position, swept value, and derived seed.

    ``seed`` is a :class:`numpy.random.SeedSequence` spawn key pair
    ``(root, index)`` materialized lazily in the worker — both halves are
    plain ints, so the task pickles cheaply.
    """

    index: int
    value: Any
    root_seed: int

    def seed_sequence(self) -> np.random.SeedSequence:
        """The task's independent seed stream (stable under re-execution)."""
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=(self.index,))

    def rng(self) -> np.random.Generator:
        """A generator over :meth:`seed_sequence`."""
        return rng_from_seed(self.seed_sequence())


def make_tasks(values: Iterable[Any], *, seed: int = 0) -> List[SweepTask]:
    """One :class:`SweepTask` per grid value, seeded from ``seed``."""
    return [SweepTask(index=i, value=v, root_seed=int(seed)) for i, v in enumerate(values)]


# -- the per-grid-point solve (runs in workers; must stay module-level) --------


def _factory_wants_rng(factory: Callable) -> bool:
    """Whether ``factory`` accepts an ``rng`` keyword (seeded factories)."""
    try:
        return "rng" in inspect.signature(factory).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False


def solve_grid_point(
    task: SweepTask,
    problem_factory: Callable,
    measure: Callable,
    *,
    initial_allocation=None,
    alpha: Optional[float] = 0.3,
    epsilon: float = 1e-4,
    max_iterations: int = 10_000,
    collect_metrics: bool = False,
    engine: str = "reference",
    warm_allocation=None,
    return_allocation: bool = False,
):
    """Build, solve, and measure one grid point; the shared task body of
    both the serial :func:`~repro.experiments.sweeps.parameter_sweep` and
    the pooled :func:`sweep_parallel`.

    ``alpha=None`` means the *task's own value* is the stepsize — how a
    sweep over alpha itself (a solver parameter, not a problem parameter)
    rides the same machinery.

    ``engine`` selects the solver loop (see
    :meth:`~repro.core.algorithm.DecentralizedAllocator.run`).
    ``warm_allocation`` — a neighboring grid point's converged allocation —
    replaces ``initial_allocation`` as the starting iterate when its length
    matches the problem size (a sweep that changes the node count across
    grid points falls back to the cold start).  With
    ``return_allocation=True`` the return value grows a third element, the
    solved allocation, so the caller can chain it into the next point.

    Returns ``(measurements, registry_snapshot_or_None)``, plus the
    allocation when requested.
    """
    from repro.core.algorithm import DecentralizedAllocator

    if _factory_wants_rng(problem_factory):
        problem = problem_factory(task.value, rng=task.rng())
    else:
        problem = problem_factory(task.value)
    registry = MetricsRegistry() if collect_metrics else None
    allocator = DecentralizedAllocator(
        problem,
        alpha=float(task.value) if alpha is None else alpha,
        epsilon=epsilon,
        max_iterations=max_iterations,
        registry=registry,
    )
    start = initial_allocation
    if warm_allocation is not None and len(warm_allocation) == problem.n:
        start = warm_allocation
    result = allocator.run(start, engine=engine)
    measurements = measure(problem, result)
    snapshot = registry.snapshot() if registry is not None else None
    if return_allocation:
        return measurements, snapshot, result.allocation
    return measurements, snapshot


def _run_chunk(payload) -> List[Tuple[int, bool, Any, Optional[dict]]]:
    """Worker entry point: run a chunk of tasks, never raise per-task.

    Returns ``(index, ok, measurements-or-error-repr, snapshot)`` per task
    so one bad grid point does not void its chunk-mates' finished work.

    When the payload kwargs carry ``warm_start_chain=True`` the chunk's
    tasks (already value-ordered by the parent) are chained: each solve
    starts from the previous task's converged allocation.  The chain
    resets at a failed task, and across chunk boundaries — warm starts
    are a within-chunk optimization so grid points never depend on
    another worker's completion order.
    """
    tasks, factory, measure, kwargs = payload
    kwargs = dict(kwargs)
    warm_chain = kwargs.pop("warm_start_chain", False)
    warm = None
    out: List[Tuple[int, bool, Any, Optional[dict]]] = []
    for task in tasks:
        try:
            if warm_chain:
                measurements, snapshot, warm = solve_grid_point(
                    task,
                    factory,
                    measure,
                    warm_allocation=warm,
                    return_allocation=True,
                    **kwargs,
                )
            else:
                measurements, snapshot = solve_grid_point(
                    task, factory, measure, **kwargs
                )
            out.append((task.index, True, measurements, snapshot))
        except Exception as exc:  # surfaced (and maybe retried) by the parent
            warm = None
            out.append((task.index, False, f"{type(exc).__name__}: {exc}", None))
    return out


class SweepExecutor:
    """Runs sweep tasks over a process pool with chunking and bounded retry.

    Parameters
    ----------
    max_workers:
        Pool size.  ``None`` uses ``os.cpu_count()``; ``0`` runs every
        task in-process (no pickling requirement — the executor the serial
        :func:`parameter_sweep` path uses).
    chunksize:
        Tasks per worker submission; default spreads the grid ~4 chunks
        per worker to balance dispatch overhead against load skew.
    retries:
        How many times one task may be re-executed after a failure before
        :class:`SweepExecutionError` is raised.
    registry:
        Optional parent :class:`MetricsRegistry`.  When given, workers
        collect per-task metrics and the parent merges every snapshot, plus
        ``sweep.tasks`` / ``sweep.retries`` counters and a
        ``sweep.run_seconds`` timer of its own.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        retries: int = 2,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError("max_workers must be >= 0 (0 = in-process)")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.retries = int(retries)
        self.registry = registry

    def _chunk(self, tasks: Sequence[SweepTask], workers: int) -> List[List[SweepTask]]:
        size = self.chunksize
        if size is None:
            size = max(1, len(tasks) // max(1, 4 * workers))
        return [list(tasks[i:i + size]) for i in range(0, len(tasks), size)]

    def run(
        self,
        tasks: Sequence[SweepTask],
        problem_factory: Callable,
        measure: Callable,
        *,
        warm_start: bool = False,
        **solve_kwargs,
    ) -> List[Dict[str, Any]]:
        """Execute every task; returns measurements in grid order.

        ``warm_start=True`` runs the tasks in swept-value order (falling
        back to grid order for unorderable values) and seeds each solve
        from its predecessor's converged allocation — a continuation pass
        along the sweep axis.  Task indices (and hence per-task rng seeds)
        and the returned measurement order are unchanged; only the
        starting iterates, and therefore iteration counts, differ.
        """
        from repro.obs.registry import maybe_timer

        collect = self.registry is not None
        solve_kwargs = dict(solve_kwargs, collect_metrics=collect)
        ordered: Sequence[SweepTask] = tasks
        if warm_start:
            try:
                ordered = sorted(tasks, key=lambda t: t.value)
            except TypeError:  # unorderable grid values: chain in grid order
                ordered = tasks
        results: Dict[int, Dict[str, Any]] = {}
        with maybe_timer(self.registry, "sweep.run_seconds"):
            if self.max_workers == 0:
                self._run_inline(
                    ordered, problem_factory, measure, solve_kwargs, results,
                    warm_start=warm_start,
                )
            else:
                if warm_start:
                    solve_kwargs = dict(solve_kwargs, warm_start_chain=True)
                self._run_pooled(ordered, problem_factory, measure, solve_kwargs, results)
        if self.registry is not None:
            self.registry.counter_inc("sweep.tasks", len(tasks))
        return [results[t.index] for t in tasks]

    def _absorb(self, snapshot: Optional[dict]) -> None:
        if self.registry is not None and snapshot is not None:
            self.registry.merge_snapshot(snapshot)

    def _run_inline(
        self, tasks, factory, measure, solve_kwargs, results, *, warm_start=False
    ) -> None:
        warm = None
        for task in tasks:
            attempt = 0
            while True:
                try:
                    if warm_start:
                        # Retries restart cold: a warm iterate that drove
                        # the solve into a failure must not be re-fed.
                        measurements, snapshot, warm = solve_grid_point(
                            task,
                            factory,
                            measure,
                            warm_allocation=warm if attempt == 0 else None,
                            return_allocation=True,
                            **solve_kwargs,
                        )
                    else:
                        measurements, snapshot = solve_grid_point(
                            task, factory, measure, **solve_kwargs
                        )
                    results[task.index] = measurements
                    self._absorb(snapshot)
                    break
                except Exception as exc:
                    warm = None
                    attempt += 1
                    if attempt > self.retries:
                        if self.retries == 0:
                            raise  # no retry requested: stay transparent
                        raise SweepExecutionError(
                            f"sweep task {task.index} (value={task.value!r}) failed "
                            f"after {attempt} attempts: {exc}",
                            index=task.index,
                        ) from exc
                    if self.registry is not None:
                        self.registry.counter_inc("sweep.retries")

    def _run_pooled(self, tasks, factory, measure, solve_kwargs, results) -> None:
        from concurrent.futures import ProcessPoolExecutor, as_completed
        from concurrent.futures.process import BrokenProcessPool
        import os

        workers = self.max_workers or os.cpu_count() or 1
        pending: List[SweepTask] = list(tasks)
        attempts: Dict[int, int] = {t.index: 0 for t in tasks}
        by_index = {t.index: t for t in tasks}
        first_error: Dict[int, str] = {}
        while pending:
            chunks = self._chunk(pending, workers)
            failed: List[int] = []
            # A dead worker breaks the whole pool; rebuild it per round so a
            # retry starts from a clean slate.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_chunk, (chunk, factory, measure, solve_kwargs)): chunk
                    for chunk in chunks
                }
                for future in as_completed(futures):
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        for task in futures[future]:
                            if task.index not in results:
                                failed.append(task.index)
                                first_error.setdefault(task.index, "worker process died")
                        continue
                    for index, ok, payload, snapshot in outcomes:
                        if ok:
                            results[index] = payload
                            self._absorb(snapshot)
                        else:
                            failed.append(index)
                            first_error.setdefault(index, str(payload))
            pending = []
            for index in failed:
                attempts[index] += 1
                if attempts[index] > self.retries:
                    raise SweepExecutionError(
                        f"sweep task {index} (value={by_index[index].value!r}) failed "
                        f"after {attempts[index]} attempts: {first_error[index]}",
                        index=index,
                    )
                if self.registry is not None:
                    self.registry.counter_inc("sweep.retries")
                pending.append(by_index[index])


def sweep_parallel(
    parameter: str,
    values: Iterable[Any],
    problem_factory: Callable,
    *,
    measure: Callable,
    initial_allocation=None,
    alpha: Optional[float] = 0.3,
    epsilon: float = 1e-4,
    max_iterations: int = 10_000,
    seed: int = 0,
    max_workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    retries: int = 2,
    registry: Optional[MetricsRegistry] = None,
    warm_start: bool = False,
    engine: str = "reference",
):
    """Pooled drop-in for :func:`repro.experiments.sweeps.parameter_sweep`.

    Identical semantics and measurements (each grid point is solved by the
    same per-task runner), executed over a process pool.  ``problem_factory``
    and ``measure`` must be picklable (module-level); factories accepting an
    ``rng`` keyword receive a deterministic per-task generator derived from
    ``seed`` and the grid index.  Returns a
    :class:`~repro.experiments.sweeps.SweepResult`.

    ``warm_start=True`` chains each chunk's solves along the sorted sweep
    axis (each grid point starts from its in-chunk predecessor's
    solution); ``engine="fast"`` solves every point on the fused
    :mod:`repro.core.fastpath` loop.
    """
    from repro.experiments.sweeps import SweepResult  # avoid an import cycle

    values = list(values)
    tasks = make_tasks(values, seed=seed)
    executor = SweepExecutor(
        max_workers=max_workers,
        chunksize=chunksize,
        retries=retries,
        registry=registry,
    )
    measurements = executor.run(
        tasks,
        problem_factory,
        measure,
        warm_start=warm_start,
        initial_allocation=initial_allocation,
        alpha=alpha,
        epsilon=epsilon,
        max_iterations=max_iterations,
        engine=engine,
    )
    return SweepResult(parameter=parameter, values=values, measurements=measurements)
