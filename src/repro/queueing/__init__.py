"""Queueing substrate: analytic delay models and a validating simulator.

The paper's delay term is the M/M/1 expected sojourn time
``T_i = 1/(mu - lambda x_i)`` at each node (§4), and §5.4 notes that
"alternate queueing models (e.g. M/G/1 queues) can be directly used ...
without affecting the feasibility or monotonicity properties".  This
package provides those models with analytic first and second derivatives
(the algorithm consumes marginals, and Theorem 2's bound consumes second
derivatives), overload-region approximations in the spirit of
Kurose–Singh [26], and an event-driven single-queue simulator used by the
test suite to validate every closed form.
"""

from repro.queueing.approximations import QuadraticOverloadDelay
from repro.queueing.littles_law import littles_law_lq, littles_law_wq
from repro.queueing.md1 import MD1Delay
from repro.queueing.mg1 import MG1Delay
from repro.queueing.mm1 import MM1Delay
from repro.queueing.mmc import MMcDelay, erlang_c
from repro.queueing.service import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
    ServiceDistribution,
)
from repro.queueing.simulation import (
    QueueSimulationResult,
    simulate_multiserver_queue,
    simulate_queue,
)

__all__ = [
    "DeterministicService",
    "ErlangService",
    "ExponentialService",
    "HyperexponentialService",
    "MD1Delay",
    "MG1Delay",
    "MM1Delay",
    "MMcDelay",
    "QuadraticOverloadDelay",
    "QueueSimulationResult",
    "ServiceDistribution",
    "erlang_c",
    "littles_law_lq",
    "littles_law_wq",
    "simulate_multiserver_queue",
    "simulate_queue",
]
