"""Overload-region delay approximations.

The paper assumes ``mu > lambda`` so the partial derivatives stay finite,
and notes (§4): "If we do not want to restrict lambda, then some functional
approximation can easily be made for T_i, as in [26]" (Kurose & Singh's
load-balancing paper).  The standard construction splices a quadratic onto
the exact delay curve at a switch-over utilization ``rho*`` so that the
value and the first two derivatives are continuous; beyond ``rho*`` the
approximation is finite (and convex) for *every* arrival rate, so the
optimizer can wander through transiently overloaded allocations without
blowing up.
"""

from __future__ import annotations

from repro.utils.validation import check_in_range, check_nonnegative


class QuadraticOverloadDelay:
    """Exact delay below a threshold, quadratic extrapolation above it.

    Wraps any delay model exposing ``sojourn_time`` / ``d_sojourn`` /
    ``d2_sojourn`` / ``mu``.  Below ``switch_utilization * mu`` the wrapped
    model is used unchanged; above it, a second-order Taylor extension keeps
    value, slope, and curvature continuous at the splice point.

    Parameters
    ----------
    base:
        The exact delay model (e.g. :class:`~repro.queueing.mm1.MM1Delay`).
    switch_utilization:
        The utilization ``rho* in (0, 1)`` at which to splice; 0.95 keeps
        the approximation indistinguishable from exact across the stable
        operating range of the paper's experiments.
    """

    def __init__(self, base, switch_utilization: float = 0.95):
        self.base = base
        self.switch_utilization = check_in_range(
            switch_utilization, "switch_utilization", 0.0, 1.0,
            inclusive_low=False, inclusive_high=False,
        )
        self._a_star = self.switch_utilization * base.mu
        self._t0 = base.sojourn_time(self._a_star)
        self._t1 = base.d_sojourn(self._a_star)
        self._t2 = base.d2_sojourn(self._a_star)

    @property
    def mu(self) -> float:
        """Service rate of the wrapped model."""
        return self.base.mu

    @property
    def max_stable_arrival(self) -> float:
        """Unbounded: the approximation is finite everywhere."""
        return float("inf")

    def is_stable(self, arrival_rate: float) -> bool:
        """Always true — that is the point of the approximation."""
        return True

    def sojourn_time(self, arrival_rate: float) -> float:
        a = check_nonnegative(arrival_rate, "arrival_rate")
        if a < self._a_star:
            return self.base.sojourn_time(a)
        d = a - self._a_star
        return self._t0 + self._t1 * d + 0.5 * self._t2 * d * d

    def d_sojourn(self, arrival_rate: float) -> float:
        a = check_nonnegative(arrival_rate, "arrival_rate")
        if a < self._a_star:
            return self.base.d_sojourn(a)
        return self._t1 + self._t2 * (a - self._a_star)

    def d2_sojourn(self, arrival_rate: float) -> float:
        a = check_nonnegative(arrival_rate, "arrival_rate")
        if a < self._a_star:
            return self.base.d2_sojourn(a)
        return self._t2

    def __repr__(self) -> str:
        return (
            f"QuadraticOverloadDelay(base={self.base!r}, "
            f"switch_utilization={self.switch_utilization:g})"
        )
