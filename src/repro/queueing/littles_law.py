"""Little's-law helpers, used by the queue simulator's sanity checks."""

from __future__ import annotations

from repro.utils.validation import check_nonnegative


def littles_law_lq(arrival_rate: float, mean_wait: float) -> float:
    """Expected number waiting ``Lq = lambda * Wq``."""
    return check_nonnegative(arrival_rate, "arrival_rate") * check_nonnegative(
        mean_wait, "mean_wait"
    )


def littles_law_wq(arrival_rate: float, mean_queue_length: float) -> float:
    """Expected wait ``Wq = Lq / lambda``."""
    a = check_nonnegative(arrival_rate, "arrival_rate")
    lq = check_nonnegative(mean_queue_length, "mean_queue_length")
    if a == 0:
        return 0.0
    return lq / a
