"""The M/D/1 sojourn-time model: deterministic service.

A thin specialization of the M/G/1 model with SCV = 0, kept as its own
class because deterministic record-access service is a natural modelling
choice and the name documents intent at call sites.
"""

from __future__ import annotations

from repro.queueing.mg1 import MG1Delay


class MD1Delay(MG1Delay):
    """Expected M/D/1 sojourn time: ``W(a) = 1/mu + a / (2 mu (mu - a))``."""

    def __init__(self, mu: float):
        super().__init__(mu=mu, scv=0.0)

    def __repr__(self) -> str:
        return f"MD1Delay(mu={self.mu:g})"
