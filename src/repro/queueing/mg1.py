"""The M/G/1 sojourn-time model (Pollaczek–Khinchine).

§5.4 of the paper points out that "alternate queueing models (e.g., such as
M/G/1 queues) can be directly used to model the access generation and
service mechanisms without affecting the feasibility or monotonicity
properties of the algorithm" — only the Theorem-2 stepsize bound is
specific to M/M/1.  This class supplies the drop-in model.

With arrival rate ``a``, service rate ``mu`` and squared coefficient of
variation ``scv`` of the service time:

    W(a) = 1/mu + a (1 + scv) / (2 mu^2 (1 - a/mu))

which for ``scv = 1`` collapses to the M/M/1 form ``1/(mu - a)`` (verified
in the tests), and for ``scv = 0`` gives M/D/1.
"""

from __future__ import annotations

from repro.exceptions import StabilityError
from repro.queueing.service import ServiceDistribution
from repro.utils.validation import check_nonnegative, check_positive


class MG1Delay:
    """Expected M/G/1 sojourn time as a function of arrival rate.

    Parameters
    ----------
    mu:
        Service rate (reciprocal mean service time).
    scv:
        Squared coefficient of variation of the service time
        (1 = exponential, 0 = deterministic, > 1 = hyperexponential).
    """

    def __init__(self, mu: float, scv: float = 1.0):
        self.mu = check_positive(mu, "mu")
        self.scv = check_nonnegative(scv, "scv")

    @classmethod
    def from_service(cls, service: ServiceDistribution) -> "MG1Delay":
        """Build the delay model matching a service distribution."""
        return cls(mu=service.rate, scv=service.scv)

    # -- stability ----------------------------------------------------------

    @property
    def max_stable_arrival(self) -> float:
        return self.mu

    def is_stable(self, arrival_rate: float) -> bool:
        return arrival_rate < self.mu

    def _check(self, arrival_rate: float) -> float:
        # As for M/M/1: negative rates are the analytic extension used by
        # the Unconstrained step policy's transient iterates.
        a = float(arrival_rate)
        if a != a or a in (float("inf"), float("-inf")):
            raise StabilityError(f"arrival rate must be finite, got {a!r}")
        if a >= self.mu:
            raise StabilityError(
                f"M/G/1 unstable: arrival rate {a:g} >= service rate {self.mu:g}"
            )
        return a

    # -- values and derivatives ----------------------------------------------

    def sojourn_time(self, arrival_rate: float) -> float:
        """Pollaczek–Khinchine expected sojourn time ``W(a)``."""
        a = self._check(arrival_rate)
        c = (1.0 + self.scv) / (2.0 * self.mu)
        return 1.0 / self.mu + c * a / (self.mu - a)

    def d_sojourn(self, arrival_rate: float) -> float:
        """``dW/da = c * mu / (mu - a)^2`` with ``c = (1+scv)/(2 mu)``."""
        a = self._check(arrival_rate)
        c = (1.0 + self.scv) / (2.0 * self.mu)
        return c * self.mu / (self.mu - a) ** 2

    def d2_sojourn(self, arrival_rate: float) -> float:
        """``d2W/da2 = 2 c mu / (mu - a)^3``."""
        a = self._check(arrival_rate)
        c = (1.0 + self.scv) / (2.0 * self.mu)
        return 2.0 * c * self.mu / (self.mu - a) ** 3

    # -- standard auxiliary quantities ----------------------------------------

    def utilization(self, arrival_rate: float) -> float:
        return self._check(arrival_rate) / self.mu

    def waiting_time(self, arrival_rate: float) -> float:
        """Expected queueing delay only (P-K formula proper)."""
        return self.sojourn_time(arrival_rate) - 1.0 / self.mu

    def queue_length(self, arrival_rate: float) -> float:
        a = self._check(arrival_rate)
        return a * self.sojourn_time(a)

    def __repr__(self) -> str:
        return f"MG1Delay(mu={self.mu:g}, scv={self.scv:g})"
