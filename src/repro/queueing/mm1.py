"""The M/M/1 sojourn-time model — the paper's delay term.

With Poisson arrivals at rate ``a`` and exponential service at rate ``mu``,
the expected sojourn (queueing + service) time is ``T(a) = 1/(mu - a)``
[Kleinrock vol. 1].  The FAP cost uses ``T_i = T(lambda * x_i)``, so the
algorithm's marginals need ``dT/da`` and Theorem 2's bound needs
``d^2 T / da^2``; both are provided analytically.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StabilityError
from repro.utils.validation import check_positive


class MM1Delay:
    """Expected sojourn time of an M/M/1 queue as a function of arrival rate.

    Parameters
    ----------
    mu:
        Service rate.  Arrival rates must stay strictly below ``mu``.
    """

    #: Whether this model is exact for exponential service (used by tests).
    exact_for_scv = 1.0

    def __init__(self, mu: float):
        self.mu = check_positive(mu, "mu")

    # -- stability ----------------------------------------------------------

    @property
    def max_stable_arrival(self) -> float:
        """Supremum of arrival rates with finite delay (= ``mu``)."""
        return self.mu

    def is_stable(self, arrival_rate: float) -> bool:
        """True when ``arrival_rate < mu``."""
        return arrival_rate < self.mu

    def _check(self, arrival_rate: float) -> float:
        # Negative rates are accepted as the analytic extension of
        # 1/(mu - a): the Unconstrained step policy deliberately visits
        # transiently negative shares (see repro.core.active_set).
        a = float(arrival_rate)
        if not np.isfinite(a):
            raise StabilityError(f"arrival rate must be finite, got {a!r}")
        if a >= self.mu:
            raise StabilityError(
                f"M/M/1 unstable: arrival rate {a:g} >= service rate {self.mu:g}"
            )
        return a

    # -- values and derivatives ----------------------------------------------

    def sojourn_time(self, arrival_rate: float) -> float:
        """``T(a) = 1 / (mu - a)``."""
        a = self._check(arrival_rate)
        return 1.0 / (self.mu - a)

    def d_sojourn(self, arrival_rate: float) -> float:
        """``dT/da = 1 / (mu - a)^2``.

        The power is spelled as an explicit product: IEEE-754 multiplication
        is deterministic, whereas ``pow(gap, 2)`` (libm) can differ from
        ``gap * gap`` by one ulp.  The vectorized evaluation kernels
        (:meth:`repro.core.model.FileAllocationProblem.evaluate`,
        :mod:`repro.parallel.batched`) use the same product form, which is
        what makes their bit-for-bit parity with this scalar path a
        guarantee rather than a platform accident.
        """
        a = self._check(arrival_rate)
        gap = self.mu - a
        return 1.0 / (gap * gap)

    def d2_sojourn(self, arrival_rate: float) -> float:
        """``d2T/da2 = 2 / (mu - a)^3`` (product form, see :meth:`d_sojourn`)."""
        a = self._check(arrival_rate)
        gap = self.mu - a
        return 2.0 / (gap * gap * gap)

    # -- standard auxiliary quantities ----------------------------------------

    def utilization(self, arrival_rate: float) -> float:
        """``rho = a / mu``."""
        return self._check(arrival_rate) / self.mu

    def waiting_time(self, arrival_rate: float) -> float:
        """Expected time in queue (excluding service): ``T - 1/mu``."""
        return self.sojourn_time(arrival_rate) - 1.0 / self.mu

    def queue_length(self, arrival_rate: float) -> float:
        """Expected number in system ``L = a * T`` (Little's law)."""
        a = self._check(arrival_rate)
        return a * self.sojourn_time(a)

    def __repr__(self) -> str:
        return f"MM1Delay(mu={self.mu:g})"
