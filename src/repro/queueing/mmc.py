"""The M/M/c sojourn-time model: multi-server nodes.

§5.4 notes that alternate queueing models drop into the cost function
unchanged; a node with ``c`` parallel access channels (disk arms, worker
threads) is the most common real-world variant.  With arrival rate ``a``,
per-server rate ``mu`` and ``c`` servers:

    W(a) = ErlangC(c, a/mu) / (c mu - a) + 1/mu

where ErlangC is the probability of queueing.  First and second
derivatives are supplied by high-order central differences of the closed
form (the expression is smooth on the stable region; the differences are
validated against richer stencils in the tests).
"""

from __future__ import annotations


from repro.exceptions import StabilityError
from repro.utils.validation import check_positive


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang's C formula: P(wait) for M/M/c with ``a = lambda/mu < c``.

    Computed with a numerically stable iterative form of the Erlang-B
    recurrence (``B_{k} = rho B_{k-1} / (k + rho B_{k-1})``) followed by
    the standard B-to-C conversion.
    """
    if servers < 1 or int(servers) != servers:
        raise ValueError(f"servers must be a positive integer, got {servers!r}")
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if offered_load >= servers:
        raise StabilityError(
            f"M/M/c unstable: offered load {offered_load:g} >= c = {servers}"
        )
    if offered_load == 0:
        return 0.0
    b = 1.0
    for k in range(1, int(servers) + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


class MMcDelay:
    """Expected M/M/c sojourn time as a function of arrival rate.

    Parameters
    ----------
    mu:
        Per-server service rate.
    servers:
        Number of parallel servers ``c``; ``c = 1`` reduces exactly to
        :class:`~repro.queueing.mm1.MM1Delay` (tested).
    """

    def __init__(self, mu: float, servers: int = 1):
        self._per_server_mu = check_positive(mu, "mu")
        if servers < 1 or int(servers) != servers:
            raise ValueError(f"servers must be a positive integer, got {servers!r}")
        self.servers = int(servers)

    @property
    def mu(self) -> float:
        """Aggregate service capacity ``c * mu`` (what the FAP model's
        stability check compares the arrival rate against)."""
        return self.servers * self._per_server_mu

    @property
    def per_server_mu(self) -> float:
        return self._per_server_mu

    @property
    def max_stable_arrival(self) -> float:
        return self.mu

    def is_stable(self, arrival_rate: float) -> bool:
        return arrival_rate < self.mu

    def _check(self, arrival_rate: float) -> float:
        a = float(arrival_rate)
        if a != a or a in (float("inf"), float("-inf")):
            raise StabilityError(f"arrival rate must be finite, got {a!r}")
        if a >= self.mu:
            raise StabilityError(
                f"M/M/c unstable: arrival rate {a:g} >= c*mu = {self.mu:g}"
            )
        return a

    def sojourn_time(self, arrival_rate: float) -> float:
        """``W(a) = C(c, a/mu) / (c mu - a) + 1/mu``.

        Negative arrival rates use the analytic extension (wait
        probability clamped at 0), as for the other delay models.
        """
        a = self._check(arrival_rate)
        if a <= 0:
            return 1.0 / self._per_server_mu
        wait_p = erlang_c(self.servers, a / self._per_server_mu)
        return wait_p / (self.mu - a) + 1.0 / self._per_server_mu

    def _h(self, a: float) -> float:
        """Stencil width: small but safe against the stability boundary."""
        gap = self.mu - max(a, 0.0)
        return min(1e-6 * max(1.0, self.mu), 0.25 * gap)

    def d_sojourn(self, arrival_rate: float) -> float:
        """Central finite difference of the closed form."""
        a = self._check(arrival_rate)
        h = self._h(a)
        return (self.sojourn_time(a + h) - self.sojourn_time(a - h)) / (2.0 * h)

    def d2_sojourn(self, arrival_rate: float) -> float:
        a = self._check(arrival_rate)
        h = self._h(a) * 100  # second differences need a wider stencil
        h = min(h, 0.25 * (self.mu - max(a, 0.0)))
        return (
            self.sojourn_time(a + h)
            - 2.0 * self.sojourn_time(a)
            + self.sojourn_time(a - h)
        ) / (h * h)

    def utilization(self, arrival_rate: float) -> float:
        return self._check(arrival_rate) / self.mu

    def __repr__(self) -> str:
        return f"MMcDelay(mu={self._per_server_mu:g}, servers={self.servers})"
