"""Service-time distributions.

Each distribution exposes its mean, squared coefficient of variation (SCV)
-- the two moments the Pollaczek–Khinchine formula needs -- and a sampler
for the event-driven queue simulator.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_in_range, check_positive


class ServiceDistribution(abc.ABC):
    """A positive service-time distribution with finite first two moments."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected service time ``E[S]``."""

    @property
    @abc.abstractmethod
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[S] / E[S]^2``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one sample (or ``size`` samples) of service time."""

    @property
    def rate(self) -> float:
        """Service rate ``mu = 1 / E[S]``."""
        return 1.0 / self.mean

    @property
    def second_moment(self) -> float:
        """``E[S^2] = (1 + scv) * E[S]^2``."""
        return (1.0 + self.scv) * self.mean**2


class ExponentialService(ServiceDistribution):
    """Exponential service at rate ``mu`` — the paper's baseline assumption."""

    def __init__(self, mu: float):
        self._mu = check_positive(mu, "mu")

    @property
    def mean(self) -> float:
        return 1.0 / self._mu

    @property
    def scv(self) -> float:
        return 1.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(1.0 / self._mu, size=size)

    def __repr__(self) -> str:
        return f"ExponentialService(mu={self._mu:g})"


class DeterministicService(ServiceDistribution):
    """Constant service time ``1/mu`` (the M/D/1 case)."""

    def __init__(self, mu: float):
        self._mu = check_positive(mu, "mu")

    @property
    def mean(self) -> float:
        return 1.0 / self._mu

    @property
    def scv(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return 1.0 / self._mu
        return np.full(size, 1.0 / self._mu)

    def __repr__(self) -> str:
        return f"DeterministicService(mu={self._mu:g})"


class ErlangService(ServiceDistribution):
    """Erlang-k service with overall rate ``mu`` (SCV = 1/k < 1)."""

    def __init__(self, k: int, mu: float):
        if int(k) != k or k < 1:
            raise ValueError(f"Erlang shape k must be a positive integer, got {k!r}")
        self._k = int(k)
        self._mu = check_positive(mu, "mu")

    @property
    def mean(self) -> float:
        return 1.0 / self._mu

    @property
    def scv(self) -> float:
        return 1.0 / self._k

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # Sum of k exponentials each with rate k*mu has mean 1/mu.
        return rng.gamma(shape=self._k, scale=1.0 / (self._k * self._mu), size=size)

    def __repr__(self) -> str:
        return f"ErlangService(k={self._k}, mu={self._mu:g})"


class HyperexponentialService(ServiceDistribution):
    """Two-phase hyperexponential service (SCV > 1).

    With probability ``p`` the service is exponential at rate ``mu1``,
    otherwise at rate ``mu2``.
    """

    def __init__(self, p: float, mu1: float, mu2: float):
        self._p = check_in_range(p, "p", 0.0, 1.0)
        self._mu1 = check_positive(mu1, "mu1")
        self._mu2 = check_positive(mu2, "mu2")

    @property
    def mean(self) -> float:
        return self._p / self._mu1 + (1.0 - self._p) / self._mu2

    @property
    def scv(self) -> float:
        m1 = self.mean
        m2 = 2.0 * (self._p / self._mu1**2 + (1.0 - self._p) / self._mu2**2)
        return m2 / m1**2 - 1.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            rate = self._mu1 if rng.random() < self._p else self._mu2
            return rng.exponential(1.0 / rate)
        phases = rng.random(size) < self._p
        rates = np.where(phases, self._mu1, self._mu2)
        return rng.exponential(1.0, size=size) / rates

    def __repr__(self) -> str:
        return (
            f"HyperexponentialService(p={self._p:g}, mu1={self._mu1:g}, mu2={self._mu2:g})"
        )
