"""Event-driven single-station queue simulation.

An independent check on the closed-form delay models: simulate a FCFS
single-server queue with Poisson arrivals and an arbitrary service
distribution, and measure the empirical mean sojourn time.  The test suite
compares the measurement against :class:`~repro.queueing.mm1.MM1Delay` and
:class:`~repro.queueing.mg1.MG1Delay` within sampling error, which is the
same validation discipline the paper's own simulation section applies to
its analytic claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.queueing.service import ServiceDistribution
from repro.utils.seeding import SeedLike, rng_from_seed
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class QueueSimulationResult:
    """Summary statistics from one queue simulation run."""

    customers: int
    mean_sojourn: float
    mean_wait: float
    mean_service: float
    utilization: float
    #: Standard error of the mean sojourn estimate (iid approximation —
    #: optimistic because sojourn times are autocorrelated, but adequate
    #: for the wide tolerances used in validation tests).
    sojourn_stderr: float


def simulate_queue(
    arrival_rate: float,
    service: ServiceDistribution,
    *,
    customers: int = 50_000,
    warmup: int = 1_000,
    seed: SeedLike = None,
) -> QueueSimulationResult:
    """Simulate an M/G/1 FCFS queue and return empirical delay statistics.

    Uses the Lindley recurrence — for a single FCFS station the waiting
    time of customer ``n`` is ``W_n = max(0, W_{n-1} + S_{n-1} - A_n)``
    where ``A_n`` is the inter-arrival gap — which is exact and far faster
    than a general event calendar.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate; must keep the queue stable
        (``arrival_rate < service.rate``).
    service:
        Service-time distribution.
    customers:
        Number of customers measured (after ``warmup`` discarded ones).
    """
    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    if arrival_rate >= service.rate:
        raise ConfigurationError(
            f"simulation requires a stable queue: arrival {arrival_rate:g} "
            f">= service rate {service.rate:g}"
        )
    if customers <= 0 or warmup < 0:
        raise ConfigurationError("customers must be > 0 and warmup >= 0")
    rng = rng_from_seed(seed)

    total = warmup + customers
    gaps = rng.exponential(1.0 / arrival_rate, size=total)
    services = np.asarray(service.sample(rng, size=total), dtype=float)

    waits = np.empty(total)
    w = 0.0
    for n in range(total):
        waits[n] = w
        w = max(0.0, w + services[n] - gaps[min(n + 1, total - 1)])
    waits = waits[warmup:]
    services = services[warmup:]

    sojourns = waits + services
    busy_time = services.sum()
    horizon = gaps[warmup:].sum()
    mean_sojourn = float(sojourns.mean())
    stderr = float(sojourns.std(ddof=1) / np.sqrt(sojourns.size))
    return QueueSimulationResult(
        customers=customers,
        mean_sojourn=mean_sojourn,
        mean_wait=float(waits.mean()),
        mean_service=float(services.mean()),
        utilization=float(min(1.0, busy_time / horizon)),
        sojourn_stderr=stderr,
    )


def simulate_multiserver_queue(
    arrival_rate: float,
    service: ServiceDistribution,
    servers: int,
    *,
    customers: int = 50_000,
    warmup: int = 1_000,
    seed: SeedLike = None,
) -> QueueSimulationResult:
    """Simulate an M/G/c FCFS queue (``c`` identical parallel servers).

    Validates the M/M/c Erlang-C closed form in the tests.  Uses the
    earliest-free-server discipline: each arrival is served by whichever
    server frees first (equivalent to a single FCFS queue feeding ``c``
    servers).
    """
    import heapq

    arrival_rate = check_positive(arrival_rate, "arrival_rate")
    if servers < 1 or int(servers) != servers:
        raise ConfigurationError(f"servers must be a positive integer, got {servers!r}")
    if arrival_rate >= servers * service.rate:
        raise ConfigurationError(
            f"simulation requires a stable queue: arrival {arrival_rate:g} "
            f">= total service rate {servers * service.rate:g}"
        )
    if customers <= 0 or warmup < 0:
        raise ConfigurationError("customers must be > 0 and warmup >= 0")
    rng = rng_from_seed(seed)

    total = warmup + customers
    arrival_times = np.cumsum(rng.exponential(1.0 / arrival_rate, size=total))
    services = np.asarray(service.sample(rng, size=total), dtype=float)

    free_at = [0.0] * int(servers)  # min-heap of server-free times
    heapq.heapify(free_at)
    waits = np.empty(total)
    busy = 0.0
    for idx in range(total):
        t = arrival_times[idx]
        earliest = heapq.heappop(free_at)
        start = max(t, earliest)
        waits[idx] = start - t
        heapq.heappush(free_at, start + services[idx])
        if idx >= warmup:
            busy += services[idx]

    waits = waits[warmup:]
    served = services[warmup:]
    sojourns = waits + served
    horizon = arrival_times[-1] - arrival_times[warmup]
    return QueueSimulationResult(
        customers=customers,
        mean_sojourn=float(sojourns.mean()),
        mean_wait=float(waits.mean()),
        mean_service=float(served.mean()),
        utilization=float(min(1.0, busy / (horizon * servers))),
        sojourn_stderr=float(sojourns.std(ddof=1) / np.sqrt(sojourns.size)),
    )
