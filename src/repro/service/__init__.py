"""repro.service — allocation-as-a-service over the solver engines.

The subsystem that turns one-shot library calls into a served stream:
:class:`AllocationService` accepts :class:`SolveRequest`\\ s on a bounded
queue, micro-batches compatible requests into one continuous-batching
:class:`~repro.parallel.ContinuousBatcher` dispatch — converged rows
retire mid-flight and freed slots refill from the pending queue
(``batch_mode="flush"`` keeps the PR-4 group-and-flush lockstep
dispatcher; singletons take the fused fast path) — answers repeats from
a content-addressed
:class:`SolutionCache` (exact hits immediately; near-misses warm-started
from the nearest cached allocation), and sheds overload through
:class:`AdmissionController` as structured rejections instead of
unbounded latency.

The batched/serial/fast engines' bit-for-bit parity is the load-bearing
invariant: a request's answer does not depend on how the service chose to
dispatch it.

Quick start::

    from repro.core import FileAllocationProblem
    from repro.service import AllocationService, SolveRequest

    service = AllocationService(max_batch=32, registry=None)
    problem = FileAllocationProblem.paper_network()
    response = service.solve(SolveRequest(problem=problem, alpha=0.3))
    response.allocation        # ~ [0.25, 0.25, 0.25, 0.25]
    response.cache             # "miss" the first time, "hit" on a repeat

``repro-fap serve`` speaks the same machinery over line-delimited JSON;
docs/COOKBOOK.md ("Serving allocations") and docs/PERFORMANCE.md (bench
numbers) cover operation.
"""

from repro.service.admission import AdmissionController
from repro.service.batcher import (
    BatchKey,
    ContinuousBatchKey,
    MicroBatch,
    MicroBatcher,
    batch_key,
    continuous_batch_key,
)
from repro.service.cache import EVICTION_POLICIES, CacheEntry, SolutionCache
from repro.service.codec import (
    iter_request_payloads,
    parse_request,
    request_to_payload,
    response_from_dict,
    response_to_dict,
    safe_parse,
)
from repro.service.drift import DriftState, DriftTracker
from repro.service.fingerprint import (
    parameter_distance,
    parameter_vector,
    problem_fingerprint,
    relative_distance,
    request_fingerprint,
    structural_key,
    structural_key_from_matrix,
)
from repro.service.service import AllocationService, PendingSolve, ServiceClient
from repro.service.types import (
    REJECT_DEADLINE,
    REJECT_LOAD_SHED,
    REJECT_QUEUE_FULL,
    REJECT_SHUTDOWN,
    REJECT_SOLVER_ERROR,
    AdmissionDecision,
    CacheLookup,
    SolveRequest,
    SolveResponse,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AllocationService",
    "BatchKey",
    "CacheEntry",
    "CacheLookup",
    "ContinuousBatchKey",
    "DriftState",
    "DriftTracker",
    "EVICTION_POLICIES",
    "MicroBatch",
    "MicroBatcher",
    "PendingSolve",
    "REJECT_DEADLINE",
    "REJECT_LOAD_SHED",
    "REJECT_QUEUE_FULL",
    "REJECT_SHUTDOWN",
    "REJECT_SOLVER_ERROR",
    "ServiceClient",
    "SolutionCache",
    "SolveRequest",
    "SolveResponse",
    "batch_key",
    "continuous_batch_key",
    "iter_request_payloads",
    "parameter_distance",
    "parameter_vector",
    "parse_request",
    "problem_fingerprint",
    "relative_distance",
    "request_fingerprint",
    "request_to_payload",
    "response_from_dict",
    "response_to_dict",
    "safe_parse",
    "structural_key",
    "structural_key_from_matrix",
]
