"""Admission control: bounded queues, deadlines, load shedding.

The service's latency story is only as good as its refusal story.  An
unbounded queue turns overload into unbounded latency for *every*
request; :class:`AdmissionController` instead turns overload into fast,
structured rejections:

* **queue bound** — at ``max_queue_depth`` pending requests, new arrivals
  are rejected with :data:`~repro.service.types.REJECT_QUEUE_FULL`;
* **load shedding** — at ``shed_threshold`` (softer than the hard bound)
  arrivals with ``priority <= 0`` are rejected with
  :data:`~repro.service.types.REJECT_LOAD_SHED`, reserving the remaining
  headroom for requests someone marked as mattering more;
* **deadlines** — a request that has waited longer than its
  ``timeout_s`` (or the controller's default) is rejected at dispatch
  time with :data:`~repro.service.types.REJECT_DEADLINE` rather than
  solved late: by then the caller has moved on, and solving it anyway
  would only delay the requests behind it.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.service.types import (
    REJECT_DEADLINE,
    REJECT_LOAD_SHED,
    REJECT_QUEUE_FULL,
    AdmissionDecision,
    SolveRequest,
)

__all__ = ["AdmissionController"]


class AdmissionController:
    """Decides, per request, whether the service takes the work.

    Parameters
    ----------
    max_queue_depth:
        Hard bound on pending requests; arrivals beyond it are rejected.
    shed_threshold:
        Soft bound at which priority-0 (and below) arrivals are shed.
        ``None`` disables shedding.  Must not exceed ``max_queue_depth``.
    default_timeout_s:
        Queue-wait deadline applied to requests that do not carry their
        own ``timeout_s``.  ``None`` means no default deadline.
    """

    def __init__(
        self,
        *,
        max_queue_depth: int = 1024,
        shed_threshold: Optional[int] = None,
        default_timeout_s: Optional[float] = None,
    ):
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if shed_threshold is not None and not 0 < shed_threshold <= max_queue_depth:
            raise ConfigurationError(
                "shed_threshold must be in (0, max_queue_depth]"
            )
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ConfigurationError("default_timeout_s must be positive")
        self.max_queue_depth = int(max_queue_depth)
        self.shed_threshold = shed_threshold
        self.default_timeout_s = default_timeout_s

    def admit(self, request: SolveRequest, queue_depth: int) -> AdmissionDecision:
        """Admission check at arrival, against the current queue depth."""
        if queue_depth >= self.max_queue_depth:
            return AdmissionDecision(
                admit=False,
                reason=REJECT_QUEUE_FULL,
                detail=(
                    f"queue at capacity ({queue_depth}/{self.max_queue_depth} pending)"
                ),
            )
        if (
            self.shed_threshold is not None
            and queue_depth >= self.shed_threshold
            and request.priority <= 0
        ):
            return AdmissionDecision(
                admit=False,
                reason=REJECT_LOAD_SHED,
                detail=(
                    f"shedding priority<=0 traffic at depth {queue_depth} "
                    f"(threshold {self.shed_threshold})"
                ),
            )
        return AdmissionDecision.ACCEPT

    def timeout_for(self, request: SolveRequest) -> Optional[float]:
        """The deadline that applies to ``request`` (its own, or the default)."""
        return request.timeout_s if request.timeout_s is not None else self.default_timeout_s

    def check_deadline(
        self, request: SolveRequest, waited_s: float
    ) -> AdmissionDecision:
        """Deadline check at dispatch, after ``waited_s`` in the queue."""
        timeout = self.timeout_for(request)
        if timeout is not None and waited_s > timeout:
            return AdmissionDecision(
                admit=False,
                reason=REJECT_DEADLINE,
                detail=f"waited {waited_s:.3g}s in queue, deadline {timeout:.3g}s",
            )
        return AdmissionDecision.ACCEPT

    def __repr__(self) -> str:
        return (
            f"AdmissionController(max_queue_depth={self.max_queue_depth}, "
            f"shed_threshold={self.shed_threshold}, "
            f"default_timeout_s={self.default_timeout_s})"
        )
