"""Micro-batching: grouping compatible requests into one lockstep solve.

The batched kernel (:class:`~repro.parallel.BatchedAllocator`) advances B
independent problems as ``(B, N)`` arrays — its throughput on small
instances is an order of magnitude over the serial loop, *and* its rows
are bit-for-bit identical to the serial engine's iterates.  That parity
is what makes micro-batching safe to apply silently: a request receives
the identical answer whether it was grouped or solved alone, so batching
is purely a throughput decision, never a semantics decision.

The batcher plans in one of two **modes**, matching the two dispatchers
the service can run:

* ``mode="flush"`` — group-and-flush onto the lockstep
  :class:`~repro.parallel.BatchedAllocator`.  Two requests are batchable
  when the lockstep kernel can host both: same node count ``N`` (rows of
  one ``(B, N)`` array), pure analytic M/M/1 delay models (the kernel's
  closed-form evaluation), and same ``epsilon``/``max_iterations`` (the
  kernel's shared stopping rule and budget — per-row *alpha* and
  starting iterates vary freely).  Groups split at ``max_batch``.
* ``mode="continuous"`` — feed the row-staggered
  :class:`~repro.parallel.ContinuousBatcher`, which carries *per-row*
  tolerance and budget and retires/refills rows mid-flight.  The
  compatibility class collapses to :class:`ContinuousBatchKey` — just
  ``N`` plus pure M/M/1 — and groups are not split: the continuous
  driver's own ``capacity`` (= ``max_batch``) queues the overflow while
  keeping slots full.

Everything else — exotic delay models, odd sizes, and in flush mode
mismatched tolerances — dispatches as a singleton on the fused fast
path, which satisfies the same parity contract.

:class:`MicroBatcher` does the grouping; the dispatch window (how long
the service waits for a batch to fill) is timing policy and lives with
the service loop, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.service.types import SolveRequest

__all__ = [
    "BatchKey",
    "ContinuousBatchKey",
    "MicroBatch",
    "MicroBatcher",
    "batch_key",
    "continuous_batch_key",
]


@dataclass(frozen=True)
class BatchKey:
    """The compatibility class of one request: requests with equal keys
    can share a lockstep dispatch."""

    n: int
    epsilon: float
    max_iterations: int


def batch_key(request: SolveRequest) -> Optional[BatchKey]:
    """``request``'s compatibility class, or ``None`` if it must run alone."""
    if not request.problem.has_vectorized_evaluate:
        return None
    return BatchKey(
        n=request.problem.n,
        epsilon=request.epsilon,
        max_iterations=request.max_iterations,
    )


@dataclass(frozen=True)
class ContinuousBatchKey:
    """The (wider) compatibility class under continuous dispatch: the
    row-staggered driver carries epsilon, budget, alpha, and the starting
    iterate per row, so only the array width and the closed-form M/M/1
    evaluation remain shared."""

    n: int


def continuous_batch_key(request: SolveRequest) -> Optional[ContinuousBatchKey]:
    """``request``'s continuous-mode class, or ``None`` if it must run alone."""
    if not request.problem.has_vectorized_evaluate:
        return None
    return ContinuousBatchKey(n=request.problem.n)


@dataclass
class MicroBatch:
    """One dispatch unit: an ordered group of compatible work items.

    ``items`` are whatever the caller queued (the service queues its
    pending-ticket objects; each must expose ``.request``).  ``key`` is
    a :class:`BatchKey` (flush mode) or :class:`ContinuousBatchKey`
    (continuous mode), and ``None`` exactly for singleton fallbacks of
    unbatchable requests.
    """

    key: Optional[BatchKey | ContinuousBatchKey]
    items: List

    @property
    def size(self) -> int:
        return len(self.items)

    def requests(self) -> List[SolveRequest]:
        return [item.request for item in self.items]

    def __repr__(self) -> str:
        return f"MicroBatch(size={self.size}, key={self.key})"


class MicroBatcher:
    """Groups pending work into dispatchable :class:`MicroBatch` units.

    Parameters
    ----------
    max_batch:
        Upper bound on concurrent rows per dispatch: the split size in
        flush mode, the continuous driver's slot capacity in continuous
        mode.  1 disables grouping — every request runs the singleton
        path (the configuration the benchmarks use as the "individual
        dispatch" baseline).
    mode:
        ``"flush"`` (group-and-flush lockstep, the default for direct
        use) or ``"continuous"`` (row-staggered; what
        :class:`~repro.service.AllocationService` runs by default).
    """

    MODES = ("flush", "continuous")

    def __init__(self, *, max_batch: int = 32, mode: str = "flush"):
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if mode not in self.MODES:
            raise ConfigurationError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.max_batch = int(max_batch)
        self.mode = mode

    def plan(self, items: Sequence) -> List[MicroBatch]:
        """Partition ``items`` (each exposing ``.request``) into batches.

        Grouping preserves arrival order within each compatibility class
        and emits classes in first-arrival order, so dispatch order is
        deterministic for a given queue state.  Flush-mode groups are
        split at ``max_batch``; continuous-mode groups are not (the
        driver's slot capacity bounds concurrency instead).  Unbatchable
        requests become singletons.
        """
        keyer = continuous_batch_key if self.mode == "continuous" else batch_key
        groups: dict = {}
        order: List = []
        singletons: List[MicroBatch] = []
        for item in items:
            key = keyer(item.request)
            if key is None or self.max_batch == 1:
                singletons.append(MicroBatch(key=None, items=[item]))
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(item)
        batches: List[MicroBatch] = []
        if self.mode == "continuous":
            for key in order:
                batches.append(MicroBatch(key=key, items=groups[key]))
        else:
            for key in order:
                members = groups[key]
                for i in range(0, len(members), self.max_batch):
                    batches.append(
                        MicroBatch(key=key, items=members[i : i + self.max_batch])
                    )
        return batches + singletons

    def __repr__(self) -> str:
        return f"MicroBatcher(max_batch={self.max_batch}, mode={self.mode!r})"
