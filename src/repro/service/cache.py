"""The warm-start solution cache.

A content-addressed map from request fingerprints to finished solves,
with a structural side-index for continuation:

* an **exact hit** (same fingerprint — same problem bytes, same solver
  options) returns the cached allocation immediately; the determinism of
  every solver engine makes this sound, because re-running the solve
  could not produce anything else;
* a **warm near-miss** (same :func:`~repro.service.fingerprint.structural_key`,
  nearby parameters) returns the closest cached allocation as a
  *starting iterate*: the solver still runs, but — optima being
  continuous in the parameters — from a point already near its fixed
  point, which is the same continuation effect that makes warm-started
  sweeps ~30x cheaper (docs/PERFORMANCE.md);
* everything else is a **miss** and solves cold.

The cache is bounded and purely in-memory, with two eviction policies:

* ``eviction="lru"`` (default) — recency order over exact fingerprints,
  the classic bounded map;
* ``eviction="cost"`` — **value order**: each entry carries the solver
  iterations it has saved (exact hits × its own solve cost, plus warm
  starts × the iterations they skipped, credited back by the service),
  decayed with a half-life so yesterday's hero does not squat forever;
  eviction removes the minimum-value entry.  A hot, expensive solve
  survives a scan of one-off requests that would flush an LRU.

Both policies respect the same budgets: ``capacity`` bounds entries and
``max_bytes`` (optional) bounds the approximate retained bytes
(allocation + parameter vector + cost matrix per entry).

With ``ttl_s`` set, entries additionally expire by age: an expired entry
counts as a miss (evicted lazily on contact, donors included) and an
amortized **sweep** — every ``sweep_interval`` cache operations — walks
the whole store so a drifted working set cannot leak unbounded memory
behind keys nobody looks up again.  With a
:class:`~repro.service.drift.DriftTracker` attached, every entry is also
stamped with the **estimate epoch** it was solved under; an exact hit
from a stale epoch is *demoted* to a warm-start donor (stale-but-close)
instead of served verbatim.

Lookup dispositions are tallied on the registry as ``service.cache.hit``
/ ``.warm`` / ``.miss``, with ``service.cache.expired`` counting lazy
TTL evictions, ``service.cache.swept`` entries removed by the amortized
sweep, ``service.cache.evicted`` budget evictions,
``service.cache.demoted`` drift demotions, and the
``service.cache.size`` / ``service.cache.bytes`` gauges tracking the
footprint.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service.fingerprint import (
    parameter_vector,
    request_fingerprint,
    structural_key,
)
from repro.service.types import CacheLookup, SolveRequest

__all__ = ["CacheEntry", "EVICTION_POLICIES", "SolutionCache"]

#: Accepted ``SolutionCache(eviction=...)`` values.
EVICTION_POLICIES = ("lru", "cost")


@dataclass
class CacheEntry:
    """One finished solve, addressable exactly and structurally."""

    fingerprint: str
    structure: str
    problem: FileAllocationProblem
    allocation: np.ndarray
    cost: float
    iterations: int
    converged: bool
    #: Cache clock reading at :meth:`SolutionCache.store` time (drives
    #: TTL expiry; 0.0 when the cache has no TTL).
    stored_at: float = field(default=0.0)
    #: Flat parameter vector (rates, service rates, k) — one row of the
    #: bucket matrix the vectorized donor search ranks.
    params: Optional[np.ndarray] = field(default=None, repr=False)
    #: Approximate retained bytes (allocation + params + cost matrix).
    nbytes: int = 0
    #: Estimate epoch the solve ran under (0 without a drift tracker).
    epoch: int = 0
    #: Exact hits served from this entry.
    hits: int = 0
    #: Warm starts this entry donated.
    warm_uses: int = 0
    #: Decayed solver-iterations-saved accumulator (cost-aware eviction
    #: ranks by this; seeded with the entry's own solve cost).
    value: float = 0.0
    #: Cache clock reading of the last decay fold.
    value_at: float = 0.0


class SolutionCache:
    """Content-addressed cache of converged allocations.

    Parameters
    ----------
    capacity:
        Maximum number of retained solves.  0 disables the cache
        entirely: every lookup is a miss and nothing is stored.
    max_warm_distance:
        Largest :func:`~repro.service.fingerprint.parameter_distance` at
        which a same-structure entry still counts as "near" — beyond it a
        donor's allocation is likely farther from the optimum than the
        cold start would be.
    ttl_s:
        Maximum entry age in clock seconds; ``None`` (default) disables
        expiry.  Expired entries count as misses — for exact lookups and
        as warm-start donors alike — and are evicted lazily on contact
        plus wholesale by the amortized sweep.
    eviction:
        ``"lru"`` (default) evicts the least-recently-used entry under
        budget pressure; ``"cost"`` evicts the entry whose decayed
        iterations-saved value is smallest (expired entries lose every
        value comparison outright).
    max_bytes:
        Optional bound on the approximate retained bytes across all
        entries; evicts (by the same policy) until under budget.
    value_halflife_s:
        Half-life of the cost policy's value decay, in clock seconds;
        ``None`` disables decay.  Ignored under ``"lru"``.
    sweep_interval:
        Cache operations (lookups + stores) between amortized TTL
        sweeps; ``None`` picks 256 when ``ttl_s`` is set and disables
        sweeping otherwise.
    drift:
        Optional :class:`~repro.service.drift.DriftTracker`.  When set,
        every lookup feeds the tracker one observation, entries are
        stamped with their structure's estimate epoch at store time, and
        stale-epoch exact hits are demoted to warm-start donors.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        hit/warm/miss counters and the size/bytes gauges.
    clock:
        Monotonic time source for TTL and decay bookkeeping (injectable
        so tests and replay tooling can drive expiry deterministically).
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        max_warm_distance: float = 1.0,
        ttl_s: Optional[float] = None,
        eviction: str = "lru",
        max_bytes: Optional[int] = None,
        value_halflife_s: Optional[float] = 3600.0,
        sweep_interval: Optional[int] = None,
        drift=None,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        if max_warm_distance <= 0:
            raise ConfigurationError("max_warm_distance must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError("ttl_s must be positive (or None to disable)")
        if eviction not in EVICTION_POLICIES:
            raise ConfigurationError(
                f"unknown eviction policy {eviction!r} "
                f"(expected one of {EVICTION_POLICIES})"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive (or None)")
        if value_halflife_s is not None and value_halflife_s <= 0:
            raise ConfigurationError("value_halflife_s must be positive (or None)")
        if sweep_interval is not None and sweep_interval < 1:
            raise ConfigurationError("sweep_interval must be >= 1 (or None)")
        self.capacity = int(capacity)
        self.max_warm_distance = float(max_warm_distance)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.eviction = eviction
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.value_halflife_s = (
            None if value_halflife_s is None else float(value_halflife_s)
        )
        if sweep_interval is None and self.ttl_s is not None:
            sweep_interval = 256
        self.sweep_interval = sweep_interval
        self.drift = drift
        self.registry = registry
        self.clock = clock
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._buckets: Dict[str, "OrderedDict[str, CacheEntry]"] = {}
        #: Per-bucket vectorized view: (entries, params matrix, stored_at).
        self._bucket_view: Dict[str, Tuple[List[CacheEntry], np.ndarray, np.ndarray]] = {}
        self._bytes = 0
        self._ops = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Approximate retained bytes across all live entries."""
        return self._bytes

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, status: str) -> None:
        if self.registry is not None:
            self.registry.counter_inc(f"service.cache.{status}")
            self._gauges()

    def _gauges(self) -> None:
        if self.registry is not None:
            self.registry.gauge_set("service.cache.size", float(len(self._entries)))
            self.registry.gauge_set("service.cache.bytes", float(self._bytes))

    def _is_expired(self, entry: CacheEntry) -> bool:
        return self.ttl_s is not None and self.clock() - entry.stored_at > self.ttl_s

    def _remove(self, entry: CacheEntry, counter: Optional[str]) -> None:
        """Drop one entry from every index; ``counter`` names the
        ``service.cache.*`` series the removal tallies into."""
        self._entries.pop(entry.fingerprint, None)
        bucket = self._buckets.get(entry.structure)
        if bucket is not None:
            bucket.pop(entry.fingerprint, None)
            if not bucket:
                self._buckets.pop(entry.structure, None)
        self._bucket_view.pop(entry.structure, None)
        self._bytes -= entry.nbytes
        if counter is not None and self.registry is not None:
            self.registry.counter_inc(f"service.cache.{counter}")

    # -- value accounting (cost-aware eviction) --------------------------------

    def _decayed_value(self, entry: CacheEntry, now: float) -> float:
        """Fold decay into ``entry.value`` up to ``now``; returns it."""
        if self.value_halflife_s is not None and entry.value:
            dt = now - entry.value_at
            if dt > 0:
                entry.value *= 0.5 ** (dt / self.value_halflife_s)
        entry.value_at = now
        return entry.value

    def _credit(self, entry: CacheEntry, saved: float) -> None:
        if self.eviction != "cost":
            return
        now = self.clock()
        self._decayed_value(entry, now)
        entry.value += max(0.0, float(saved))

    def credit_warm(self, fingerprint: str, iterations_saved: float) -> None:
        """Credit a donor with the solver iterations its warm start
        skipped (the service calls this when the warm solve finishes —
        the donor's worth is only known after the fact)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return
        entry.warm_uses += 1
        self._credit(entry, iterations_saved)

    # -- TTL sweeping ----------------------------------------------------------

    def sweep(self) -> int:
        """Evict every expired entry now; returns how many were removed.

        The amortized form runs automatically every ``sweep_interval``
        operations; this is the explicit handle for tests and operators.
        """
        if self.ttl_s is None or not self._entries:
            return 0
        cutoff = self.clock() - self.ttl_s
        stale = [e for e in self._entries.values() if e.stored_at < cutoff]
        for entry in stale:
            self._remove(entry, "swept")
        if stale:
            self._gauges()
        return len(stale)

    def _maybe_sweep(self) -> None:
        if self.sweep_interval is None:
            return
        self._ops += 1
        if self._ops >= self.sweep_interval:
            self._ops = 0
            self.sweep()

    # -- lookup ----------------------------------------------------------------

    def lookup(self, request: SolveRequest) -> CacheLookup:
        """Probe the cache for ``request``; never runs a solver."""
        if self.capacity == 0:
            self._count("miss")
            return CacheLookup(status="miss")
        fp = request_fingerprint(request)
        if fp is None:  # uncacheable problem class
            self._count("miss")
            return CacheLookup(status="miss")
        self._maybe_sweep()
        epoch = (
            self.drift.observe(request.problem) if self.drift is not None else 0
        )
        entry = self._entries.get(fp)
        if entry is not None:
            if self._is_expired(entry):
                self._remove(entry, "expired")
            elif self.drift is not None and entry.epoch != epoch:
                # The estimate this entry was solved under has drifted:
                # serve it as a warm-start donor, not verbatim.  The
                # entry leaves the exact index — its answer is no longer
                # current — and the re-solve is stored under the
                # donor-started request by the service.
                self._remove(entry, "demoted")
                self._count("warm")
                return CacheLookup(
                    status="warm", entry=entry, distance=0.0, demoted=True
                )
            else:
                self._entries.move_to_end(fp)
                entry.hits += 1
                self._credit(entry, entry.iterations)
                self._count("hit")
                return CacheLookup(status="hit", entry=entry, distance=0.0)
        donor = self._nearest(request)
        if donor is not None:
            entry, distance = donor
            self._count("warm")
            return CacheLookup(status="warm", entry=entry, distance=distance)
        self._count("miss")
        return CacheLookup(status="miss")

    # -- the donor search ------------------------------------------------------

    def _bucket_arrays(self, structure: str):
        """The bucket's entries with their parameter matrix and store
        times as flat arrays, cached until membership changes."""
        view = self._bucket_view.get(structure)
        if view is not None:
            return view
        bucket = self._buckets.get(structure)
        if not bucket:
            return None
        entries = [e for e in bucket.values() if e.params is not None]
        if not entries:
            return None
        matrix = np.stack([e.params for e in entries])
        stored = np.array([e.stored_at for e in entries])
        view = (entries, matrix, stored)
        self._bucket_view[structure] = view
        return view

    def _nearest(self, request: SolveRequest):
        """The closest same-structure donor within ``max_warm_distance``.

        One vectorized pass over the bucket's precomputed parameter
        matrix — no per-entry array rebuilding, and shape-incompatible
        entries never enter the candidate set (the structural bucket is
        the index).  Ties keep the latest-stored candidate, matching the
        sequential ``<=`` scan this replaced bit for bit.
        """
        structure = structural_key(request.problem)
        view = self._bucket_arrays(structure)
        if view is None:
            return None
        entries, matrix, stored = view
        if self.ttl_s is not None:
            live = stored >= self.clock() - self.ttl_s
            if not live.all():
                for entry in [e for e, ok in zip(entries, live) if not ok]:
                    self._remove(entry, "expired")
                view = self._bucket_arrays(structure)
                if view is None:
                    return None
                entries, matrix, stored = view
        query = parameter_vector(request.problem)
        if query is None or matrix.shape[1] != query.shape[0]:
            return None
        scale = np.maximum(np.maximum(np.abs(matrix), np.abs(query)), 1e-300)
        rel = (matrix - query) / scale
        distances = np.sqrt(np.sum(rel * rel, axis=1))
        best = float(distances.min())
        if best > self.max_warm_distance:
            return None
        # Last index achieving the minimum — the `<=` update rule of the
        # sequential scan kept the latest equal-distance entry.
        idx = len(distances) - 1 - int(np.argmin(distances[::-1]))
        return entries[idx], best

    # -- store -----------------------------------------------------------------

    def store(self, request: SolveRequest, result) -> Optional[CacheEntry]:
        """Record a finished solve (an ``AllocationResult``-shaped object).

        Only converged solves are stored — a budget-capped iterate is not
        a solution and must not warm-start (let alone answer) anything.
        Returns the entry, or ``None`` when the solve was uncacheable.
        """
        if self.capacity == 0 or not result.converged:
            return None
        fp = request_fingerprint(request)
        if fp is None:
            return None
        self._maybe_sweep()
        params = parameter_vector(request.problem)
        allocation = np.array(result.allocation, dtype=float, copy=True)
        now = self.clock()
        entry = CacheEntry(
            fingerprint=fp,
            structure=structural_key(request.problem),
            problem=request.problem,
            allocation=allocation,
            cost=float(result.cost),
            iterations=int(result.iterations),
            converged=True,
            stored_at=now if self.ttl_s is not None else 0.0,
            params=params,
            nbytes=int(
                allocation.nbytes
                + (params.nbytes if params is not None else 0)
                + request.problem.cost_matrix.nbytes
            ),
            epoch=(
                self.drift.epoch_of(structural_key(request.problem))
                if self.drift is not None
                else 0
            ),
            # Seed the value with the entry's own solve cost: what its
            # first exact hit would save.  Costlier solves are worth
            # more shelf space from the moment they land.
            value=float(result.iterations),
            value_at=now,
        )
        old = self._entries.get(fp)
        if old is not None:
            self._remove(old, None)
        self._entries[fp] = entry
        self._buckets.setdefault(entry.structure, OrderedDict())[fp] = entry
        self._bucket_view.pop(entry.structure, None)
        self._bytes += entry.nbytes
        self._evict_to_budget()
        self._gauges()
        return entry

    def _over_budget(self) -> bool:
        if len(self._entries) > self.capacity:
            return True
        return self.max_bytes is not None and self._bytes > self.max_bytes

    def _evict_to_budget(self) -> None:
        while self._entries and self._over_budget():
            self._remove(self._victim(), "evicted")

    def _victim(self) -> CacheEntry:
        """The entry the active policy gives up first."""
        if self.eviction == "lru":
            return next(iter(self._entries.values()))
        now = self.clock()
        cutoff = None if self.ttl_s is None else now - self.ttl_s
        victim, victim_value = None, np.inf
        for entry in self._entries.values():
            if cutoff is not None and entry.stored_at < cutoff:
                # An expired entry never wins a value comparison.
                return entry
            value = self._decayed_value(entry, now)
            if value < victim_value:
                victim, victim_value = entry, value
        return victim

    def clear(self) -> None:
        self._entries.clear()
        self._buckets.clear()
        self._bucket_view.clear()
        self._bytes = 0
        self._ops = 0

    def __repr__(self) -> str:
        return (
            f"SolutionCache(size={len(self._entries)}/{self.capacity}, "
            f"buckets={len(self._buckets)}, eviction={self.eviction!r}, "
            f"bytes={self._bytes})"
        )
