"""The warm-start solution cache.

An LRU map from request fingerprints to finished solves, with a
structural side-index for continuation:

* an **exact hit** (same fingerprint — same problem bytes, same solver
  options) returns the cached allocation immediately; the determinism of
  every solver engine makes this sound, because re-running the solve
  could not produce anything else;
* a **warm near-miss** (same :func:`~repro.service.fingerprint.structural_key`,
  nearby parameters) returns the closest cached allocation as a
  *starting iterate*: the solver still runs, but — optima being
  continuous in the parameters — from a point already near its fixed
  point, which is the same continuation effect that makes warm-started
  sweeps ~30x cheaper (docs/PERFORMANCE.md);
* everything else is a **miss** and solves cold.

The cache is bounded (LRU over exact fingerprints) and purely in-memory.
With ``ttl_s`` set, entries additionally expire by age: an expired entry
counts as a miss (and is evicted lazily, donors included), which is what
keeps a long-lived network server from answering with — or warm-starting
from — an optimum computed for last week's traffic.  Lookup dispositions
are tallied on the registry as ``service.cache.hit`` / ``.warm`` /
``.miss``, with ``service.cache.expired`` counting lazy TTL evictions.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service.fingerprint import (
    parameter_distance,
    request_fingerprint,
    structural_key,
)
from repro.service.types import CacheLookup, SolveRequest

__all__ = ["CacheEntry", "SolutionCache"]


@dataclass
class CacheEntry:
    """One finished solve, addressable exactly and structurally."""

    fingerprint: str
    structure: str
    problem: FileAllocationProblem
    allocation: np.ndarray
    cost: float
    iterations: int
    converged: bool
    #: Cache clock reading at :meth:`SolutionCache.store` time (drives
    #: TTL expiry; 0.0 when the cache has no TTL).
    stored_at: float = field(default=0.0)


class SolutionCache:
    """Content-addressed LRU of converged allocations.

    Parameters
    ----------
    capacity:
        Maximum number of retained solves (LRU eviction).  0 disables the
        cache entirely: every lookup is a miss and nothing is stored.
    max_warm_distance:
        Largest :func:`~repro.service.fingerprint.parameter_distance` at
        which a same-structure entry still counts as "near" — beyond it a
        donor's allocation is likely farther from the optimum than the
        cold start would be.
    ttl_s:
        Maximum entry age in clock seconds; ``None`` (default) disables
        expiry.  Expired entries count as misses — for exact lookups and
        as warm-start donors alike — and are evicted lazily on contact.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        hit/warm/miss counters and the size gauge.
    clock:
        Monotonic time source for TTL bookkeeping (injectable so tests
        and replay tooling can drive expiry deterministically).
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        max_warm_distance: float = 1.0,
        ttl_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ):
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        if max_warm_distance <= 0:
            raise ConfigurationError("max_warm_distance must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigurationError("ttl_s must be positive (or None to disable)")
        self.capacity = int(capacity)
        self.max_warm_distance = float(max_warm_distance)
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self.registry = registry
        self.clock = clock
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._buckets: Dict[str, Dict[str, CacheEntry]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, status: str) -> None:
        if self.registry is not None:
            self.registry.counter_inc(f"service.cache.{status}")
            self.registry.gauge_set("service.cache.size", float(len(self._entries)))

    def _is_expired(self, entry: CacheEntry) -> bool:
        return self.ttl_s is not None and self.clock() - entry.stored_at > self.ttl_s

    def _evict_expired(self, entry: CacheEntry) -> None:
        self._entries.pop(entry.fingerprint, None)
        bucket = self._buckets.get(entry.structure)
        if bucket is not None:
            bucket.pop(entry.fingerprint, None)
            if not bucket:
                self._buckets.pop(entry.structure, None)
        if self.registry is not None:
            self.registry.counter_inc("service.cache.expired")

    def lookup(self, request: SolveRequest) -> CacheLookup:
        """Probe the cache for ``request``; never runs a solver."""
        if self.capacity == 0:
            self._count("miss")
            return CacheLookup(status="miss")
        fp = request_fingerprint(request)
        if fp is None:  # uncacheable problem class
            self._count("miss")
            return CacheLookup(status="miss")
        entry = self._entries.get(fp)
        if entry is not None:
            if self._is_expired(entry):
                self._evict_expired(entry)
            else:
                self._entries.move_to_end(fp)
                self._count("hit")
                return CacheLookup(status="hit", entry=entry, distance=0.0)
        donor = self._nearest(request)
        if donor is not None:
            entry, distance = donor
            self._count("warm")
            return CacheLookup(status="warm", entry=entry, distance=distance)
        self._count("miss")
        return CacheLookup(status="miss")

    def _nearest(self, request: SolveRequest):
        bucket = self._buckets.get(structural_key(request.problem))
        if not bucket:
            return None
        best, best_d = None, self.max_warm_distance
        stale = []
        for entry in bucket.values():
            if self._is_expired(entry):
                stale.append(entry)
                continue
            d = parameter_distance(request.problem, entry.problem)
            if d <= best_d:
                best, best_d = entry, d
        for entry in stale:
            self._evict_expired(entry)
        if best is None:
            return None
        return best, best_d

    def store(self, request: SolveRequest, result) -> Optional[CacheEntry]:
        """Record a finished solve (an ``AllocationResult``-shaped object).

        Only converged solves are stored — a budget-capped iterate is not
        a solution and must not warm-start (let alone answer) anything.
        Returns the entry, or ``None`` when the solve was uncacheable.
        """
        if self.capacity == 0 or not result.converged:
            return None
        fp = request_fingerprint(request)
        if fp is None:
            return None
        entry = CacheEntry(
            fingerprint=fp,
            structure=structural_key(request.problem),
            problem=request.problem,
            allocation=np.array(result.allocation, dtype=float, copy=True),
            cost=float(result.cost),
            iterations=int(result.iterations),
            converged=True,
            stored_at=self.clock() if self.ttl_s is not None else 0.0,
        )
        if fp in self._entries:
            self._entries.move_to_end(fp)
        self._entries[fp] = entry
        self._buckets.setdefault(entry.structure, {})[fp] = entry
        while len(self._entries) > self.capacity:
            old_fp, old = self._entries.popitem(last=False)
            bucket = self._buckets.get(old.structure, {})
            bucket.pop(old_fp, None)
            if not bucket:
                self._buckets.pop(old.structure, None)
        if self.registry is not None:
            self.registry.gauge_set("service.cache.size", float(len(self._entries)))
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self._buckets.clear()

    def __repr__(self) -> str:
        return (
            f"SolutionCache(size={len(self._entries)}/{self.capacity}, "
            f"buckets={len(self._buckets)})"
        )
