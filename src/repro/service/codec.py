"""The line-delimited JSON wire format of ``repro-fap serve``.

One request per line, one response per line.  A request names either a
standard topology::

    {"id": "r1",
     "problem": {"topology": "ring", "nodes": 4, "mu": 1.5, "rate": 1.0, "k": 1.0},
     "alpha": 0.3, "epsilon": 1e-3, "max_iterations": 10000,
     "start": "uniform", "timeout_s": 5.0, "priority": 0}

or carries the raw matrices::

    {"problem": {"cost_matrix": [[0, 1], [1, 0]],
                 "access_rates": [0.5, 0.5], "mu": 1.5, "k": 1.0}}

``start`` is a named initial allocation (``uniform`` / ``skewed`` /
``single``) or an explicit vector.  Responses are
:meth:`~repro.service.types.SolveResponse.as_dict` objects.  Malformed
payloads raise :class:`~repro.exceptions.ConfigurationError` with a
message naming the offending field — the CLI turns those into
``{"status": "error"}`` lines instead of dying mid-stream.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterator

import numpy as np

from repro.core.initials import (
    paper_skewed_allocation,
    single_node_allocation,
    uniform_allocation,
)
from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError, ReproError
from repro.network import builders
from repro.service.types import SolveRequest, SolveResponse

__all__ = [
    "parse_request",
    "request_to_payload",
    "response_from_dict",
    "response_to_dict",
    "iter_request_payloads",
    "safe_parse",
]

_TOPOLOGIES = {
    "ring": builders.ring_graph,
    "line": builders.line_graph,
    "star": builders.star_graph,
    "complete": builders.complete_graph,
}

_NAMED_STARTS = {
    "uniform": uniform_allocation,
    "skewed": paper_skewed_allocation,
    "single": single_node_allocation,
}


def _parse_problem(spec) -> FileAllocationProblem:
    if not isinstance(spec, dict):
        raise ConfigurationError("request field 'problem' must be an object")
    if "cost_matrix" in spec or "access_rates" in spec:
        try:
            return FileAllocationProblem(
                spec["cost_matrix"],
                spec["access_rates"],
                k=float(spec.get("k", 1.0)),
                mu=spec.get("mu"),
                name=str(spec.get("name", "")),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"raw problem spec is missing field {missing}"
            ) from None
    family = spec.get("topology", "ring")
    if family not in _TOPOLOGIES:
        raise ConfigurationError(
            f"unknown topology {family!r} (expected one of {sorted(_TOPOLOGIES)})"
        )
    nodes = int(spec.get("nodes", 4))
    rate = float(spec.get("rate", 1.0))
    return FileAllocationProblem.from_topology(
        _TOPOLOGIES[family](nodes),
        np.full(nodes, rate / nodes),
        k=float(spec.get("k", 1.0)),
        mu=float(spec.get("mu", 1.5)),
    )


def parse_request(payload: Dict) -> SolveRequest:
    """One wire-format dict into a validated :class:`SolveRequest`."""
    if not isinstance(payload, dict):
        raise ConfigurationError("each request must be a JSON object")
    if "problem" not in payload:
        raise ConfigurationError("request is missing the 'problem' field")
    problem = _parse_problem(payload["problem"])
    start = payload.get("start", "uniform")
    if isinstance(start, str):
        if start not in _NAMED_STARTS:
            raise ConfigurationError(
                f"unknown start {start!r} (expected one of "
                f"{sorted(_NAMED_STARTS)} or an explicit vector)"
            )
        initial = _NAMED_STARTS[start](problem.n)
    else:
        initial = np.asarray(start, dtype=float)
    timeout_s = payload.get("timeout_s")
    return SolveRequest(
        problem=problem,
        alpha=float(payload.get("alpha", 0.3)),
        epsilon=float(payload.get("epsilon", 1e-3)),
        max_iterations=int(payload.get("max_iterations", 10_000)),
        initial_allocation=initial,
        request_id=str(payload.get("id", "")),
        timeout_s=None if timeout_s is None else float(timeout_s),
        priority=int(payload.get("priority", 0)),
    )


def request_to_payload(request: SolveRequest) -> Dict:
    """The inverse of :func:`parse_request`: a wire-format dict whose
    re-parse reproduces ``request`` field-for-field.

    Uses the raw-matrix problem spec (floats survive JSON bit-for-bit:
    ``repr`` round-trips every float64), so a request solved remotely is
    the identical solve it would have been locally — the parity contract
    of :class:`repro.net.NetClient`.  Only pure M/M/1 problems can cross
    the wire (exotic delay models have no dict form); anything else
    raises :class:`~repro.exceptions.ConfigurationError`.
    """
    problem = request.problem
    if not problem.has_vectorized_evaluate:
        raise ConfigurationError(
            f"problem {problem.name!r} uses non-M/M/1 delay models; "
            "it has no wire representation"
        )
    payload: Dict = {
        "id": request.request_id,
        "problem": {
            "cost_matrix": [[float(v) for v in row] for row in problem.cost_matrix],
            "access_rates": [float(v) for v in problem.access_rates],
            "mu": [float(v) for v in problem.mm1_service_rates()],
            "k": float(problem.k),
            "name": problem.name,
        },
        "alpha": float(request.alpha),
        "epsilon": float(request.epsilon),
        "max_iterations": int(request.max_iterations),
        "start": [float(v) for v in request.initial_allocation],
    }
    if request.timeout_s is not None:
        payload["timeout_s"] = float(request.timeout_s)
    if request.priority != 0:
        payload["priority"] = int(request.priority)
    return payload


def response_to_dict(response: SolveResponse) -> Dict:
    """The wire-format view of a response (alias of ``as_dict``)."""
    return response.as_dict()


def response_from_dict(payload: Dict) -> SolveResponse:
    """One wire-format response dict back into a :class:`SolveResponse`.

    Accepts the ``"ok"`` and ``"rejected"`` shapes ``as_dict`` emits
    (JSON round-trips floats exactly, so the rebuilt allocation is the
    served allocation).  In-band ``"error"`` markers have no typed form
    and raise.
    """
    status = payload.get("status")
    if status == "ok":
        return SolveResponse(
            request_id=str(payload.get("id", "")),
            status="ok",
            allocation=np.asarray(payload["allocation"], dtype=float),
            cost=float(payload["cost"]),
            iterations=int(payload["iterations"]),
            converged=bool(payload["converged"]),
            cache=str(payload.get("cache", "miss")),
            batch_size=int(payload.get("batch_size", 0)),
            latency_s=float(payload.get("latency_s", 0.0)),
        )
    if status == "rejected":
        return SolveResponse(
            request_id=str(payload.get("id", "")),
            status="rejected",
            reason=payload.get("reason"),
            detail=str(payload.get("detail", "")),
        )
    raise ConfigurationError(
        f"response status {status!r} has no typed form "
        "(expected 'ok' or 'rejected')"
    )


def iter_request_payloads(stream: IO[str]) -> Iterator[Dict]:
    """Yield one payload dict per non-blank line of ``stream``.

    A line that is not valid JSON yields an ``{"status": "error"}``
    marker dict (with the parse failure in ``detail``) instead of
    raising, so one bad line cannot kill a long-running serve loop.
    """
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            yield {"status": "error", "detail": f"line {lineno}: invalid JSON ({exc})"}
            continue
        yield payload


def safe_parse(payload: Dict):
    """``parse_request`` that returns ``(request, None)`` or ``(None, error_dict)``."""
    if payload.get("status") == "error":  # pre-marked by iter_request_payloads
        return None, payload
    try:
        return parse_request(payload), None
    except (ReproError, TypeError, ValueError) as exc:
        return None, {
            "id": str(payload.get("id", "")),
            "status": "error",
            "detail": f"{type(exc).__name__}: {exc}",
        }
