"""Drift-adaptive estimate epochs for the solution cache.

The service's cache answers exact repeats verbatim forever, which is
only sound while the traffic estimate the entry was solved under is
still current.  §8 of the paper ("the possibility also exists of using
the algorithm to adaptively change the file allocation as the nodal
file access characteristics change dynamically") and the
dynamic-reallocation model of *Distributed Server Allocation for
Content Delivery Networks* (PAPERS.md) both frame the fix the same way:
keep a running estimate of the workload, and re-optimize only when the
estimate has moved far enough that re-solving beats the switching cost
of thrashing on every small update.

:class:`DriftTracker` is that estimator, adapted from the
:class:`~repro.estimation.adaptive.AdaptiveAllocationLoop` windowed
rate estimate to the serving stack: every request *is* an observation
of its structure's operating point, so the tracker folds each request's
parameter vector (:func:`~repro.service.fingerprint.parameter_vector`)
into a per-structure exponential moving average.  Each structure
carries an **estimate epoch**; when the moving estimate drifts more
than ``threshold`` (relative L2, the cache's own distance metric) from
the reference point captured at the last epoch advance, the epoch
increments and the reference re-anchors.

The cache stamps every entry with the epoch it was solved under.  An
exact hit from a *stale* epoch is demoted to a warm-start donor — the
answer is recomputed from the cached allocation (stale-but-close)
instead of served verbatim — while small drift below ``threshold``
keeps serving hits untouched.  ``threshold`` is therefore exactly the
migration/switching-cost term of the CDN model: the drift a cached
optimum is allowed to accumulate before re-solving is worth paying for.

Metrics (all on the shared registry): ``service.drift.observed``
counts folded observations, ``service.drift.epoch_advance`` counts
epoch bumps, and the ``service.drift.level`` gauge tracks the last
observed drift magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.model import FileAllocationProblem
from repro.exceptions import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.service.fingerprint import (
    parameter_vector,
    relative_distance,
    structural_key,
)
from repro.utils.validation import check_positive

__all__ = ["DriftState", "DriftTracker"]


@dataclass
class DriftState:
    """Per-structure estimator state: the moving estimate, the epoch's
    reference point, and the epoch counter."""

    estimate: np.ndarray
    reference: np.ndarray
    epoch: int = 0
    observations: int = 1
    #: Drift of the estimate vs the reference at the last observation.
    level: float = field(default=0.0)


class DriftTracker:
    """Per-structure traffic-estimate epochs with a switching-cost bar.

    Parameters
    ----------
    threshold:
        Relative drift (same scale as
        :func:`~repro.service.fingerprint.parameter_distance`) the
        moving estimate must accumulate before the structure's epoch
        advances.  Small values re-solve eagerly; large values tolerate
        more staleness — the knob is the switching-cost term that keeps
        allocations from thrashing on every estimate update.
    window:
        Observation window of the exponential moving average: each
        request moves the estimate ``1/window`` of the way to its own
        parameters.  Longer windows mean calmer estimates (the
        ``estimation_window`` of the §8 loop, request-driven instead of
        clock-driven).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        ``service.drift.*`` family.
    """

    def __init__(
        self,
        *,
        threshold: float = 0.25,
        window: int = 16,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.threshold = check_positive(float(threshold), "threshold")
        if int(window) < 1:
            raise ConfigurationError("window must be >= 1")
        self.window = int(window)
        self.registry = registry
        self._states: Dict[str, DriftState] = {}

    def __len__(self) -> int:
        return len(self._states)

    def observe(self, problem: FileAllocationProblem) -> int:
        """Fold one request's parameters into its structure's estimate.

        Returns the structure's (possibly just-advanced) epoch.  Non-
        M/M/1 problems are uncacheable and therefore unobserved: epoch 0.
        """
        params = parameter_vector(problem)
        if params is None:
            return 0
        key = structural_key(problem)
        state = self._states.get(key)
        if state is None or state.estimate.shape != params.shape:
            state = DriftState(estimate=params.copy(), reference=params.copy())
            self._states[key] = state
            self._count(state, 0.0)
            return state.epoch
        state.observations += 1
        state.estimate += (params - state.estimate) / self.window
        drift = relative_distance(state.estimate, state.reference)
        state.level = drift
        if drift > self.threshold:
            state.epoch += 1
            state.reference = state.estimate.copy()
            state.level = 0.0
            if self.registry is not None:
                self.registry.counter_inc("service.drift.epoch_advance")
        self._count(state, drift)
        return state.epoch

    def _count(self, state: DriftState, drift: float) -> None:
        if self.registry is not None:
            self.registry.counter_inc("service.drift.observed")
            self.registry.gauge_set("service.drift.level", float(drift))

    def epoch_of(self, structure: str) -> int:
        """The current estimate epoch for one structural key (read-only —
        the cache stamps entries with this at store time)."""
        state = self._states.get(structure)
        return state.epoch if state is not None else 0

    def drift_of(self, structure: str) -> float:
        """Last observed drift of ``structure``'s estimate vs its epoch
        reference (0.0 for unseen structures)."""
        state = self._states.get(structure)
        return state.level if state is not None else 0.0

    def __repr__(self) -> str:
        return (
            f"DriftTracker(threshold={self.threshold:g}, window={self.window}, "
            f"structures={len(self._states)})"
        )
